//! Quick start: generate a synthetic RDB-SC instance, solve it with all
//! three approximation algorithms plus the G-TRUTH baseline, and compare the
//! two objectives (minimum task reliability and total expected diversity).
//!
//! Run with `cargo run --release --example quickstart`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdbsc::prelude::*;
use std::time::Instant;

fn main() {
    // A laptop-sized instance with the paper's default parameter ranges
    // (Table 2): uniform locations, worker confidences in (0.9, 1),
    // velocities in [0.2, 0.3], moving-angle ranges up to π/6.
    let config = ExperimentConfig::small_default()
        .with_tasks(300)
        .with_workers(400)
        .with_seed(42);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let instance = generate_instance(&config, &mut rng);
    println!(
        "instance: {} tasks, {} workers, beta = {:.2}",
        instance.num_tasks(),
        instance.num_workers(),
        instance.beta
    );

    // Valid task-and-worker pairs (direction + deadline constraints). The
    // grid index accelerates this; the brute-force path is fine at this size.
    let started = Instant::now();
    let candidates = compute_valid_pairs(&instance);
    println!(
        "valid pairs: {} ({} connected workers) in {:?}",
        candidates.num_pairs(),
        candidates.by_worker.iter().filter(|a| !a.is_empty()).count(),
        started.elapsed()
    );

    // Solve with the paper's four approaches.
    println!(
        "\n{:<10} {:>16} {:>14} {:>12} {:>10}",
        "approach", "min reliability", "total_STD", "assigned", "time"
    );
    for solver in Solver::paper_lineup() {
        let mut rng = StdRng::seed_from_u64(7);
        let request = SolveRequest::new(&instance, &candidates);
        let started = Instant::now();
        let assignment = solver.solve(&request, &mut rng);
        let elapsed = started.elapsed();
        let value = evaluate(&instance, &assignment);
        println!(
            "{:<10} {:>16.4} {:>14.4} {:>12} {:>10.2?}",
            solver.name(),
            value.min_reliability,
            value.total_std,
            value.assigned_workers,
            elapsed
        );
    }

    println!(
        "\nHigher is better for both objectives. SAMPLING is the fastest approach and\n\
         GREEDY the strongest on diversity at this laptop scale (our greedy evaluates\n\
         exact marginal gains); D&C and G-TRUTH sit between. See EXPERIMENTS.md for\n\
         how these orderings compare with the paper's Figures 13-16."
    );
}
