//! High-traffic online assignment: the parallel sharded engine vs. the
//! single-threaded monolithic re-solve.
//!
//! Builds a 1 000-task / 5 000-worker instance with short task windows (the
//! regime where the spatial domain decomposes into many independent shards),
//! then runs one update round both ways and reports wall-clock time,
//! assignment throughput and the two RDB-SC objectives. A second phase
//! drives the engine through several event-driven rounds (worker movement,
//! task churn, answers) to show the incremental path.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example high_traffic
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdbsc::prelude::*;
use rdbsc::platform::engine::{AssignmentEngine, EngineConfig, EngineEvent};
use std::time::Instant;

fn main() {
    // A polycentric *online snapshot*: nine metro areas, each holding only
    // tasks that are open now or within the next few minutes (future tasks
    // arrive later as events). Worker reach radii are small compared to the
    // inter-city gaps, so the domain decomposes into independent shards.
    let config = MetroConfig::default().with_tasks(1_000).with_workers(5_000);
    let mut rng = StdRng::seed_from_u64(11);
    let instance = generate_metro_instance(&config, &mut rng);
    println!(
        "instance: {} tasks, {} workers in {} metro areas",
        instance.num_tasks(),
        instance.num_workers(),
        config.cities,
    );

    let index = GridIndex::from_instance(&instance);

    // --- Baseline: one monolithic single-threaded re-solve -----------------
    let started = Instant::now();
    let mut baseline_index = index.clone();
    let candidates = baseline_index.retrieve_valid_pairs();
    let solver = Solver::Sampling(SamplingConfig::default());
    let request = SolveRequest::new(&instance, &candidates);
    let baseline = solver.solve(&request, &mut StdRng::seed_from_u64(3));
    let baseline_secs = started.elapsed().as_secs_f64();
    let baseline_value = evaluate(&instance, &baseline);
    println!(
        "full re-solve  : {:>8.3}s  {:>7.0} assignments/s  min_rel {:.4}  total_STD {:.2}",
        baseline_secs,
        baseline_value.assigned_workers as f64 / baseline_secs,
        baseline_value.min_reliability,
        baseline_value.total_std,
    );

    // --- The engine: sharded, parallel, adaptive ---------------------------
    let started = Instant::now();
    let mut engine = AssignmentEngine::new(
        index.clone(),
        EngineConfig {
            seed: 3,
            ..EngineConfig::default()
        },
    );
    let report = engine.tick(0.0);
    let engine_secs = started.elapsed().as_secs_f64();

    let mut engine_assignment = Assignment::for_instance(&instance);
    for pair in &report.new_assignments {
        engine_assignment
            .assign(pair.task, pair.worker, pair.contribution)
            .expect("engine pairs are conflict-free");
    }
    let engine_value = evaluate(&instance, &engine_assignment);
    println!(
        "sharded engine : {:>8.3}s  {:>7.0} assignments/s  min_rel {:.4}  total_STD {:.2}",
        engine_secs,
        engine_value.assigned_workers as f64 / engine_secs,
        engine_value.min_reliability,
        engine_value.total_std,
    );
    let mut strategy_counts: Vec<(&str, usize)> = Vec::new();
    for s in &report.strategies {
        match strategy_counts.iter_mut().find(|(name, _)| name == s) {
            Some((_, n)) => *n += 1,
            None => strategy_counts.push((s, 1)),
        }
    }
    let critical = report.critical_path_seconds();
    println!(
        "                 {} shards (largest: {} pairs), strategies: {:?}",
        report.num_shards, report.largest_shard_pairs, strategy_counts,
    );
    println!(
        "                 one-core speedup {:.2}x; parallel critical path {:.3}s -> projected {:.2}x on {} cores",
        baseline_secs / engine_secs.max(1e-12),
        critical,
        baseline_secs / (engine_secs - report.solve_seconds + critical).max(1e-12),
        report.num_shards,
    );
    assert_eq!(
        engine_value.assigned_workers, baseline_value.assigned_workers,
        "both paths must assign every connected worker"
    );
    assert!(
        (engine_value.total_std - baseline_value.total_std).abs()
            <= 0.10 * baseline_value.total_std,
        "sharded total_STD must stay within sampling tolerance of the monolithic solve"
    );
    assert!(
        engine_value.min_reliability >= baseline_value.min_reliability - 0.05,
        "sharded min reliability must stay within sampling tolerance of the monolithic solve"
    );

    // --- Event-driven rounds: movement, churn, answers ---------------------
    println!("\nevent-driven rounds:");
    let mut next_task_id = instance.num_tasks() as u32;
    let mut churn_rng = StdRng::seed_from_u64(17);
    let mut travelling: Vec<ValidPair> = report.new_assignments.clone();
    let mut now = 0.0;
    for round in 1..=5 {
        now += 0.1;

        // Answers: travellers whose planned arrival has passed complete.
        let arrived: Vec<ValidPair> = travelling
            .iter()
            .filter(|p| p.contribution.arrival <= now && engine.is_committed(p.worker))
            .copied()
            .collect();
        for pair in &arrived {
            engine.record_answer(pair.worker, pair.contribution);
        }

        // Movement: a slice of the idle workers drifts (from their *live*
        // position, so drift accumulates round over round).
        for w in instance.workers.iter().take(500) {
            if !engine.is_committed(w.id) {
                let Some(live) = engine.index().worker(w.id) else {
                    continue;
                };
                let dx: f64 = churn_rng.gen_range(-0.02..0.02);
                let dy: f64 = churn_rng.gen_range(-0.02..0.02);
                engine.submit(EngineEvent::WorkerMoved(
                    w.id,
                    Point::new(
                        (live.location.x + dx).clamp(0.0, 1.0),
                        (live.location.y + dy).clamp(0.0, 1.0),
                    ),
                ));
            }
        }

        // Task churn: fresh tasks arrive with windows starting now.
        for _ in 0..50 {
            let x: f64 = churn_rng.gen_range(0.0..1.0);
            let y: f64 = churn_rng.gen_range(0.0..1.0);
            let duration: f64 = churn_rng.gen_range(0.25..0.5);
            engine.submit(EngineEvent::TaskArrived(Task::new(
                TaskId(next_task_id),
                Point::new(x, y),
                TimeWindow::new(now, now + duration).expect("valid window"),
            )));
            next_task_id += 1;
        }

        let started = Instant::now();
        let round_report = engine.tick(now);
        let secs = started.elapsed().as_secs_f64();
        travelling.retain(|p| engine.is_committed(p.worker));
        travelling.extend(round_report.new_assignments.iter().copied());
        println!(
            "  round {round}: {:>4} events, {:>3} expired, {:>3} shards, {:>4} new assignments, answers banked {:>4}, {:>7.4}s",
            round_report.events_applied,
            round_report.tasks_expired,
            round_report.num_shards,
            round_report.new_assignments.len(),
            arrived.len(),
            secs,
        );
    }
    let objective = engine.current_objective();
    println!(
        "\nfinal standing state: min_rel {:.4}, total_STD {:.2}, covered tasks {}",
        objective.min_reliability, objective.total_std, objective.covered_tasks
    );
}
