//! The pluggable spatial-index layer in action: run the same online
//! assignment workload on both `SpatialIndex` backends, show that the engine
//! output is byte-identical, and compare the maintenance cost the two
//! backends paid for it.
//!
//! ```text
//! cargo run --release --example index_backends
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdbsc::prelude::*;
use std::time::Instant;

/// Drives one engine through a movement-heavy script: arrivals + check-ins,
/// then every worker heartbeats a new position each tick.
fn drive<I: SpatialIndex>(index: I, label: &str) -> (Vec<Vec<ValidPair>>, f64, MaintenanceCounters) {
    let mut engine = AssignmentEngine::new(index, EngineConfig::default());
    let mut rng = StdRng::seed_from_u64(5);
    for id in 0..60u32 {
        engine.submit(EngineEvent::TaskArrived(Task::new(
            TaskId(id),
            Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
            TimeWindow::new(0.0, 50.0).unwrap(),
        )));
    }
    for id in 0..200u32 {
        engine.submit(EngineEvent::WorkerCheckIn(
            Worker::new(
                WorkerId(id),
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                rng.gen_range(0.05..0.3),
                AngleRange::full(),
                Confidence::new(0.9).unwrap(),
            )
            .unwrap(),
        ));
    }

    let started = Instant::now();
    let mut outputs = Vec::new();
    for tick in 0..20 {
        let report = engine.tick(tick as f64 * 0.1);
        // Answers free some workers, movement churns the index.
        for pair in report.new_assignments.iter().take(10) {
            engine.record_answer(pair.worker, pair.contribution);
        }
        outputs.push(report.new_assignments);
        for id in 0..200u32 {
            engine.submit(EngineEvent::WorkerMoved(
                WorkerId(id),
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
            ));
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    let counters = engine.index().maintenance_counters();
    println!(
        "{label:<10} {:>8.1} ms   {:>6} relocations, {:>5} cells repaired, {:>5} list rebuilds",
        seconds * 1e3,
        counters.relocations,
        counters.cells_repaired,
        counters.tcell_rebuilds,
    );
    (outputs, seconds, counters)
}

fn main() {
    println!("same workload, two index backends:\n");
    let (grid_out, grid_s, _) = drive(GridIndex::new(Rect::unit(), 0.08), "grid");
    let (flat_out, flat_s, _) = drive(FlatGridIndex::new(Rect::unit(), 0.08), "flat-grid");

    assert_eq!(
        grid_out, flat_out,
        "the engine's output is byte-identical regardless of the backend"
    );
    let assignments: usize = grid_out.iter().map(Vec::len).sum();
    println!(
        "\nidentical output on both backends: {assignments} assignments over {} ticks",
        grid_out.len()
    );
    println!("flat/grid wall-clock ratio: {:.2}", grid_s / flat_s.max(1e-9));

    // The cost model's backend selection for this movement-heavy shape.
    let profile = WorkloadProfile {
        objects_per_cell: 260.0 / (1.0f64 / 0.08).powi(2),
        churn_per_object: 0.8,
    };
    println!(
        "cost model picks {:?} for this density x churn profile",
        choose_backend(&profile)
    );
}
