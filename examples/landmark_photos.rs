//! Example 1 of the paper: photographing a landmark from diverse directions.
//!
//! A single spatial task ("take photos of the statue, which is visible
//! together with the fireworks between 19:00 and 21:00") and a handful of
//! pedestrians moving through the area. The example shows how the RDB-SC
//! objective prefers workers that approach the landmark from *different*
//! sides and at *different* times, and how that translates into angular
//! coverage for a 3-D reconstruction (the paper's Figures 19–20 showcase).
//!
//! Run with `cargo run --release --example landmark_photos`.

use rdbsc::platform::coverage::coverage_report;
use rdbsc::prelude::*;
use std::f64::consts::{FRAC_PI_3, PI};

fn main() {
    // The landmark sits in the middle of the unit square; the firework show
    // runs from t = 19.0 to t = 21.0 (hours).
    let statue = Task::new(
        TaskId(0),
        Point::new(0.5, 0.5),
        TimeWindow::new(19.0, 21.0).expect("valid window"),
    );

    // Pedestrians: location, walking speed, heading cone, reliability.
    // w1 and w4 approach from the west, w2 from the south, w3 and w5 from the
    // east — mirroring Figure 1 of the paper.
    let make = |x: f64, y: f64, heading: f64, p: f64, check_in: f64| {
        Worker::new(
            WorkerId(0),
            Point::new(x, y),
            0.35,
            AngleRange::new(heading - 0.4, 0.8),
            Confidence::new(p).expect("valid confidence"),
        )
        .expect("valid worker")
        .with_available_from(check_in)
    };
    let workers = vec![
        make(0.20, 0.50, 0.0, 0.90, 18.5),        // w1: from the west, daytime
        make(0.50, 0.15, PI / 2.0, 0.85, 18.8),   // w2: from the south
        make(0.85, 0.50, PI, 0.80, 19.0),         // w3: from the east
        make(0.25, 0.45, 0.1, 0.95, 20.2),        // w4: also from the west, but at night
        make(0.80, 0.55, PI - 0.1, 0.75, 19.3),   // w5: from the east
        make(0.50, 0.95, 1.5 * PI, 0.70, 19.2),   // w6: from the north
    ];

    let instance = ProblemInstance::new(vec![statue], workers, 0.6);
    let candidates = compute_valid_pairs(&instance);
    println!(
        "landmark task with {} candidate photographers (of {})",
        candidates.pairs_of_task(TaskId(0)).count(),
        instance.num_workers()
    );

    // Solve with greedy (a single task makes all approaches equivalent in
    // structure; greedy shows the per-worker marginal gains nicely).
    let assignment = greedy(
        &SolveRequest::new(&instance, &candidates),
        &GreedyConfig::default(),
    );
    let value = evaluate(&instance, &assignment);
    println!("\nselected photographers:");
    for (_, worker, contribution) in assignment.iter() {
        println!(
            "  worker w{} — approach angle {:>6.1}°, arrival {:>5.2} h, confidence {:.2}",
            worker.index() + 1,
            contribution.angle.to_degrees(),
            contribution.arrival,
            contribution.p()
        );
    }
    println!(
        "\ntask reliability        : {:.4} (probability at least one good photo arrives)",
        value.min_reliability
    );
    println!("expected STD (diversity) : {:.4}", value.total_std);

    // The 3-D reconstruction proxy: how much of the statue's silhouette do
    // the expected photos cover, assuming a 60° camera field of view?
    let answers: Vec<(f64, f64)> = assignment
        .iter()
        .map(|(_, _, c)| (c.angle, c.arrival))
        .collect();
    let coverage = coverage_report(
        &answers,
        instance.tasks[0].window,
        FRAC_PI_3,
        0.5,
    );
    println!(
        "angular coverage          : {:.0}% of the statue's sides",
        coverage.angular * 100.0
    );
    println!(
        "temporal coverage         : {:.0}% of the firework show",
        coverage.temporal * 100.0
    );

    // Contrast with a naive policy that sends only the two most reliable
    // workers (both approaching from the west).
    let mut naive = Assignment::for_instance(&instance);
    let mut best: Vec<&ValidPair> = candidates.pairs.iter().collect();
    best.sort_by(|a, b| b.contribution.p().partial_cmp(&a.contribution.p()).unwrap());
    for pair in best.into_iter().take(2) {
        naive.assign_pair(pair).expect("workers are unassigned");
    }
    let naive_value = evaluate(&instance, &naive);
    let naive_answers: Vec<(f64, f64)> = naive.iter().map(|(_, _, c)| (c.angle, c.arrival)).collect();
    let naive_coverage = coverage_report(&naive_answers, instance.tasks[0].window, FRAC_PI_3, 0.5);
    println!(
        "\nnaive 'two most reliable' policy: reliability {:.4}, diversity {:.4}, angular coverage {:.0}%",
        naive_value.min_reliability,
        naive_value.total_std,
        naive_coverage.angular * 100.0
    );
    println!("RDB-SC's diversity objective is what buys the missing viewing angles.");

    // Finally, aggregate the answers the requester would receive: similar
    // photos (same side of the statue, similar time) are grouped and only one
    // representative per group is shown (Section 2.3 of the paper).
    let contributions: Vec<Contribution> = assignment.iter().map(|(_, _, c)| c).collect();
    let groups = rdbsc::model::aggregation::aggregate_answers(
        &contributions,
        instance.tasks[0].window,
        &rdbsc::model::aggregation::AggregationConfig::default(),
    );
    println!("\nanswer aggregation: {} photos -> {} representative views", contributions.len(), groups.len());
    for (i, group) in groups.iter().enumerate() {
        println!(
            "  view {} — {} photo(s), mean angle {:>6.1}°, mean time {:>5.2} h",
            i + 1,
            group.members.len(),
            group.mean_angle.to_degrees(),
            group.mean_arrival
        );
    }
}
