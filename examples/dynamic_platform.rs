//! Running the gMission-style platform simulator: periodic incremental
//! assignment of walking users to photo tasks at a handful of sites
//! (Section 8.4 / Figure 18 of the paper).
//!
//! Run with `cargo run --release --example dynamic_platform`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdbsc::prelude::*;

fn main() {
    println!("gMission-style deployment: 5 sites, 10 users, 15-minute task openings\n");
    println!(
        "{:>10} {:>8} {:>10} {:>16} {:>12} {:>14} {:>10}",
        "t_interval", "rounds", "answers", "min reliability", "total_STD", "mean accuracy", "coverage"
    );

    // Sweep the update interval from 1 to 4 minutes, as in Figure 18.
    for t_interval in [1.0, 2.0, 3.0, 4.0] {
        let config = PlatformConfig {
            t_interval,
            total_duration: 60.0,
            ..PlatformConfig::default()
        };
        let solver = Solver::Sampling(SamplingConfig::default());
        let mut rng = StdRng::seed_from_u64(99);
        let mut sim = PlatformSim::new(config, solver, &mut rng);
        let report = sim.run(&mut rng);

        println!(
            "{:>10} {:>8} {:>10} {:>16.4} {:>12.4} {:>14} {:>9.0}%",
            format!("{t_interval} min"),
            report.rounds.len(),
            report.total_answers,
            report.min_reliability,
            report.total_std,
            report
                .mean_accuracy
                .map(|a| format!("{a:.3}"))
                .unwrap_or_else(|| "-".into()),
            report.mean_coverage(0.5) * 100.0
        );
    }

    println!(
        "\nLonger update intervals mean fewer assignment rounds, so each user serves\n\
         fewer tasks over the hour and the accumulated diversity drops — the trend\n\
         of Figure 18(b). Reliability stays high because every answered task still\n\
         has at least one reliable answer."
    );
}
