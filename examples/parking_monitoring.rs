//! Example 2 of the paper: monitoring available parking spaces over a region.
//!
//! Parking lots cluster around a city centre (SKEWED distribution); each lot
//! asks for photos taken from different directions and at different times of
//! its opening hours, so the availability trend can be predicted. The example
//! sweeps the requester-specified balance weight β (spatial- vs.
//! temporal-diversity preference, Figure 22 of the paper) and compares the
//! three approximation algorithms.
//!
//! Run with `cargo run --release --example parking_monitoring`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdbsc::prelude::*;

fn main() {
    // A skewed city: 90 % of the parking lots and drivers concentrate around
    // the centre, the rest spread uniformly (the paper's SKEWED setting).
    let base = ExperimentConfig::small_default()
        .with_tasks(200)
        .with_workers(250)
        .with_distribution(Distribution::Skewed)
        // Parking lots are monitored over longer windows than firework shows.
        .with_rt_range(1.0, 2.0)
        .with_seed(2024);

    println!("parking-space monitoring over a skewed region");
    println!(
        "{:<10} {:<12} {:>16} {:>14}",
        "beta", "approach", "min reliability", "total_STD"
    );

    // Sweep the requester's preference: β → 1 favours photos from many
    // directions, β → 0 favours photos spread over the opening hours.
    for (label, config) in ExperimentConfig::sweep_beta(&base) {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let instance = generate_instance(&config, &mut rng);
        let candidates = compute_valid_pairs(&instance);
        let request = SolveRequest::new(&instance, &candidates);

        for solver in [
            Solver::Greedy(GreedyConfig::default()),
            Solver::Sampling(SamplingConfig::default()),
            Solver::DivideAndConquer(DncConfig::default()),
        ] {
            let mut solver_rng = StdRng::seed_from_u64(7);
            let assignment = solver.solve(&request, &mut solver_rng);
            let value = evaluate(&instance, &assignment);
            println!(
                "{:<10} {:<12} {:>16.4} {:>14.4}",
                label,
                solver.name(),
                value.min_reliability,
                value.total_std
            );
        }
    }

    println!(
        "\nAs in Figure 22 of the paper, the minimum reliability is insensitive to β.\n\
         With roughly one worker per parking lot the temporal component dominates, so\n\
         raising β (more weight on spatial diversity) lowers total_STD for the\n\
         worker-spreading approaches — see EXPERIMENTS.md for the discussion."
    );
}
