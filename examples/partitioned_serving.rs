//! Region-partitioned multi-engine serving on the metro workload.
//!
//! Cuts the unit square into k-means-seeded regions (one per metro area),
//! runs one assignment engine per region on its own thread, and drives a few
//! rounds of churn with workers commuting between cities — exercising event
//! routing, lockstep ticks and cross-partition worker handoff. Finishes by
//! checking the single-partition determinism contract: one region produces
//! byte-identical output to a plain engine.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example partitioned_serving
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdbsc::cluster::{RegionPartition, RegionPartitioner};
use rdbsc::index::geometry::GridGeometry;
use rdbsc::platform::engine::{AssignmentEngine, EngineConfig, EngineEvent};
use rdbsc::platform::PartitionedEngine;
use rdbsc::prelude::*;
use rdbsc::workloads::{generate_metro_instance, MetroConfig};

const CELL: f64 = 0.05;

fn main() {
    // Four metro areas; worker reach is small compared to the gaps between
    // them, so the k-means boundaries fall in the empty corridors.
    let config = MetroConfig::default().with_tasks(200).with_workers(800);
    let mut rng = StdRng::seed_from_u64(9);
    let instance = generate_metro_instance(&config, &mut rng);
    let sample: Vec<Point> = instance
        .tasks
        .iter()
        .map(|t| t.location)
        .chain(instance.workers.iter().map(|w| w.location))
        .collect();

    let geometry = GridGeometry::new(Rect::unit(), CELL);
    let partition = RegionPartitioner::kmeans(9).split(geometry, 4, &sample);
    println!("regions (grid-cell-aligned, k-means-seeded boundaries):");
    for i in 0..partition.num_regions() {
        let r = partition.region_rect(i);
        println!(
            "  partition {i}: [{:.2}, {:.2}] x [{:.2}, {:.2}]",
            r.min_x, r.max_x, r.min_y, r.max_y
        );
    }

    let engine_config = EngineConfig {
        seed: 9,
        ..EngineConfig::default()
    };
    let mut engine = PartitionedEngine::build(partition, engine_config.clone(), |rect| {
        FlatGridIndex::new(rect, CELL)
    });
    engine.submit_all(instance.tasks.iter().map(|t| EngineEvent::TaskArrived(*t)));
    engine.submit_all(
        instance
            .workers
            .iter()
            .map(|w| EngineEvent::WorkerCheckIn(*w)),
    );

    let centers = config.city_centers();
    for round in 0..4 {
        let now = round as f64 * 0.1;
        let report = engine.tick(now);
        // Answer everything immediately so workers free up, then send 5 %
        // of the workers commuting towards the next city over.
        for pair in &report.new_assignments {
            engine.record_answer(pair.worker, pair.contribution);
        }
        for j in (0..instance.num_workers()).filter(|j| j % 20 == round % 20) {
            let target = centers[(j + 1) % centers.len()];
            engine.submit(EngineEvent::WorkerMoved(
                WorkerId(j as u32),
                Point::new(
                    (target.x + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
                    (target.y + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
                ),
            ));
        }
        println!(
            "round {round}: {} events, {} shards, {} new assignments, {} handoffs so far",
            report.events_applied,
            report.num_shards,
            report.new_assignments.len(),
            engine.handoffs(),
        );
    }

    let merged = engine.snapshot();
    println!("\nmerged snapshot: {} live tasks, {} live workers, {} answers banked",
        merged.live_tasks, merged.live_workers, merged.banked_answers);
    for (i, snap) in engine.partition_snapshots().iter().enumerate() {
        println!(
            "  partition {i}: {:>3} tasks, {:>3} workers, {:>4} answers",
            snap.live_tasks, snap.live_workers, snap.banked_answers
        );
    }
    assert!(engine.handoffs() > 0, "the commute must cross boundaries");
    assert!(merged.banked_answers > 0);

    // --- The determinism contract: 1 partition == the plain engine --------
    let single = RegionPartition::single(geometry);
    let rect = single.region_rect(0);
    let mut plain = AssignmentEngine::new(
        FlatGridIndex::new(rect, CELL),
        engine_config.clone(),
    );
    let mut one = PartitionedEngine::build(single, engine_config, |r| {
        FlatGridIndex::new(r, CELL)
    });
    plain.submit_all(instance.tasks.iter().map(|t| EngineEvent::TaskArrived(*t)));
    plain.submit_all(
        instance
            .workers
            .iter()
            .map(|w| EngineEvent::WorkerCheckIn(*w)),
    );
    one.submit_all(instance.tasks.iter().map(|t| EngineEvent::TaskArrived(*t)));
    one.submit_all(
        instance
            .workers
            .iter()
            .map(|w| EngineEvent::WorkerCheckIn(*w)),
    );
    let a = plain.tick(0.0);
    let b = one.tick(0.0);
    assert_eq!(
        a.new_assignments, b.new_assignments,
        "single partition must be byte-identical to the plain engine"
    );
    println!(
        "\n1-partition identity: OK ({} identical assignments)",
        a.new_assignments.len()
    );
}
