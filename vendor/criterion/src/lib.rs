//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the API surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`BatchSize`], `iter`/`iter_batched`
//! and the [`criterion_group!`]/[`criterion_main!`] macros — implemented as a
//! plain wall-clock timer: each benchmark runs a warm-up pass and
//! `sample_size` timed samples and prints the median per-iteration time.
//! There is no statistical analysis, no HTML report and no comparison against
//! saved baselines.

use std::time::{Duration, Instant};

/// Re-export point used by some criterion idioms (`criterion::black_box`).
pub use core::hint::black_box;

/// How `iter_batched` amortises setup cost. The stand-in runs one setup per
/// routine call regardless of the variant, so this only mirrors the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup per iteration is cheap.
    SmallInput,
    /// Large inputs: batches should be small.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `"{name}/{parameter}"`.
    pub fn new<P: std::fmt::Display>(name: impl Into<String>, parameter: P) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id with no parameter part.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// The per-benchmark timing driver handed to closures as `b`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<L, F>(&mut self, id: L, f: F) -> &mut Self
    where
        L: IntoBenchmarkLabel,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by an input value.
    pub fn bench_with_input<L, I, F>(&mut self, id: L, input: &I, mut f: F) -> &mut Self
    where
        L: IntoBenchmarkLabel,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The top-level harness, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let samples = self.default_sample_size;
        self.run_one(&label, samples, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, samples: usize, mut f: F) {
        // Warm-up: one sample with a single iteration to estimate cost and
        // pick an iteration count targeting ~20ms per sample.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000)
            as u64;

        let mut per_iter_times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            per_iter_times.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        per_iter_times.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_times[per_iter_times.len() / 2];
        let best = per_iter_times[0];
        println!(
            "bench {label:<48} median {:>12}  best {:>12}  ({samples} samples x {iters} iters)",
            format_time(median),
            format_time(best),
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("batched");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter_batched(|| vec![1u64; n as usize], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn labels_render() {
        assert_eq!(BenchmarkId::new("solver", 42).into_label(), "solver/42");
        assert_eq!(BenchmarkId::from_parameter("x").into_label(), "x");
    }
}
