//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings and an optional
//!   `#![proptest_config(...)]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies over floats and integers, tuple strategies, the
//!   [`collection::vec`] combinator and [`Strategy::prop_map`].
//!
//! Unlike the real proptest there is **no shrinking**: a failing case panics
//! with the deterministic seed of the failing iteration so it can be replayed
//! by re-running the test (generation is seeded per test name + case index).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The error type a property body can return early; produced by
/// [`prop_assert!`].
pub type TestCaseError = String;

/// A generator of random values of an associated type.
///
/// The real proptest separates strategies from value trees to support
/// shrinking; this stand-in only needs generation.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Ranges accepted as collection sizes.
    pub trait SizeRange {
        /// Picks a size from the range.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// The strategy returned by [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy generating `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Deterministic per-test, per-case seed (FNV-1a over the test name, mixed
/// with the case index).
#[doc(hidden)]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[doc(hidden)]
pub fn fresh_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Asserts a condition inside a [`proptest!`] body, returning an `Err` (which
/// fails the current case) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    // `if cond {} else { .. }` rather than `if !cond` so the expansion stays
    // clean under clippy::neg_cmp_op_on_partial_ord at call sites comparing
    // floats.
    ($cond:expr, $($fmt:tt)*) => {
        if $cond {
        } else {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(
                format!("{} ({:?} != {:?})", format!($($fmt)*), l, r),
            );
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the `config` expression is matched
/// outside the per-test repetition so it can be expanded inside it.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let seed = $crate::case_seed(stringify!($name), case);
                    let mut proptest_rng = $crate::fresh_rng(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case + 1, config.cases, seed, message,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in -2.0f64..3.0, n in 1usize..=9) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..=9).contains(&n));
        }

        /// Tuples, vec and prop_map compose.
        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0.0f64..1.0, 0u64..10), 0..=5).prop_map(|pairs| {
                pairs.into_iter().map(|(f, i)| f + i as f64).collect::<Vec<f64>>()
            }),
        ) {
            prop_assert!(v.len() <= 5);
            for x in &v {
                prop_assert!((0.0..11.0).contains(x), "out of range: {x}");
            }
        }
    }

    #[test]
    fn prop_assert_failure_is_reported() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(2))]
                fn always_fails(x in 0.0f64..1.0) {
                    prop_assert!(x > 2.0, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
