//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate: the [`Distribution`] trait and the [`Normal`] distribution, which
//! are the only items this workspace uses. Sampling uses the Box–Muller
//! transform, so per-seed streams differ from the real crate's ziggurat
//! implementation but have the same distribution.

use rand::{Rng, RngCore};

/// Types that can draw samples of `T` from an RNG, mirroring
/// `rand_distr::Distribution`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
///
/// Generic over the float type to mirror the real crate's signature; only
/// `f64` (the default) is implemented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates a normal distribution; fails when `std_dev` is negative or
    /// either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms to one standard normal deviate.
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_are_close() {
        let normal = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let normal = Normal::new(5.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 5.0);
        }
    }
}
