//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored crate reimplements exactly the API subset the workspace
//! uses — [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`] — on top of a xoshiro256\*\* generator seeded via
//! SplitMix64. It is **not** a cryptographic RNG and it is not
//! stream-compatible with the real `rand` crate; it only promises the same
//! trait surface and per-seed determinism.

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`]'s output.
///
/// Stands in for `rand::distributions::Standard` being a
/// `Distribution<T>`; only the types the workspace draws (`f64`, `bool` and
/// the common integers) are implemented.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts: half-open and inclusive ranges of
/// floats and integers.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        // The closed upper bound matters little for continuous draws; sample
        // the closed interval by scaling with the next-up width.
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Uniform draw from `[0, span)` (`span > 0`) with rejection to avoid modulo
/// bias.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// The user-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256\*\* generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as the
            // xoshiro reference implementation recommends.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` when the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// The common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&y));
            let z = rng.gen_range(5u64..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let r: &mut StdRng = &mut rng;
        assert!(draw(r) < 1.0);
    }

    #[test]
    fn slice_choose() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }
}
