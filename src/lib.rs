//! # rdbsc — Reliable Diversity-Based Spatial Crowdsourcing
//!
//! A from-scratch Rust implementation of *"Reliable Diversity-Based Spatial
//! Crowdsourcing by Moving Workers"* (Cheng et al., PVLDB 8(10), VLDB 2015).
//!
//! The RDB-SC problem assigns **dynamically moving workers** (each with a
//! location, speed, moving-direction cone and confidence) to
//! **time-constrained spatial tasks** (each with a location and valid
//! period), maximising two quality measures at once:
//!
//! * the **minimum reliability** over tasks — the probability that at least
//!   one assigned worker completes each task, and
//! * the **total expected spatial/temporal diversity** — an entropy measure
//!   of how spread out the workers' approach angles and arrival times are,
//!   taken in expectation over the workers' success/failure outcomes.
//!
//! The problem is NP-hard; this crate provides the paper's three
//! approximation algorithms (greedy, sampling, divide-and-conquer), the
//! cost-model-based grid index for dynamic worker/task maintenance, the
//! workload generators of the experimental study and a platform simulator
//! for the incremental (online) setting.
//!
//! ## Quick start
//!
//! ```
//! use rdbsc::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Generate a small synthetic instance (UNIFORM distribution, Table 2 defaults).
//! let config = ExperimentConfig::small_default().with_tasks(50).with_workers(80);
//! let mut rng = StdRng::seed_from_u64(7);
//! let instance = generate_instance(&config, &mut rng);
//!
//! // Compute the valid task-and-worker pairs and solve with the greedy algorithm.
//! let candidates = compute_valid_pairs(&instance);
//! let assignment = greedy(&SolveRequest::new(&instance, &candidates), &GreedyConfig::default());
//!
//! // Evaluate both RDB-SC objectives.
//! let value = evaluate(&instance, &assignment);
//! assert!(value.min_reliability >= 0.0 && value.min_reliability <= 1.0);
//! assert!(value.total_std >= 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Sub-crate | Contents |
//! |---|---|
//! | [`geo`] | points, angle ranges, the worker motion/reachability model |
//! | [`model`] | tasks, workers, assignments, reliability, diversity, possible worlds |
//! | [`cluster`] | 2-D k-means (used by the divide-and-conquer partitioner) |
//! | [`index`] | the pluggable spatial-index layer: [`SpatialIndex`](rdbsc_index::SpatialIndex), the RDB-SC-Grid backend, the flat dense-grid backend |
//! | [`algos`] | greedy / sampling / divide-and-conquer / exact / incremental solvers |
//! | [`workloads`] | UNIFORM & SKEWED generators, simulated POI / trajectory data, Table 2 config |
//! | [`platform`] | the platform simulator, the parallel assignment engine + [`EngineHandle`](rdbsc_platform::EngineHandle) |
//! | [`server`] | the HTTP/1.1 online serving subsystem (admission control, micro-batching, metrics) |

#![deny(missing_docs)]

pub use rdbsc_algos as algos;
pub use rdbsc_cluster as cluster;
pub use rdbsc_geo as geo;
pub use rdbsc_index as index;
pub use rdbsc_model as model;
pub use rdbsc_platform as platform;
pub use rdbsc_server as server;
pub use rdbsc_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use rdbsc_algos::{
        divide_and_conquer, exact_best, greedy, ground_truth, max_task_coverage_assignment,
        nearest_task_assignment, sampling, DncConfig, ExactConfig, GreedyConfig,
        GroundTruthConfig, IncrementalAssigner, IncrementalConfig, SamplingConfig, SolveRequest,
        Solver,
    };
    pub use rdbsc_geo::{AngleRange, MotionModel, Point, Rect, Sector};
    pub use rdbsc_index::{
        choose_backend, DynSpatialIndex, FlatGridIndex, GridIndex, GridStats, IndexBackend,
        MaintenanceCounters, SpatialIndex, WorkloadProfile,
    };
    pub use rdbsc_model::{
        aggregate_answers, compute_valid_pairs, evaluate, expected_std, reliability, spatial_diversity,
        std_diversity, temporal_diversity, Assignment, BipartiteCandidates, Confidence,
        Contribution, ObjectiveValue, ProblemInstance, Task, TaskId, TaskPriors, TimeWindow,
        ValidPair, Worker, WorkerId,
    };
    pub use rdbsc_platform::{
        AssignmentEngine, EngineConfig, EngineEvent, EngineHandle, PlatformConfig, PlatformSim,
        SimulationReport,
    };
    pub use rdbsc_server::{Server, ServerConfig};
    pub use rdbsc_workloads::{
        generate_instance, generate_metro_instance, Distribution, ExperimentConfig, MetroConfig,
        PoiGenerator, Scale, TrajectoryGenerator,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_core_types() {
        use crate::prelude::*;
        // Compile-time smoke test: the core entry points are reachable.
        let _ = ExperimentConfig::small_default();
        let _ = GreedyConfig::default();
        let _ = SamplingConfig::default();
        let _ = DncConfig::default();
        let _ = PlatformConfig::default();
        let _ = ServerConfig::default();
        let _ = EngineConfig::default();
        let _ = Point::new(0.0, 0.0);
    }
}
