//! # rdbsc-geo
//!
//! 2-D geometry substrate for the RDB-SC (Reliable Diversity-Based Spatial
//! Crowdsourcing) system.
//!
//! The crate is intentionally free of any crowdsourcing-specific types: it
//! only knows about points, angles, axis-aligned rectangles, circular
//! sectors, and the *motion model* that decides whether a moving agent with a
//! direction cone and a speed can reach a target point before a deadline.
//!
//! Everything here is used by the higher layers:
//!
//! * [`Point`] / [`Rect`] — task & worker locations and grid-index cells.
//! * [`AngleRange`] — a worker's registered moving-direction cone
//!   `[α⁻, α⁺]` (Definition 2 of the paper), with full wrap-around support.
//! * [`motion`] — travel times, arrival times and reachability checks
//!   (constraint 1 of Definition 4).
//! * [`Sector`] — the fan-shaped working area described in Section 8.1.

#![deny(missing_docs)]

pub mod angle;
pub mod motion;
pub mod point;
pub mod rect;
pub mod sector;

pub use angle::{normalize_angle, AngleRange, FULL_TURN};
pub use motion::{MotionModel, Reachability};
pub use point::Point;
pub use rect::Rect;
pub use sector::Sector;

/// Absolute tolerance used throughout the geometry layer when comparing
/// floating-point quantities (angles, distances, times).
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floats are equal within [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// Returns `true` when `a <= b` allowing [`EPSILON`] slack.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPSILON
}
