//! Fan-shaped (circular sector) regions.
//!
//! Section 8.1 of the paper describes workers configuring a *fan-shaped
//! working area*: a sector anchored at the worker's location, opening along
//! the worker's moving-direction cone and bounded by the maximum distance the
//! worker can still cover. The same shape is used when deriving workers from
//! taxi trajectories (the minimal sector at the start point containing all
//! later trajectory points).

use crate::angle::AngleRange;
use crate::point::Point;
use crate::rect::Rect;

/// A circular sector: apex, angular range and radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sector {
    /// Apex (the worker's location).
    pub apex: Point,
    /// Angular opening of the sector.
    pub angles: AngleRange,
    /// Radius (maximum travel distance). `f64::INFINITY` means unbounded.
    pub radius: f64,
}

impl Sector {
    /// Creates a sector.
    pub fn new(apex: Point, angles: AngleRange, radius: f64) -> Self {
        Self {
            apex,
            angles,
            radius,
        }
    }

    /// Does the sector contain point `p`?
    pub fn contains(&self, p: Point) -> bool {
        let d = self.apex.distance(p);
        if d > self.radius + crate::EPSILON {
            return false;
        }
        if d == 0.0 {
            return true;
        }
        self.angles.contains(self.apex.direction_to(p))
    }

    /// The smallest sector at `apex` with the given `radius` that contains
    /// every point in `points` (ignoring points farther than `radius` is NOT
    /// done — the radius is simply taken as given; callers typically pass the
    /// maximum observed distance).
    ///
    /// Used to derive a worker's direction cone from a trajectory: the cone
    /// is the minimal covering arc of the directions from the start point to
    /// every later trajectory point.
    pub fn covering(apex: Point, points: &[Point], radius: f64) -> Self {
        let angles: Vec<f64> = points
            .iter()
            .filter(|p| apex.distance_sq(**p) > 0.0)
            .map(|p| apex.direction_to(*p))
            .collect();
        Sector::new(apex, AngleRange::covering_arc(&angles), radius)
    }

    /// Conservative test: might the sector intersect rectangle `rect`?
    ///
    /// Guaranteed to return `true` whenever an intersection exists (no false
    /// negatives); may return `true` for some near-miss configurations. Used
    /// by the grid index for cell-level pruning, where only false positives
    /// are acceptable.
    pub fn may_intersect_rect(&self, rect: &Rect) -> bool {
        // Distance pruning: the rectangle must come within `radius` of the apex.
        if rect.min_distance_to_point(self.apex) > self.radius + crate::EPSILON {
            return false;
        }
        if rect.contains(self.apex) || self.angles.is_full() {
            return true;
        }
        // Angular pruning: the directions from the apex towards the rectangle
        // form an arc; if that arc misses the sector's opening entirely, the
        // sector cannot reach the rectangle.
        let apex_rect = Rect::new(self.apex.x, self.apex.y, self.apex.x, self.apex.y);
        let dir = apex_rect.direction_range_to(rect);
        self.angles.intersects(&dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn east_sector() -> Sector {
        Sector::new(
            Point::ORIGIN,
            AngleRange::from_bounds(-FRAC_PI_4, FRAC_PI_4),
            2.0,
        )
    }

    #[test]
    fn contains_points_in_opening() {
        let s = east_sector();
        assert!(s.contains(Point::new(1.0, 0.0)));
        assert!(s.contains(Point::new(1.0, 0.5)));
        assert!(s.contains(Point::ORIGIN));
        assert!(!s.contains(Point::new(-1.0, 0.0)), "behind the apex");
        assert!(!s.contains(Point::new(3.0, 0.0)), "beyond the radius");
        assert!(!s.contains(Point::new(0.0, 1.0)), "outside the cone");
    }

    #[test]
    fn covering_sector_from_trajectory() {
        let apex = Point::ORIGIN;
        let pts = [
            Point::new(1.0, 0.1),
            Point::new(2.0, 0.5),
            Point::new(1.5, -0.4),
        ];
        let s = Sector::covering(apex, &pts, 3.0);
        for p in pts {
            assert!(s.contains(p), "covering sector must contain {p}");
        }
        assert!(s.angles.width() < FRAC_PI_2);
    }

    #[test]
    fn covering_sector_ignores_apex_duplicates() {
        let apex = Point::new(0.5, 0.5);
        let s = Sector::covering(apex, &[apex, Point::new(1.0, 0.5)], 1.0);
        assert!(s.contains(Point::new(1.0, 0.5)));
        assert!(s.angles.width() < 1e-9);
    }

    #[test]
    fn may_intersect_rect_distance_prune() {
        let s = east_sector();
        let far = Rect::new(10.0, 10.0, 11.0, 11.0);
        assert!(!s.may_intersect_rect(&far));
    }

    #[test]
    fn may_intersect_rect_angle_prune() {
        let s = east_sector();
        let behind = Rect::new(-1.5, -0.2, -1.0, 0.2);
        assert!(!s.may_intersect_rect(&behind));
        let ahead = Rect::new(1.0, -0.2, 1.5, 0.2);
        assert!(s.may_intersect_rect(&ahead));
    }

    #[test]
    fn may_intersect_rect_containing_apex() {
        let s = Sector::new(
            Point::new(0.5, 0.5),
            AngleRange::from_bounds(PI, PI + 0.1),
            0.1,
        );
        let r = Rect::unit();
        assert!(s.may_intersect_rect(&r));
    }

    #[test]
    fn no_false_negative_sampled() {
        // Sample points inside the sector; any rect containing such a point
        // must not be pruned.
        let s = east_sector();
        for i in 1..10 {
            let d = 0.2 * i as f64;
            let p = Point::new(d * 0.9, d * 0.1);
            if s.contains(p) {
                let r = Rect::new(p.x - 0.05, p.y - 0.05, p.x + 0.05, p.y + 0.05);
                assert!(s.may_intersect_rect(&r));
            }
        }
    }
}
