//! Axis-aligned rectangles, used for grid-index cells.

use crate::angle::AngleRange;
use crate::point::Point;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub min_x: f64,
    /// Bottom edge.
    pub min_y: f64,
    /// Right edge.
    pub max_x: f64,
    /// Top edge.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its min/max corners. Panics (debug builds)
    /// when the corners are inverted.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rectangle");
        Self {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The unit square `[0,1]²` used by the synthetic workloads.
    pub fn unit() -> Self {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    /// Rectangle from two opposite corner points.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// The four corner points, counter-clockwise from the min corner.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }

    /// Does the rectangle contain `p` (inclusive boundaries)?
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Do the two rectangles intersect (inclusive boundaries)?
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The closest point of the rectangle to `p` (i.e. `p` clamped onto the
    /// rectangle).
    #[inline]
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
        )
    }

    /// Minimum distance from point `p` to the rectangle (0 when inside).
    pub fn min_distance_to_point(&self, p: Point) -> f64 {
        p.distance(self.clamp_point(p))
    }

    /// Maximum distance from point `p` to any point of the rectangle.
    pub fn max_distance_to_point(&self, p: Point) -> f64 {
        self.corners()
            .iter()
            .map(|c| p.distance(*c))
            .fold(0.0, f64::max)
    }

    /// Minimum distance between any two points of `self` and `other`
    /// (0 when the rectangles intersect).
    ///
    /// This is the `d_min` used by the grid index's cell-level pruning: any
    /// worker in one cell needs at least `d_min / v_max` time to reach the
    /// other cell.
    pub fn min_distance(&self, other: &Rect) -> f64 {
        let dx = (other.min_x - self.max_x).max(self.min_x - other.max_x).max(0.0);
        let dy = (other.min_y - self.max_y).max(self.min_y - other.max_y).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance between any two points of `self` and `other`
    /// (attained at a pair of corners).
    pub fn max_distance(&self, other: &Rect) -> f64 {
        let mut best: f64 = 0.0;
        for a in self.corners() {
            for b in other.corners() {
                best = best.max(a.distance(b));
            }
        }
        best
    }

    /// The set of directions from points of `self` towards points of
    /// `other`, as a covering [`AngleRange`].
    ///
    /// For *disjoint* convex sets this is exact: the direction set is the
    /// angular extent of the Minkowski difference `other ⊖ self`, a convex
    /// polygon not containing the origin, whose angular extremes are attained
    /// at vertex pairs. When the rectangles intersect, every direction is
    /// possible and the full circle is returned.
    pub fn direction_range_to(&self, other: &Rect) -> AngleRange {
        if self.intersects(other) {
            return AngleRange::full();
        }
        let mut angles = Vec::with_capacity(16);
        for a in self.corners() {
            for b in other.corners() {
                if a != b {
                    angles.push(a.direction_to(b));
                }
            }
        }
        AngleRange::covering_arc(&angles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn contains_and_clamp() {
        let r = Rect::new(0.0, 0.0, 2.0, 1.0);
        assert!(r.contains(Point::new(1.0, 0.5)));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(!r.contains(Point::new(2.1, 0.5)));
        assert_eq!(r.clamp_point(Point::new(3.0, -1.0)), Point::new(2.0, 0.0));
    }

    #[test]
    fn min_max_distance_between_disjoint_rects() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, 0.0, 3.0, 1.0);
        assert!((a.min_distance(&b) - 1.0).abs() < 1e-12);
        // farthest corners: (0,0)-(3,1) or (0,1)-(3,0): sqrt(9+1)
        assert!((a.max_distance(&b) - 10.0_f64.sqrt()).abs() < 1e-12);
        // symmetric
        assert!((b.min_distance(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_distance_zero_when_overlapping() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(0.5, 0.5, 2.0, 2.0);
        assert_eq!(a.min_distance(&b), 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn diagonal_min_distance() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert!((a.min_distance(&b) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn point_distance_helpers() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.min_distance_to_point(Point::new(0.5, 0.5)), 0.0);
        assert!((r.min_distance_to_point(Point::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
        assert!((r.max_distance_to_point(Point::new(0.0, 0.0)) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn direction_range_east_neighbor() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(3.0, 0.0, 4.0, 1.0);
        let dir = a.direction_range_to(&b);
        // Roughly east: should contain angle 0 and not contain π.
        assert!(dir.contains(0.0));
        assert!(!dir.contains(PI));
        assert!(dir.width() < PI);
    }

    #[test]
    fn direction_range_full_when_overlapping() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(0.5, 0.5, 1.5, 1.5);
        assert!(a.direction_range_to(&b).is_full());
    }

    #[test]
    fn direction_range_contains_sampled_directions() {
        // Exactness check by sampling interior points of both rects.
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.5, 3.0, 3.5, 4.0);
        let dir = a.direction_range_to(&b);
        for i in 0..5 {
            for j in 0..5 {
                let pa = Point::new(0.25 * i as f64, 0.25 * j as f64);
                let pb = Point::new(2.5 + 0.25 * i as f64, 3.0 + 0.25 * j as f64);
                assert!(
                    dir.contains(pa.direction_to(pb)),
                    "direction from {pa} to {pb} must be covered"
                );
            }
        }
    }

    #[test]
    fn unit_rect_basics() {
        let u = Rect::unit();
        assert_eq!(u.width(), 1.0);
        assert_eq!(u.height(), 1.0);
        assert_eq!(u.center(), Point::new(0.5, 0.5));
        assert_eq!(u.corners().len(), 4);
    }

    #[test]
    fn from_corners_normalises() {
        let r = Rect::from_corners(Point::new(1.0, 2.0), Point::new(-1.0, 0.0));
        assert_eq!(r, Rect::new(-1.0, 0.0, 1.0, 2.0));
    }
}
