//! Angles and angular ranges with wrap-around semantics.
//!
//! Workers in RDB-SC register a moving-direction cone `[α⁻, α⁺]`
//! (Definition 2). Because directions live on a circle, the range may wrap
//! around `2π` (e.g. a worker heading roughly east could register
//! `[7π/4, π/4]`). [`AngleRange`] models such ranges explicitly, and also
//! provides the *minimal covering arc* operation needed by the grid index's
//! cell-level pruning (Section 7.1).

use std::f64::consts::PI;

/// One full turn, `2π`.
pub const FULL_TURN: f64 = 2.0 * PI;

/// Normalises an angle (radians) into `[0, 2π)`.
#[inline]
pub fn normalize_angle(a: f64) -> f64 {
    let mut r = a % FULL_TURN;
    if r < 0.0 {
        r += FULL_TURN;
    }
    // `-1e-18 % 2π` can round to exactly 2π after the addition.
    if r >= FULL_TURN {
        r -= FULL_TURN;
    }
    r
}

/// Counter-clockwise angular difference `to - from`, normalised into
/// `[0, 2π)`.
#[inline]
pub fn ccw_delta(from: f64, to: f64) -> f64 {
    normalize_angle(to - from)
}

/// A closed angular interval travelled counter-clockwise from `start` to
/// `start + width`, with `width ∈ [0, 2π]`.
///
/// `width == 2π` represents the full circle (a worker with no preferred
/// direction registers `[0, 2π]` per the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngleRange {
    start: f64,
    width: f64,
}

impl AngleRange {
    /// Builds a range from its start angle and width (radians).
    ///
    /// The start is normalised into `[0, 2π)`; the width is clamped into
    /// `[0, 2π]`.
    pub fn new(start: f64, width: f64) -> Self {
        let width = width.clamp(0.0, FULL_TURN);
        Self {
            start: normalize_angle(start),
            width,
        }
    }

    /// Builds the range that goes counter-clockwise from `from` to `to`
    /// (the paper's `[α⁻, α⁺]` notation). If `from == to` the range is a
    /// single direction (width 0).
    pub fn from_bounds(from: f64, to: f64) -> Self {
        let from_n = normalize_angle(from);
        let to_n = normalize_angle(to);
        let width = if (to - from).abs() >= FULL_TURN {
            FULL_TURN
        } else {
            ccw_delta(from_n, to_n)
        };
        Self {
            start: from_n,
            width,
        }
    }

    /// The full circle `[0, 2π]` — a worker free to move in any direction.
    pub fn full() -> Self {
        Self {
            start: 0.0,
            width: FULL_TURN,
        }
    }

    /// A degenerate range containing only `angle`.
    pub fn singleton(angle: f64) -> Self {
        Self::new(angle, 0.0)
    }

    /// Start of the range (`α⁻`), in `[0, 2π)`.
    #[inline]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// End of the range (`α⁺`), in `[0, 2π)` (may be numerically "before"
    /// `start` when the range wraps).
    #[inline]
    pub fn end(&self) -> f64 {
        normalize_angle(self.start + self.width)
    }

    /// Angular width of the range, in `[0, 2π]`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// `true` when the range covers the whole circle.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.width >= FULL_TURN - crate::EPSILON
    }

    /// Does the range contain direction `angle` (inclusive at both ends,
    /// with a small tolerance)?
    pub fn contains(&self, angle: f64) -> bool {
        if self.is_full() {
            return true;
        }
        let delta = ccw_delta(self.start, angle);
        delta <= self.width + crate::EPSILON
            || (FULL_TURN - delta) <= crate::EPSILON // angle == start from the other side
    }

    /// The midpoint direction of the range.
    pub fn mid(&self) -> f64 {
        normalize_angle(self.start + self.width / 2.0)
    }

    /// Does this range intersect `other`?
    pub fn intersects(&self, other: &AngleRange) -> bool {
        if self.is_full() || other.is_full() {
            return true;
        }
        self.contains(other.start)
            || self.contains(other.end())
            || other.contains(self.start)
            || other.contains(self.end())
    }

    /// Is `other` entirely contained in `self`?
    pub fn contains_range(&self, other: &AngleRange) -> bool {
        if self.is_full() {
            return true;
        }
        if other.is_full() {
            return false;
        }
        let offset = ccw_delta(self.start, other.start);
        offset <= self.width + crate::EPSILON
            && offset + other.width <= self.width + crate::EPSILON
    }

    /// The smallest range containing both `self` and `other`.
    ///
    /// Used to maintain the per-cell angular hull of worker headings in the
    /// grid index. The union arc must start at one of the two starts and end
    /// at one of the two ends; the smallest such candidate covering both
    /// inputs is returned (or the full circle when no proper arc covers
    /// both).
    pub fn union_hull(&self, other: &AngleRange) -> AngleRange {
        if self.is_full() || other.is_full() {
            return AngleRange::full();
        }
        let mut best = AngleRange::full();
        for &start in &[self.start, other.start] {
            for &end in &[self.end(), other.end()] {
                let cand = AngleRange::new(start, ccw_delta(start, end));
                if cand.contains_range(self)
                    && cand.contains_range(other)
                    && cand.width < best.width
                {
                    best = cand;
                }
            }
        }
        best
    }

    /// The minimal arc covering every angle in `angles`.
    ///
    /// For a disjoint pair of convex regions, the set of directions from one
    /// to the other is exactly the set of angles of their Minkowski
    /// difference's vertices' hull; this helper computes the covering arc of
    /// such a finite angle set (complement of the largest gap between
    /// consecutive sorted angles). Returns the full circle for an empty
    /// slice.
    pub fn covering_arc(angles: &[f64]) -> AngleRange {
        if angles.is_empty() {
            return AngleRange::full();
        }
        if angles.len() == 1 {
            return AngleRange::singleton(angles[0]);
        }
        let mut sorted: Vec<f64> = angles.iter().map(|&a| normalize_angle(a)).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("angles must not be NaN"));
        // Find the largest gap between consecutive angles (circularly).
        let mut best_gap = -1.0;
        let mut best_after = 0usize; // the arc starts right after this index
        for i in 0..sorted.len() {
            let next = sorted[(i + 1) % sorted.len()];
            let gap = if i + 1 == sorted.len() {
                ccw_delta(sorted[i], next + FULL_TURN)
            } else {
                next - sorted[i]
            };
            let gap = normalize_angle(gap);
            let gap = if gap == 0.0 && sorted.len() > 1 && i + 1 == sorted.len() {
                FULL_TURN
            } else {
                gap
            };
            if gap > best_gap {
                best_gap = gap;
                best_after = i;
            }
        }
        let start = sorted[(best_after + 1) % sorted.len()];
        let width = FULL_TURN - best_gap;
        AngleRange::new(start, width.max(0.0))
    }
}

impl Default for AngleRange {
    fn default() -> Self {
        AngleRange::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn normalize_into_unit_circle() {
        assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-FRAC_PI_2) - 1.5 * PI).abs() < 1e-12);
        assert_eq!(normalize_angle(0.0), 0.0);
        assert!(normalize_angle(-1e-18) < FULL_TURN);
    }

    #[test]
    fn ccw_delta_wraps() {
        assert!((ccw_delta(1.5 * PI, FRAC_PI_2) - PI).abs() < 1e-12);
        assert!((ccw_delta(FRAC_PI_2, 1.5 * PI) - PI).abs() < 1e-12);
        assert_eq!(ccw_delta(1.0, 1.0), 0.0);
    }

    #[test]
    fn contains_simple_range() {
        let r = AngleRange::from_bounds(FRAC_PI_4, FRAC_PI_2);
        assert!(r.contains(FRAC_PI_4));
        assert!(r.contains(FRAC_PI_2));
        assert!(r.contains(0.3 * PI));
        assert!(!r.contains(PI));
        assert!(!r.contains(0.0));
    }

    #[test]
    fn contains_wrapping_range() {
        // from 7π/4 to π/4, crossing 0.
        let r = AngleRange::from_bounds(1.75 * PI, FRAC_PI_4);
        assert!(r.contains(0.0));
        assert!(r.contains(1.9 * PI));
        assert!(r.contains(0.2));
        assert!(!r.contains(PI));
        assert!((r.width() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn full_range_contains_everything() {
        let r = AngleRange::full();
        for i in 0..64 {
            assert!(r.contains(i as f64 * 0.1));
        }
        assert!(r.is_full());
    }

    #[test]
    fn mid_of_wrapping_range() {
        let r = AngleRange::from_bounds(1.75 * PI, FRAC_PI_4);
        assert!((r.mid() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn intersects_detects_overlap_and_disjoint() {
        let a = AngleRange::from_bounds(0.0, FRAC_PI_2);
        let b = AngleRange::from_bounds(FRAC_PI_4, PI);
        let c = AngleRange::from_bounds(PI + 0.1, 1.5 * PI);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&a));
        assert!(a.intersects(&AngleRange::full()));
    }

    #[test]
    fn union_hull_covers_both() {
        let a = AngleRange::from_bounds(0.0, FRAC_PI_4);
        let b = AngleRange::from_bounds(PI, PI + FRAC_PI_4);
        let u = a.union_hull(&b);
        for probe in [0.0, 0.1, FRAC_PI_4, PI, PI + 0.1, PI + FRAC_PI_4] {
            assert!(u.contains(probe), "union must contain {probe}");
        }
        // Must pick the smaller covering side.
        assert!(u.width() < FULL_TURN);
    }

    #[test]
    fn union_hull_overlapping() {
        let a = AngleRange::from_bounds(0.0, FRAC_PI_2);
        let b = AngleRange::from_bounds(FRAC_PI_4, PI);
        let u = a.union_hull(&b);
        assert!(u.contains(0.0) && u.contains(PI) && u.contains(FRAC_PI_2));
        assert!((u.width() - PI).abs() < 1e-9);
    }

    #[test]
    fn covering_arc_of_clustered_angles() {
        let arc = AngleRange::covering_arc(&[0.1, 0.2, 0.4]);
        assert!(arc.contains(0.1) && arc.contains(0.2) && arc.contains(0.4));
        assert!((arc.width() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn covering_arc_wrapping_cluster() {
        let arc = AngleRange::covering_arc(&[6.2, 0.1, 0.05]);
        assert!(arc.contains(6.2) && arc.contains(0.1) && arc.contains(0.05));
        assert!(arc.width() < 1.0, "wrap-around cluster must stay tight");
    }

    #[test]
    fn covering_arc_empty_and_single() {
        assert!(AngleRange::covering_arc(&[]).is_full());
        let single = AngleRange::covering_arc(&[1.0]);
        assert!(single.contains(1.0));
        assert_eq!(single.width(), 0.0);
    }

    #[test]
    fn from_bounds_full_turn() {
        let r = AngleRange::from_bounds(0.0, FULL_TURN);
        assert!(r.is_full());
    }
}
