//! The worker motion / reachability model.
//!
//! Constraint 1 of the RDB-SC problem (Definition 4) requires that a worker
//! assigned to a task arrives at the task's location *within the task's valid
//! period* `[sᵢ, eᵢ]`, while moving in a direction that lies inside the
//! worker's registered cone `[α⁻ⱼ, α⁺ⱼ]`.
//!
//! [`MotionModel`] captures a worker's kinematic state (current location,
//! scalar speed, heading cone and the time from which the worker is
//! available) and answers reachability queries against target points and time
//! windows.

use crate::angle::AngleRange;
use crate::point::Point;

/// Kinematic state of a moving worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionModel {
    /// Current location of the worker.
    pub location: Point,
    /// Scalar speed (data-space units per time unit). Must be `> 0` for the
    /// worker to reach any non-coincident point.
    pub speed: f64,
    /// Registered moving-direction cone `[α⁻, α⁺]`.
    pub heading: AngleRange,
    /// Time at which the worker becomes available (check-in time). Travel
    /// starts no earlier than this.
    pub available_from: f64,
}

/// Result of a reachability query: either the target is unreachable under the
/// direction/deadline constraints, or it is reachable with the given effective
/// arrival time and approach direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reachability {
    /// The target cannot be served by this worker.
    Unreachable(UnreachableReason),
    /// The target can be served.
    Reachable {
        /// Time at which the worker physically arrives at the target (travel
        /// only, before any waiting).
        raw_arrival: f64,
        /// Effective arrival used for temporal diversity: the raw arrival,
        /// pushed forward to the window start if the worker arrives early and
        /// waiting is allowed.
        effective_arrival: f64,
        /// Direction of travel from the worker towards the target, in
        /// `[0, 2π)`.
        travel_direction: f64,
    },
}

/// Why a target is not reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnreachableReason {
    /// The travel direction falls outside the worker's heading cone.
    DirectionOutsideCone,
    /// The worker cannot arrive before the window closes.
    TooLate,
    /// The worker would arrive before the window opens and waiting is not
    /// allowed by the query.
    TooEarly,
    /// The worker's speed is zero (or negative) and the target is elsewhere.
    Immobile,
}

impl MotionModel {
    /// Creates a motion model available from time `0`.
    pub fn new(location: Point, speed: f64, heading: AngleRange) -> Self {
        Self {
            location,
            speed,
            heading,
            available_from: 0.0,
        }
    }

    /// Creates a motion model with an explicit check-in time.
    pub fn with_available_from(mut self, t: f64) -> Self {
        self.available_from = t;
        self
    }

    /// Travel time from the worker's location to `target`; `None` when the
    /// worker cannot move (zero speed) and the target is not the current
    /// location.
    pub fn travel_time(&self, target: Point) -> Option<f64> {
        let dist = self.location.distance(target);
        if dist == 0.0 {
            return Some(0.0);
        }
        if self.speed <= 0.0 {
            return None;
        }
        Some(dist / self.speed)
    }

    /// Raw arrival time at `target` when departing at `depart_at` (clamped to
    /// `available_from`).
    pub fn arrival_time(&self, target: Point, depart_at: f64) -> Option<f64> {
        let start = depart_at.max(self.available_from);
        self.travel_time(target).map(|t| start + t)
    }

    /// Direction of travel towards `target` (radians in `[0, 2π)`).
    pub fn direction_towards(&self, target: Point) -> f64 {
        self.location.direction_to(target)
    }

    /// Is the direction towards `target` within the worker's heading cone?
    /// A target coinciding with the worker's location is always acceptable.
    pub fn direction_allows(&self, target: Point) -> bool {
        if self.location.distance_sq(target) == 0.0 {
            return true;
        }
        self.heading.contains(self.direction_towards(target))
    }

    /// Full reachability query against a target and a time window
    /// `[window_start, window_end]`, departing at `depart_at`.
    ///
    /// `allow_wait` controls what happens when the worker would arrive before
    /// the window opens: if `true` (the default interpretation used
    /// throughout this reproduction), the worker waits at the location and
    /// the effective arrival is `window_start`; if `false`, such an early
    /// arrival is rejected (strict reading of "arrival time falls into the
    /// valid period").
    pub fn reach(
        &self,
        target: Point,
        window_start: f64,
        window_end: f64,
        depart_at: f64,
        allow_wait: bool,
    ) -> Reachability {
        if !self.direction_allows(target) {
            return Reachability::Unreachable(UnreachableReason::DirectionOutsideCone);
        }
        let Some(raw_arrival) = self.arrival_time(target, depart_at) else {
            return Reachability::Unreachable(UnreachableReason::Immobile);
        };
        if raw_arrival > window_end + crate::EPSILON {
            return Reachability::Unreachable(UnreachableReason::TooLate);
        }
        let effective_arrival = if raw_arrival < window_start {
            if allow_wait {
                window_start
            } else {
                return Reachability::Unreachable(UnreachableReason::TooEarly);
            }
        } else {
            raw_arrival
        };
        Reachability::Reachable {
            raw_arrival,
            effective_arrival,
            travel_direction: self.direction_towards(target),
        }
    }

    /// Convenience: `true` when [`reach`](Self::reach) succeeds.
    pub fn can_reach(
        &self,
        target: Point,
        window_start: f64,
        window_end: f64,
        depart_at: f64,
        allow_wait: bool,
    ) -> bool {
        matches!(
            self.reach(target, window_start, window_end, depart_at, allow_wait),
            Reachability::Reachable { .. }
        )
    }

    /// The farthest distance the worker can cover before `deadline` when
    /// departing at `depart_at` (never negative).
    pub fn max_travel_distance(&self, depart_at: f64, deadline: f64) -> f64 {
        let start = depart_at.max(self.available_from);
        let budget = (deadline - start).max(0.0);
        budget * self.speed.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn east_worker() -> MotionModel {
        MotionModel::new(
            Point::new(0.0, 0.0),
            1.0,
            AngleRange::from_bounds(-FRAC_PI_4, FRAC_PI_4),
        )
    }

    #[test]
    fn travel_and_arrival_times() {
        let w = east_worker();
        assert_eq!(w.travel_time(Point::new(2.0, 0.0)), Some(2.0));
        assert_eq!(w.arrival_time(Point::new(2.0, 0.0), 1.0), Some(3.0));
        // available_from pushes departure forward.
        let w = east_worker().with_available_from(5.0);
        assert_eq!(w.arrival_time(Point::new(2.0, 0.0), 1.0), Some(7.0));
    }

    #[test]
    fn immobile_worker_cannot_travel() {
        let w = MotionModel::new(Point::ORIGIN, 0.0, AngleRange::full());
        assert_eq!(w.travel_time(Point::new(1.0, 0.0)), None);
        assert_eq!(w.travel_time(Point::ORIGIN), Some(0.0));
        assert!(matches!(
            w.reach(Point::new(1.0, 0.0), 0.0, 10.0, 0.0, true),
            Reachability::Unreachable(UnreachableReason::Immobile)
        ));
    }

    #[test]
    fn direction_constraint_rejects_backwards_tasks() {
        let w = east_worker();
        assert!(w.direction_allows(Point::new(1.0, 0.2)));
        assert!(!w.direction_allows(Point::new(-1.0, 0.0)));
        assert!(matches!(
            w.reach(Point::new(-1.0, 0.0), 0.0, 100.0, 0.0, true),
            Reachability::Unreachable(UnreachableReason::DirectionOutsideCone)
        ));
    }

    #[test]
    fn deadline_constraint() {
        let w = east_worker();
        // distance 2, speed 1 -> arrival 2.0; window [0, 1.5] is too late.
        assert!(matches!(
            w.reach(Point::new(2.0, 0.0), 0.0, 1.5, 0.0, true),
            Reachability::Unreachable(UnreachableReason::TooLate)
        ));
        // window [0, 2.5] works.
        match w.reach(Point::new(2.0, 0.0), 0.0, 2.5, 0.0, true) {
            Reachability::Reachable {
                raw_arrival,
                effective_arrival,
                travel_direction,
            } => {
                assert!((raw_arrival - 2.0).abs() < 1e-12);
                assert!((effective_arrival - 2.0).abs() < 1e-12);
                assert!((travel_direction - 0.0).abs() < 1e-12);
            }
            other => panic!("expected reachable, got {other:?}"),
        }
    }

    #[test]
    fn early_arrival_waits_or_is_rejected() {
        let w = east_worker();
        // Arrival at t=1, window opens at t=5.
        match w.reach(Point::new(1.0, 0.0), 5.0, 10.0, 0.0, true) {
            Reachability::Reachable {
                raw_arrival,
                effective_arrival,
                ..
            } => {
                assert!((raw_arrival - 1.0).abs() < 1e-12);
                assert!((effective_arrival - 5.0).abs() < 1e-12);
            }
            other => panic!("expected reachable, got {other:?}"),
        }
        assert!(matches!(
            w.reach(Point::new(1.0, 0.0), 5.0, 10.0, 0.0, false),
            Reachability::Unreachable(UnreachableReason::TooEarly)
        ));
    }

    #[test]
    fn coincident_target_is_always_reachable_in_window() {
        let w = MotionModel::new(
            Point::new(0.3, 0.3),
            0.5,
            AngleRange::from_bounds(PI, PI + FRAC_PI_2),
        );
        assert!(w.can_reach(Point::new(0.3, 0.3), 0.0, 1.0, 0.0, true));
    }

    #[test]
    fn max_travel_distance_budget() {
        let w = east_worker().with_available_from(2.0);
        assert!((w.max_travel_distance(0.0, 5.0) - 3.0).abs() < 1e-12);
        assert_eq!(w.max_travel_distance(0.0, 1.0), 0.0);
    }
}
