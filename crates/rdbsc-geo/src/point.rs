//! 2-D points in the unit (or arbitrary) planar data space.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the 2-D data space.
///
/// The paper works in the normalised space `[0, 1]²` for synthetic data and
/// in a lat/lon bounding box for the Beijing datasets; `Point` is agnostic to
/// the choice of units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper when only comparisons
    /// are needed).
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The direction angle (radians in `[0, 2π)`) of the vector from `self`
    /// towards `other`. Returns `0.0` when the points coincide.
    #[inline]
    pub fn direction_to(&self, other: Point) -> f64 {
        let dy = other.y - self.y;
        let dx = other.x - self.x;
        if dx == 0.0 && dy == 0.0 {
            return 0.0;
        }
        crate::angle::normalize_angle(dy.atan2(dx))
    }

    /// Midpoint of the segment `self` – `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// The point reached by travelling `dist` in direction `angle` (radians).
    #[inline]
    pub fn translate_polar(&self, angle: f64, dist: f64) -> Point {
        Point::new(self.x + dist * angle.cos(), self.y + dist * angle.sin())
    }

    /// Component-wise linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Euclidean norm when interpreting the point as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(0.2, 0.9);
        let b = Point::new(-1.5, 4.25);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn direction_to_cardinal_points() {
        let o = Point::ORIGIN;
        assert!((o.direction_to(Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.direction_to(Point::new(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((o.direction_to(Point::new(-1.0, 0.0)) - PI).abs() < 1e-12);
        assert!((o.direction_to(Point::new(0.0, -1.0)) - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn direction_to_same_point_is_zero() {
        let p = Point::new(0.3, 0.3);
        assert_eq!(p.direction_to(p), 0.0);
    }

    #[test]
    fn translate_polar_round_trip() {
        let p = Point::new(0.5, 0.5);
        let q = p.translate_polar(1.2, 0.7);
        assert!((p.distance(q) - 0.7).abs() < 1e-12);
        assert!((p.direction_to(q) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -4.0);
        let m = a.midpoint(b);
        let l = a.lerp(b, 0.5);
        assert!((m.x - l.x).abs() < 1e-12 && (m.y - l.y).abs() < 1e-12);
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert!((Point::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
    }
}
