//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rdbsc_geo::{normalize_angle, AngleRange, MotionModel, Point, Rect, FULL_TURN};

proptest! {
    /// Normalised angles always land in [0, 2π).
    #[test]
    fn normalize_angle_in_range(a in -1e6f64..1e6f64) {
        let n = normalize_angle(a);
        prop_assert!((0.0..FULL_TURN).contains(&n));
    }

    /// Normalisation is idempotent.
    #[test]
    fn normalize_angle_idempotent(a in -1e3f64..1e3f64) {
        let n = normalize_angle(a);
        prop_assert!((normalize_angle(n) - n).abs() < 1e-12);
    }

    /// An AngleRange always contains its own bounds and its midpoint.
    #[test]
    fn angle_range_contains_bounds(start in 0.0..FULL_TURN, width in 0.0..FULL_TURN) {
        let r = AngleRange::new(start, width);
        prop_assert!(r.contains(r.start()));
        prop_assert!(r.contains(r.end()));
        prop_assert!(r.contains(r.mid()));
    }

    /// The union hull contains both input ranges (checked by sampling).
    #[test]
    fn union_hull_covers_inputs(
        s1 in 0.0..FULL_TURN, w1 in 0.0..3.0f64,
        s2 in 0.0..FULL_TURN, w2 in 0.0..3.0f64,
        t in 0.0f64..1.0f64,
    ) {
        let a = AngleRange::new(s1, w1);
        let b = AngleRange::new(s2, w2);
        let u = a.union_hull(&b);
        // sample a point inside each source range
        let pa = normalize_angle(a.start() + t * a.width());
        let pb = normalize_angle(b.start() + t * b.width());
        prop_assert!(u.contains(pa), "union {u:?} missing point {pa} of a={a:?}");
        prop_assert!(u.contains(pb), "union {u:?} missing point {pb} of b={b:?}");
    }

    /// The covering arc of a set of angles contains every angle of the set.
    #[test]
    fn covering_arc_contains_all(angles in proptest::collection::vec(0.0..FULL_TURN, 1..12)) {
        let arc = AngleRange::covering_arc(&angles);
        for &a in &angles {
            prop_assert!(arc.contains(a), "arc {arc:?} missing {a}");
        }
    }

    /// Distance is symmetric and satisfies the triangle inequality.
    #[test]
    fn distance_metric_properties(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0,
        cx in -10.0f64..10.0, cy in -10.0f64..10.0,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    /// Rect min/max distance bracket the distance between any contained points.
    #[test]
    fn rect_min_max_distance_bracket(
        ax in -5.0f64..5.0, ay in -5.0f64..5.0, aw in 0.0f64..3.0, ah in 0.0f64..3.0,
        bx in -5.0f64..5.0, by in -5.0f64..5.0, bw in 0.0f64..3.0, bh in 0.0f64..3.0,
        t1 in 0.0f64..1.0, t2 in 0.0f64..1.0, t3 in 0.0f64..1.0, t4 in 0.0f64..1.0,
    ) {
        let ra = Rect::new(ax, ay, ax + aw, ay + ah);
        let rb = Rect::new(bx, by, bx + bw, by + bh);
        let pa = Point::new(ax + t1 * aw, ay + t2 * ah);
        let pb = Point::new(bx + t3 * bw, by + t4 * bh);
        let d = pa.distance(pb);
        prop_assert!(ra.min_distance(&rb) <= d + 1e-9);
        prop_assert!(ra.max_distance(&rb) >= d - 1e-9);
    }

    /// The direction range between two rects covers the direction between any
    /// pair of contained points.
    #[test]
    fn rect_direction_range_is_sound(
        ax in -5.0f64..5.0, ay in -5.0f64..5.0,
        bx in -5.0f64..5.0, by in -5.0f64..5.0,
        t1 in 0.0f64..1.0, t2 in 0.0f64..1.0, t3 in 0.0f64..1.0, t4 in 0.0f64..1.0,
    ) {
        let ra = Rect::new(ax, ay, ax + 0.5, ay + 0.5);
        let rb = Rect::new(bx, by, bx + 0.5, by + 0.5);
        let dir = ra.direction_range_to(&rb);
        let pa = Point::new(ax + t1 * 0.5, ay + t2 * 0.5);
        let pb = Point::new(bx + t3 * 0.5, by + t4 * 0.5);
        if pa != pb {
            prop_assert!(dir.contains(pa.direction_to(pb)));
        }
    }

    /// A worker can always reach a task at its own location with a generous
    /// window, and arrival times grow with distance along an allowed direction.
    #[test]
    fn reachability_monotone_in_distance(
        speed in 0.05f64..2.0,
        d1 in 0.0f64..1.0,
        d2 in 0.0f64..1.0,
    ) {
        let w = MotionModel::new(Point::ORIGIN, speed, AngleRange::full());
        let near = Point::new(d1.min(d2), 0.0);
        let far = Point::new(d1.max(d2), 0.0);
        let t_near = w.travel_time(near).unwrap();
        let t_far = w.travel_time(far).unwrap();
        prop_assert!(t_near <= t_far + 1e-9);
        prop_assert!(w.can_reach(Point::ORIGIN, 0.0, 1.0, 0.0, true));
    }
}
