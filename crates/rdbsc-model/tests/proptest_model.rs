//! Property-based tests for the RDB-SC model crate.
//!
//! The headline property is the equivalence (Lemma 3.1) between the
//! polynomial expected-diversity computation and the exhaustive
//! possible-worlds expectation, exercised over random worker sets.

use proptest::prelude::*;
use std::f64::consts::TAU;
use rdbsc_model::possible_worlds::{
    expected_sd_exhaustive, expected_std_exhaustive, expected_td_exhaustive,
};
use rdbsc_model::{
    expected_sd, expected_std, expected_td, log_reliability, reliability, spatial_diversity,
    temporal_diversity, Confidence, Contribution, TimeWindow,
};

/// Strategy generating a small worker set as (p, angle, arrival) triples.
fn contribution_set(max_len: usize) -> impl Strategy<Value = Vec<Contribution>> {
    proptest::collection::vec(
        (0.0f64..=1.0, 0.0f64..TAU, 0.0f64..10.0),
        0..=max_len,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(p, a, t)| Contribution::new(Confidence::new(p).unwrap(), a, t))
            .collect()
    })
}

fn window() -> TimeWindow {
    TimeWindow::new(0.0, 10.0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lemma 3.1: the matrix/decomposition computation equals the exhaustive
    /// possible-worlds expectation.
    #[test]
    fn expected_diversity_matches_exhaustive(cs in contribution_set(8), beta in 0.0f64..=1.0) {
        let w = window();
        let sd_fast = expected_sd(&cs);
        let sd_slow = expected_sd_exhaustive(&cs);
        prop_assert!((sd_fast - sd_slow).abs() < 1e-8, "E[SD] {sd_fast} vs {sd_slow}");
        let td_fast = expected_td(&cs, w);
        let td_slow = expected_td_exhaustive(&cs, w);
        prop_assert!((td_fast - td_slow).abs() < 1e-8, "E[TD] {td_fast} vs {td_slow}");
        let std_fast = expected_std(&cs, w, beta);
        let std_slow = expected_std_exhaustive(&cs, w, beta);
        prop_assert!((std_fast - std_slow).abs() < 1e-8, "E[STD] {std_fast} vs {std_slow}");
    }

    /// Expected diversity is bounded above by the deterministic diversity of
    /// the full worker set (every possible world's STD is at most that, by
    /// the monotonicity of Lemma 4.2).
    #[test]
    fn expected_bounded_by_deterministic(cs in contribution_set(8), beta in 0.0f64..=1.0) {
        let w = window();
        let angles: Vec<f64> = cs.iter().map(|c| c.angle).collect();
        let arrivals: Vec<f64> = cs.iter().map(|c| c.arrival).collect();
        let det = beta * spatial_diversity(&angles) + (1.0 - beta) * temporal_diversity(&arrivals, w);
        prop_assert!(expected_std(&cs, w, beta) <= det + 1e-9);
        prop_assert!(expected_std(&cs, w, beta) >= -1e-12);
    }

    /// Lemma 4.2 (monotonicity): appending one more worker never decreases
    /// the expected diversity.
    #[test]
    fn expected_std_monotone_in_workers(
        cs in contribution_set(7),
        p in 0.0f64..=1.0,
        angle in 0.0f64..TAU,
        arrival in 0.0f64..10.0,
        beta in 0.0f64..=1.0,
    ) {
        let w = window();
        let base = expected_std(&cs, w, beta);
        let mut extended = cs.clone();
        extended.push(Contribution::new(Confidence::new(p).unwrap(), angle, arrival));
        let after = expected_std(&extended, w, beta);
        prop_assert!(after >= base - 1e-9, "adding a worker decreased E[STD]: {base} -> {after}");
    }

    /// Reliability identities: rel = 1 - exp(-R) and both are monotone in the
    /// worker set (Lemma 4.1).
    #[test]
    fn reliability_identities(ps in proptest::collection::vec(0.0f64..0.999, 0..10), extra in 0.0f64..0.999) {
        let cs: Vec<Confidence> = ps.iter().map(|&p| Confidence::new(p).unwrap()).collect();
        let rel = reliability(&cs);
        let log_rel = log_reliability(&cs);
        prop_assert!((rel - (1.0 - (-log_rel).exp())).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&rel));
        let mut more = cs.clone();
        more.push(Confidence::new(extra).unwrap());
        prop_assert!(reliability(&more) >= rel - 1e-12);
        prop_assert!(log_reliability(&more) >= log_rel - 1e-12);
    }

    /// Diversity entropies are bounded by ln of the number of parts.
    #[test]
    fn diversity_entropy_bounds(
        angles in proptest::collection::vec(0.0f64..TAU, 2..12),
        arrivals in proptest::collection::vec(0.0f64..10.0, 1..12),
    ) {
        let sd = spatial_diversity(&angles);
        prop_assert!(sd >= 0.0 && sd <= (angles.len() as f64).ln() + 1e-9);
        let td = temporal_diversity(&arrivals, window());
        prop_assert!(td >= 0.0 && td <= ((arrivals.len() + 1) as f64).ln() + 1e-9);
    }
}
