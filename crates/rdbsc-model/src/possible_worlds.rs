//! Possible-worlds semantics of the task completion (Section 2.3, Eqs. 2, 6).
//!
//! Given the set `Wᵢ` of workers assigned to a task, each worker succeeds
//! independently with its confidence `pⱼ`; a *possible world* `pw(Wᵢ)` is the
//! subset of workers that actually complete the task, with probability
//! `Pr{pw} = Π_{j ∈ pw} pⱼ · Π_{j ∉ pw} (1 − pⱼ)` (Eq. 2).
//!
//! The expected spatial/temporal diversity is the expectation of `STD` over
//! possible worlds (Eq. 6). Enumerating the `2^{|Wᵢ|}` worlds is exponential;
//! this module provides the exhaustive computation as a **test oracle** for
//! small worker sets, against which the polynomial reduction of
//! [`crate::expected`] is validated.

use crate::diversity::{spatial_diversity, std_diversity, temporal_diversity};
use crate::task::TimeWindow;
use crate::valid_pairs::Contribution;

/// Maximum worker-set size for which exhaustive enumeration is permitted.
/// Beyond this the caller should use [`crate::expected::expected_std`].
pub const MAX_EXHAUSTIVE_WORKERS: usize = 22;

/// Iterator over all possible worlds of a worker set, yielding
/// `(probability, members)` pairs where `members` are indices into the input
/// slice.
pub struct PossibleWorlds<'a> {
    contributions: &'a [Contribution],
    next_mask: u64,
    num_worlds: u64,
}

impl<'a> PossibleWorlds<'a> {
    /// Creates the iterator. Panics if the worker set is larger than
    /// [`MAX_EXHAUSTIVE_WORKERS`].
    pub fn new(contributions: &'a [Contribution]) -> Self {
        assert!(
            contributions.len() <= MAX_EXHAUSTIVE_WORKERS,
            "possible-world enumeration limited to {MAX_EXHAUSTIVE_WORKERS} workers, got {}",
            contributions.len()
        );
        Self {
            contributions,
            next_mask: 0,
            num_worlds: 1u64 << contributions.len(),
        }
    }
}

impl<'a> Iterator for PossibleWorlds<'a> {
    type Item = (f64, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_mask >= self.num_worlds {
            return None;
        }
        let mask = self.next_mask;
        self.next_mask += 1;
        let mut prob = 1.0;
        let mut members = Vec::new();
        for (j, c) in self.contributions.iter().enumerate() {
            if mask & (1 << j) != 0 {
                prob *= c.p();
                members.push(j);
            } else {
                prob *= 1.0 - c.p();
            }
        }
        Some((prob, members))
    }
}

/// Exhaustive expected spatial diversity `E[SD]` (test oracle).
pub fn expected_sd_exhaustive(contributions: &[Contribution]) -> f64 {
    PossibleWorlds::new(contributions)
        .map(|(prob, members)| {
            let angles: Vec<f64> = members.iter().map(|&j| contributions[j].angle).collect();
            prob * spatial_diversity(&angles)
        })
        .sum()
}

/// Exhaustive expected temporal diversity `E[TD]` (test oracle).
pub fn expected_td_exhaustive(contributions: &[Contribution], window: TimeWindow) -> f64 {
    PossibleWorlds::new(contributions)
        .map(|(prob, members)| {
            let arrivals: Vec<f64> = members.iter().map(|&j| contributions[j].arrival).collect();
            prob * temporal_diversity(&arrivals, window)
        })
        .sum()
}

/// Exhaustive expected spatial/temporal diversity `E[STD]` (Eq. 6, test
/// oracle).
pub fn expected_std_exhaustive(
    contributions: &[Contribution],
    window: TimeWindow,
    beta: f64,
) -> f64 {
    PossibleWorlds::new(contributions)
        .map(|(prob, members)| {
            let angles: Vec<f64> = members.iter().map(|&j| contributions[j].angle).collect();
            let arrivals: Vec<f64> = members.iter().map(|&j| contributions[j].arrival).collect();
            prob * std_diversity(
                beta,
                spatial_diversity(&angles),
                temporal_diversity(&arrivals, window),
            )
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::Confidence;
    use std::f64::consts::PI;

    fn contribution(p: f64, angle: f64, arrival: f64) -> Contribution {
        Contribution::new(Confidence::new(p).unwrap(), angle, arrival)
    }

    fn window() -> TimeWindow {
        TimeWindow::new(0.0, 10.0).unwrap()
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let cs = [
            contribution(0.3, 0.0, 1.0),
            contribution(0.9, PI, 2.0),
            contribution(0.5, 1.0, 3.0),
        ];
        let total: f64 = PossibleWorlds::new(&cs).map(|(p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(PossibleWorlds::new(&cs).count(), 8);
    }

    #[test]
    fn empty_set_has_single_certain_world() {
        let worlds: Vec<_> = PossibleWorlds::new(&[]).collect();
        assert_eq!(worlds.len(), 1);
        assert_eq!(worlds[0].0, 1.0);
        assert!(worlds[0].1.is_empty());
    }

    #[test]
    fn certain_workers_yield_deterministic_expectation() {
        // All p = 1: the only world with non-zero probability is the full set.
        let cs = [
            contribution(1.0, 0.0, 2.5),
            contribution(1.0, PI, 5.0),
        ];
        let e_sd = expected_sd_exhaustive(&cs);
        assert!((e_sd - 2.0_f64.ln()).abs() < 1e-12);
        let e_td = expected_td_exhaustive(&cs, window());
        let expected = crate::diversity::temporal_diversity(&[2.5, 5.0], window());
        assert!((e_td - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_confidence_workers_contribute_nothing() {
        let cs = [
            contribution(0.0, 0.0, 2.5),
            contribution(0.0, PI, 5.0),
        ];
        assert_eq!(expected_std_exhaustive(&cs, window(), 0.5), 0.0);
    }

    #[test]
    fn expected_sd_two_workers_closed_form() {
        // E[SD] = p1*p2*SD({both}) since worlds with <2 workers have SD = 0.
        let p1 = 0.7;
        let p2 = 0.4;
        let cs = [contribution(p1, 0.0, 1.0), contribution(p2, PI, 2.0)];
        let expected = p1 * p2 * 2.0_f64.ln();
        assert!((expected_sd_exhaustive(&cs) - expected).abs() < 1e-12);
    }

    #[test]
    fn expected_td_single_worker_closed_form() {
        // E[TD] = p * TD({arrival}) for a single worker.
        let p = 0.6;
        let cs = [contribution(p, 1.0, 5.0)];
        let expected = p * 2.0_f64.ln();
        assert!((expected_td_exhaustive(&cs, window()) - expected).abs() < 1e-12);
    }

    #[test]
    fn expected_std_monotone_in_added_worker_lemma_4_2() {
        let base = vec![
            contribution(0.5, 0.3, 2.0),
            contribution(0.7, 2.0, 7.0),
        ];
        let mut extended = base.clone();
        extended.push(contribution(0.6, 4.0, 4.0));
        let w = window();
        assert!(
            expected_std_exhaustive(&extended, w, 0.5)
                >= expected_std_exhaustive(&base, w, 0.5) - 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "possible-world enumeration limited")]
    fn refuses_oversized_sets() {
        let cs: Vec<Contribution> = (0..(MAX_EXHAUSTIVE_WORKERS + 1))
            .map(|i| contribution(0.5, i as f64, i as f64))
            .collect();
        let _ = PossibleWorlds::new(&cs);
    }
}
