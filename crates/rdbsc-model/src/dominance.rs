//! Skyline dominance and top-k-dominating ranking on (reliability, diversity)
//! pairs.
//!
//! Both the greedy algorithm (to rank candidate task-and-worker pairs by how
//! many other candidates they dominate) and the sampling algorithm (to pick
//! the best sampled assignment) use the dominance relation of the skyline
//! operator and the *dominating count* ranking of top-k dominating queries,
//! exactly as referenced in the paper (\[13\] and \[22\]).

/// A bi-objective value: the first component is the reliability-related
/// objective, the second the diversity-related one. Both are maximised.
pub type BiObjective = (f64, f64);

/// Does `a` dominate `b`? (`a` is at least as good in both components and
/// strictly better in at least one.)
#[inline]
pub fn dominates(a: BiObjective, b: BiObjective) -> bool {
    (a.0 >= b.0 && a.1 >= b.1) && (a.0 > b.0 || a.1 > b.1)
}

/// For each candidate, the number of other candidates it dominates
/// (quadratic reference implementation; see [`dominating_counts_fast`] for
/// the `O(n log n)` version used on large inputs).
pub fn dominating_counts(values: &[BiObjective]) -> Vec<usize> {
    let n = values.len();
    let mut counts = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(values[i], values[j]) {
                counts[i] += 1;
            }
        }
    }
    counts
}

/// Fenwick tree (binary indexed tree) over candidate ranks, used by
/// [`dominating_counts_fast`].
struct Fenwick {
    tree: Vec<usize>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of added elements with index `<= i`.
    fn prefix(&self, mut i: usize) -> usize {
        i += 1;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// `O(n log n)` computation of the dominating counts.
///
/// `count_i = #{j : x_j ≤ x_i ∧ y_j ≤ y_i} − #{j : (x_j, y_j) = (x_i, y_i)}`
/// (the second term removes the candidate itself and exact duplicates, which
/// do not dominate each other). Computed by sweeping candidates in increasing
/// `x` order while maintaining a Fenwick tree over the `y` ranks.
pub fn dominating_counts_fast(values: &[BiObjective]) -> Vec<usize> {
    let n = values.len();
    if n < 2 {
        return vec![0; n];
    }
    // Rank-compress the y coordinates.
    let mut ys: Vec<f64> = values.iter().map(|v| v.1).collect();
    ys.sort_by(|a, b| a.partial_cmp(b).expect("objective values are not NaN"));
    ys.dedup();
    let y_rank = |y: f64| ys.partition_point(|&v| v < y);

    // Count exact duplicates.
    use std::collections::HashMap;
    let mut duplicates: HashMap<(u64, u64), usize> = HashMap::new();
    for v in values {
        *duplicates.entry((v.0.to_bits(), v.1.to_bits())).or_insert(0) += 1;
    }

    // Sweep in increasing x order; candidates with equal x are processed as a
    // batch (queried first, then inserted) because equal-x candidates with
    // smaller y are still dominated.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .0
            .partial_cmp(&values[b].0)
            .expect("objective values are not NaN")
    });
    let mut counts = vec![0usize; n];
    let mut fenwick = Fenwick::new(ys.len());
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && values[order[j]].0 == values[order[i]].0 {
            j += 1;
        }
        // Query the whole equal-x batch against everything inserted so far
        // plus the batch itself (handled via the duplicate correction below
        // and by inserting the batch before querying it — equal-x,
        // smaller-or-equal-y candidates are legitimate dominees unless they
        // are exact duplicates).
        for &idx in &order[i..j] {
            fenwick.add(y_rank(values[idx].1));
        }
        for &idx in &order[i..j] {
            let le = fenwick.prefix(y_rank(values[idx].1));
            let dup = duplicates[&(values[idx].0.to_bits(), values[idx].1.to_bits())];
            counts[idx] = le - dup;
        }
        i = j;
    }
    counts
}

/// Indices of the candidates that are *not* dominated by any other candidate
/// (the skyline / Pareto front).
pub fn skyline(values: &[BiObjective]) -> Vec<usize> {
    (0..values.len())
        .filter(|&i| !values.iter().enumerate().any(|(j, &v)| j != i && dominates(v, values[i])))
        .collect()
}

/// Ranks candidates by their dominating count and returns the index of the
/// best one (the candidate dominating the most others). Ties are broken by
/// the sum of the two components, then by index (for determinism).
///
/// Returns `None` for an empty slice.
pub fn rank_by_dominating_count(values: &[BiObjective]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let counts = if values.len() <= 256 {
        dominating_counts(values)
    } else {
        dominating_counts_fast(values)
    };
    let mut best = 0usize;
    for i in 1..values.len() {
        let better = counts[i] > counts[best]
            || (counts[i] == counts[best]
                && values[i].0 + values[i].1 > values[best].0 + values[best].1 + 1e-15);
        if better {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates((2.0, 2.0), (1.0, 1.0)));
        assert!(dominates((2.0, 1.0), (1.0, 1.0)));
        assert!(dominates((1.0, 2.0), (1.0, 1.0)));
        assert!(!dominates((1.0, 1.0), (1.0, 1.0)), "equal points do not dominate");
        assert!(!dominates((2.0, 0.5), (1.0, 1.0)), "incomparable");
        assert!(!dominates((0.5, 2.0), (1.0, 1.0)), "incomparable");
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric() {
        let pts = [(1.0, 2.0), (2.0, 1.0), (3.0, 3.0)];
        for &a in &pts {
            assert!(!dominates(a, a));
            for &b in &pts {
                if dominates(a, b) {
                    assert!(!dominates(b, a));
                }
            }
        }
    }

    #[test]
    fn counts_and_skyline() {
        let values = vec![(1.0, 1.0), (2.0, 2.0), (0.5, 3.0), (2.0, 0.1)];
        let counts = dominating_counts(&values);
        assert_eq!(counts, vec![0, 2, 0, 0]);
        let sky = skyline(&values);
        assert_eq!(sky, vec![1, 2]);
    }

    #[test]
    fn rank_picks_most_dominating() {
        let values = vec![(1.0, 1.0), (2.0, 2.0), (0.5, 3.0)];
        assert_eq!(rank_by_dominating_count(&values), Some(1));
    }

    #[test]
    fn rank_breaks_ties_by_sum_then_index() {
        // No candidate dominates another; the one with the largest sum wins.
        let values = vec![(1.0, 2.0), (2.5, 1.0), (0.0, 3.0)];
        assert_eq!(rank_by_dominating_count(&values), Some(1));
        // Full tie: first index wins.
        let values = vec![(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(rank_by_dominating_count(&values), Some(0));
    }

    #[test]
    fn rank_empty_is_none() {
        assert_eq!(rank_by_dominating_count(&[]), None);
    }

    #[test]
    fn fast_counts_match_quadratic_counts() {
        // Pseudo-random values with deliberate ties and duplicates.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 8.0).round() / 8.0
        };
        for n in [2usize, 3, 10, 57, 300] {
            let values: Vec<BiObjective> = (0..n).map(|_| (next(), next())).collect();
            assert_eq!(
                dominating_counts(&values),
                dominating_counts_fast(&values),
                "mismatch for n={n}"
            );
        }
    }

    #[test]
    fn fast_counts_handle_duplicates_and_degenerate_inputs() {
        assert_eq!(dominating_counts_fast(&[]), Vec::<usize>::new());
        assert_eq!(dominating_counts_fast(&[(1.0, 1.0)]), vec![0]);
        let values = vec![(1.0, 1.0), (1.0, 1.0), (0.0, 0.0), (2.0, 2.0)];
        assert_eq!(dominating_counts(&values), dominating_counts_fast(&values));
    }
}
