//! Reliability of a task's worker set (Definition 3, Eqs. 1 and 8).
//!
//! * `rel(tᵢ, Wᵢ) = 1 − Π (1 − pⱼ)` — the probability that at least one
//!   assigned worker completes the task.
//! * `R(tᵢ, Wᵢ) = −ln(1 − rel) = Σ −ln(1 − pⱼ)` — the additive log-form used
//!   by the reduction in Section 3.1 and by the greedy algorithm's
//!   incremental updates (Lemma 4.1).

use crate::error::ModelError;

/// A worker confidence `p ∈ [0, 1]`, validated at construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Confidence(f64);

impl Confidence {
    /// Creates a confidence, rejecting values outside `[0, 1]` or non-finite
    /// values.
    pub fn new(p: f64) -> Result<Self, ModelError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(ModelError::InvalidConfidence(p));
        }
        Ok(Self(p))
    }

    /// Creates a confidence, clamping into `[0, 1]` (useful for values coming
    /// out of noisy estimators such as the peer-rating model).
    pub fn clamped(p: f64) -> Self {
        Self(p.clamp(0.0, 1.0))
    }

    /// The underlying probability.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// `−ln(1 − p)`, the worker's additive contribution to the log-form
    /// reliability `R`. Returns `f64::INFINITY` for `p == 1`.
    #[inline]
    pub fn log_weight(&self) -> f64 {
        -(1.0 - self.0).ln()
    }
}

/// `rel(tᵢ, Wᵢ) = 1 − Π (1 − pⱼ)` (Eq. 1). An empty worker set has
/// reliability 0.
pub fn reliability(confidences: &[Confidence]) -> f64 {
    let fail_all: f64 = confidences.iter().map(|c| 1.0 - c.value()).product();
    1.0 - fail_all
}

/// `R(tᵢ, Wᵢ) = Σ −ln(1 − pⱼ)` (Eq. 8). An empty worker set has `R = 0`;
/// any worker with `p = 1` makes `R = ∞`.
pub fn log_reliability(confidences: &[Confidence]) -> f64 {
    confidences.iter().map(|c| c.log_weight()).sum()
}

/// Converts a log-form reliability back into a probability:
/// `rel = 1 − exp(−R)`.
pub fn reliability_from_log(r: f64) -> f64 {
    1.0 - (-r).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(p: f64) -> Confidence {
        Confidence::new(p).unwrap()
    }

    #[test]
    fn confidence_validation() {
        assert!(Confidence::new(0.0).is_ok());
        assert!(Confidence::new(1.0).is_ok());
        assert!(Confidence::new(-0.01).is_err());
        assert!(Confidence::new(1.01).is_err());
        assert!(Confidence::new(f64::NAN).is_err());
        assert_eq!(Confidence::clamped(1.7).value(), 1.0);
        assert_eq!(Confidence::clamped(-0.3).value(), 0.0);
    }

    #[test]
    fn reliability_of_empty_set_is_zero() {
        assert_eq!(reliability(&[]), 0.0);
        assert_eq!(log_reliability(&[]), 0.0);
    }

    #[test]
    fn reliability_single_worker_equals_confidence() {
        assert!((reliability(&[c(0.7)]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn reliability_two_workers() {
        // 1 - 0.3*0.2 = 0.94
        assert!((reliability(&[c(0.7), c(0.8)]) - 0.94).abs() < 1e-12);
    }

    #[test]
    fn reliability_is_monotone_in_workers() {
        let base = reliability(&[c(0.5), c(0.6)]);
        let more = reliability(&[c(0.5), c(0.6), c(0.1)]);
        assert!(more >= base);
    }

    #[test]
    fn log_form_is_consistent_with_probability_form(){
        let ws = [c(0.5), c(0.6), c(0.9)];
        let r = log_reliability(&ws);
        assert!((reliability_from_log(r) - reliability(&ws)).abs() < 1e-12);
    }

    #[test]
    fn log_form_is_additive_lemma_4_1() {
        // R(W ∪ {w}) = R(W) − ln(1 − p_w)
        let base = [c(0.5), c(0.6)];
        let extended = [c(0.5), c(0.6), c(0.8)];
        let lhs = log_reliability(&extended);
        let rhs = log_reliability(&base) + c(0.8).log_weight();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn certain_worker_gives_infinite_log_reliability() {
        assert_eq!(log_reliability(&[c(1.0)]), f64::INFINITY);
        assert!((reliability(&[c(1.0), c(0.2)]) - 1.0).abs() < 1e-12);
    }
}
