//! # rdbsc-model
//!
//! The RDB-SC problem model: time-constrained spatial tasks, dynamically
//! moving workers, task-and-worker assignments, and the two quality measures
//! the paper optimises — **reliability** and **expected spatial/temporal
//! diversity** — together with their possible-worlds semantics.
//!
//! Module map (each section of the paper has a home):
//!
//! | Paper | Module |
//! |---|---|
//! | Definition 1 (tasks) | [`task`] |
//! | Definition 2 (workers) | [`worker`] |
//! | Definition 3 / Eq. 1, 8 (reliability) | [`mod@reliability`] |
//! | Eqs. 3–5 (SD/TD/STD entropy) | [`diversity`] |
//! | Eq. 2, 6 (possible worlds) | [`possible_worlds`] |
//! | Eqs. 9–11, Lemma 3.1 (matrix reduction) | [`expected`] |
//! | Definition 4 (the RDB-SC problem) | [`instance`], [`assignment`], [`objective`] |
//! | Valid task-and-worker pairs (constraint 1) | [`valid_pairs`] |
//! | Skyline dominance / top-k dominating ranks | [`dominance`] |

#![deny(missing_docs)]

pub mod aggregation;
pub mod assignment;
pub mod diversity;
pub mod dominance;
pub mod error;
pub mod expected;
pub mod ids;
pub mod instance;
pub mod objective;
pub mod possible_worlds;
pub mod reliability;
pub mod task;
pub mod valid_pairs;
pub mod worker;

pub use aggregation::{aggregate_answers, AggregationConfig, AnswerGroup};
pub use assignment::Assignment;
pub use diversity::{spatial_diversity, std_diversity, temporal_diversity};
pub use dominance::{dominates, rank_by_dominating_count};
pub use error::ModelError;
pub use expected::{expected_sd, expected_std, expected_td};
pub use ids::{TaskId, WorkerId};
pub use instance::ProblemInstance;
pub use objective::{evaluate, evaluate_with_priors, MinReliabilityScope, ObjectiveValue, TaskPriors};
pub use possible_worlds::{expected_std_exhaustive, PossibleWorlds};
pub use reliability::{log_reliability, reliability, Confidence};
pub use task::{Task, TimeWindow};
pub use valid_pairs::{compute_valid_pairs, BipartiteCandidates, Contribution, ValidPair};
pub use worker::Worker;
