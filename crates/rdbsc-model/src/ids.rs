//! Typed identifiers for tasks and workers.
//!
//! Using newtypes instead of bare `usize` prevents accidentally indexing a
//! task array with a worker id (and vice versa), a class of bug that is easy
//! to introduce in assignment code that juggles both.

use std::fmt;

/// Identifier of a spatial task (index into the instance's task vector).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct TaskId(pub u32);

/// Identifier of a worker (index into the instance's worker vector).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct WorkerId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl WorkerId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for TaskId {
    fn from(v: usize) -> Self {
        TaskId(u32::try_from(v).expect("task id overflow"))
    }
}

impl From<usize> for WorkerId {
    fn from(v: usize) -> Self {
        WorkerId(u32::try_from(v).expect("worker id overflow"))
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t: TaskId = 42usize.into();
        assert_eq!(t.index(), 42);
        let w: WorkerId = 7usize.into();
        assert_eq!(w.index(), 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId(3).to_string(), "t3");
        assert_eq!(WorkerId(9).to_string(), "w9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TaskId(1));
        set.insert(TaskId(1));
        set.insert(TaskId(2));
        assert_eq!(set.len(), 2);
        assert!(TaskId(1) < TaskId(2));
    }
}
