//! Polynomial computation of the expected spatial/temporal diversity
//! (Section 3.2, Eqs. 9–11, Lemma 3.1).
//!
//! The paper reduces the exponential possible-worlds expectation (Eq. 6) to
//! the sum of two matrices `M_SD` and `M_TD`, whose entry `(j, k)` is the
//! probability that a particular angular gap / time sub-interval exists in a
//! possible world, multiplied by that gap's entropy term. Conceptually:
//!
//! * A gap from worker `j`'s ray counter-clockwise to worker `k`'s ray exists
//!   exactly when both `j` and `k` succeed and every worker whose ray lies
//!   strictly between them fails.
//! * A time sub-interval from boundary `a` to boundary `b` (boundaries are
//!   worker arrivals plus the window endpoints) exists exactly when both
//!   boundaries are "real" (their workers succeed, window endpoints always
//!   are) and every worker arriving strictly between them fails.
//!
//! This module implements exactly that decomposition with running products,
//! giving `O(r²)` arithmetic per task (the paper quotes `O(r³)` for the naive
//! per-entry evaluation). Correctness is cross-checked against the
//! exhaustive oracle in [`crate::possible_worlds`] by unit and property
//! tests.

use crate::diversity::entropy_term;
use crate::task::TimeWindow;
use crate::valid_pairs::Contribution;
use rdbsc_geo::FULL_TURN;

/// Expected spatial diversity `E[SD]` of a worker set under possible-worlds
/// semantics.
pub fn expected_sd(contributions: &[Contribution]) -> f64 {
    let r = contributions.len();
    if r < 2 {
        // With fewer than two successful workers SD is always 0.
        return 0.0;
    }
    // Sort rays by angle; remember each worker's success probability.
    let mut order: Vec<usize> = (0..r).collect();
    order.sort_by(|&a, &b| {
        contributions[a]
            .angle
            .partial_cmp(&contributions[b].angle)
            .expect("angle must not be NaN")
    });
    let angles: Vec<f64> = order.iter().map(|&i| contributions[i].angle).collect();
    let probs: Vec<f64> = order.iter().map(|&i| contributions[i].p()).collect();

    // Elementary angular gaps between consecutive rays (cyclic, sums to 2π).
    let mut gaps = vec![0.0; r];
    for x in 0..r {
        let next = if x + 1 == r {
            angles[0] + FULL_TURN
        } else {
            angles[x + 1]
        };
        gaps[x] = (next - angles[x]).max(0.0);
    }

    let mut expectation = 0.0;
    for j in 0..r {
        // Walk counter-clockwise from ray j; `absent` accumulates the
        // probability that all rays strictly between j and the current k fail.
        let mut absent = 1.0;
        let mut arc = 0.0;
        for step in 1..r {
            let k = (j + step) % r;
            arc += gaps[(j + step - 1) % r];
            let prob = probs[j] * probs[k] * absent;
            if prob > 0.0 {
                expectation += prob * entropy_term(arc / FULL_TURN);
            }
            absent *= 1.0 - probs[k];
            if absent == 0.0 && probs[j] == 0.0 {
                break;
            }
        }
    }
    expectation
}

/// Expected temporal diversity `E[TD]` of a worker set under possible-worlds
/// semantics.
pub fn expected_td(contributions: &[Contribution], window: TimeWindow) -> f64 {
    let duration = window.duration();
    let r = contributions.len();
    if duration <= 0.0 || r == 0 {
        return 0.0;
    }
    // Sort arrivals (clamped into the window).
    let mut order: Vec<usize> = (0..r).collect();
    order.sort_by(|&a, &b| {
        contributions[a]
            .arrival
            .partial_cmp(&contributions[b].arrival)
            .expect("arrival must not be NaN")
    });
    let arrivals: Vec<f64> = order
        .iter()
        .map(|&i| window.clamp(contributions[i].arrival))
        .collect();
    let probs: Vec<f64> = order.iter().map(|&i| contributions[i].p()).collect();

    let mut expectation = 0.0;

    // Sub-intervals bounded on the left by the window start.
    {
        let mut absent = 1.0;
        for k in 0..r {
            let length = arrivals[k] - window.start;
            let prob = probs[k] * absent;
            if prob > 0.0 {
                expectation += prob * entropy_term(length / duration);
            }
            absent *= 1.0 - probs[k];
        }
        // The interval [start, end] with every worker absent has fraction 1
        // and entropy 0, so it never contributes.
    }

    // Sub-intervals bounded by two worker arrivals, and those bounded on the
    // right by the window end.
    for j in 0..r {
        let mut absent = 1.0;
        for k in (j + 1)..r {
            let length = arrivals[k] - arrivals[j];
            let prob = probs[j] * probs[k] * absent;
            if prob > 0.0 {
                expectation += prob * entropy_term(length / duration);
            }
            absent *= 1.0 - probs[k];
        }
        // [arrival_j, end] exists when j succeeds and every later worker fails.
        let length = window.end - arrivals[j];
        let prob = probs[j] * absent;
        if prob > 0.0 {
            expectation += prob * entropy_term(length / duration);
        }
    }
    expectation
}

/// Expected combined diversity `E[STD] = β·E[SD] + (1−β)·E[TD]` (Lemma 3.1).
pub fn expected_std(contributions: &[Contribution], window: TimeWindow, beta: f64) -> f64 {
    let beta = beta.clamp(0.0, 1.0);
    let sd = if beta > 0.0 {
        expected_sd(contributions)
    } else {
        0.0
    };
    let td = if beta < 1.0 {
        expected_td(contributions, window)
    } else {
        0.0
    };
    beta * sd + (1.0 - beta) * td
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::possible_worlds::{
        expected_sd_exhaustive, expected_std_exhaustive, expected_td_exhaustive,
    };
    use crate::reliability::Confidence;
    use std::f64::consts::PI;

    fn contribution(p: f64, angle: f64, arrival: f64) -> Contribution {
        Contribution::new(Confidence::new(p).unwrap(), angle, arrival)
    }

    fn window() -> TimeWindow {
        TimeWindow::new(0.0, 10.0).unwrap()
    }

    #[test]
    fn empty_and_singleton_sets() {
        assert_eq!(expected_sd(&[]), 0.0);
        assert_eq!(expected_td(&[], window()), 0.0);
        let single = [contribution(0.8, 1.0, 5.0)];
        assert_eq!(expected_sd(&single), 0.0);
        // Single worker: E[TD] = p * TD({arrival}).
        assert!((expected_td(&single, window()) - 0.8 * 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn matches_exhaustive_on_two_workers() {
        let cs = [contribution(0.7, 0.0, 2.0), contribution(0.4, PI, 7.0)];
        assert!((expected_sd(&cs) - expected_sd_exhaustive(&cs)).abs() < 1e-12);
        assert!((expected_td(&cs, window()) - expected_td_exhaustive(&cs, window())).abs() < 1e-12);
    }

    #[test]
    fn matches_exhaustive_on_mixed_sets() {
        let sets: Vec<Vec<Contribution>> = vec![
            vec![
                contribution(0.9, 0.1, 1.0),
                contribution(0.5, 2.0, 4.0),
                contribution(0.3, 4.5, 8.0),
            ],
            vec![
                contribution(0.2, 0.0, 0.0),
                contribution(0.8, 3.0, 10.0),
                contribution(0.6, 3.1, 5.0),
                contribution(0.95, 6.0, 5.0),
            ],
            vec![
                contribution(1.0, 1.0, 2.0),
                contribution(0.0, 2.0, 3.0),
                contribution(0.5, 3.0, 4.0),
                contribution(0.5, 3.0, 4.0), // exact duplicate contribution
                contribution(0.7, 5.9, 9.9),
            ],
        ];
        for cs in sets {
            let w = window();
            assert!(
                (expected_sd(&cs) - expected_sd_exhaustive(&cs)).abs() < 1e-9,
                "E[SD] mismatch for {cs:?}"
            );
            assert!(
                (expected_td(&cs, w) - expected_td_exhaustive(&cs, w)).abs() < 1e-9,
                "E[TD] mismatch for {cs:?}"
            );
            for beta in [0.0, 0.3, 0.5, 1.0] {
                assert!(
                    (expected_std(&cs, w, beta) - expected_std_exhaustive(&cs, w, beta)).abs()
                        < 1e-9,
                    "E[STD] mismatch for beta={beta}"
                );
            }
        }
    }

    #[test]
    fn certain_workers_reduce_to_deterministic_diversity() {
        let cs = [
            contribution(1.0, 0.0, 2.0),
            contribution(1.0, 2.0, 5.0),
            contribution(1.0, 4.0, 8.0),
        ];
        let w = window();
        let angles = [0.0, 2.0, 4.0];
        let arrivals = [2.0, 5.0, 8.0];
        assert!(
            (expected_sd(&cs) - crate::diversity::spatial_diversity(&angles)).abs() < 1e-12
        );
        assert!(
            (expected_td(&cs, w) - crate::diversity::temporal_diversity(&arrivals, w)).abs()
                < 1e-12
        );
    }

    #[test]
    fn monotone_under_added_worker() {
        // Lemma 4.2: adding a worker never decreases E[STD].
        let base = vec![contribution(0.6, 0.5, 3.0), contribution(0.4, 3.5, 6.0)];
        let mut extended = base.clone();
        extended.push(contribution(0.5, 2.0, 8.5));
        let w = window();
        for beta in [0.0, 0.4, 1.0] {
            assert!(
                expected_std(&extended, w, beta) >= expected_std(&base, w, beta) - 1e-12,
                "beta={beta}"
            );
        }
    }

    #[test]
    fn degenerate_window_gives_zero_td() {
        let cs = [contribution(0.9, 0.0, 5.0), contribution(0.9, 1.0, 5.0)];
        let w = TimeWindow::new(5.0, 5.0).unwrap();
        assert_eq!(expected_td(&cs, w), 0.0);
    }

    #[test]
    fn beta_extremes_select_single_component() {
        let cs = [
            contribution(0.7, 0.0, 2.0),
            contribution(0.6, 2.0, 6.0),
            contribution(0.5, 4.0, 9.0),
        ];
        let w = window();
        assert!((expected_std(&cs, w, 1.0) - expected_sd(&cs)).abs() < 1e-12);
        assert!((expected_std(&cs, w, 0.0) - expected_td(&cs, w)).abs() < 1e-12);
    }

    #[test]
    fn larger_sets_stay_finite_and_positive() {
        let cs: Vec<Contribution> = (0..50)
            .map(|i| contribution(0.5 + 0.005 * (i % 10) as f64, i as f64 * 0.37, (i % 11) as f64))
            .collect();
        let v = expected_std(&cs, window(), 0.5);
        assert!(v.is_finite());
        assert!(v > 0.0);
    }
}
