//! Valid task-and-worker pairs (constraint 1 of Definition 4) and the
//! *contribution* a worker makes to a task when it serves it.

use crate::ids::{TaskId, WorkerId};
use crate::instance::ProblemInstance;
use crate::reliability::Confidence;
use crate::task::Task;
use crate::worker::Worker;
use rdbsc_geo::{normalize_angle, Reachability};
use std::f64::consts::PI;

/// What a single worker contributes to a task it is assigned to: its
/// confidence, the angle of the ray from the task towards the worker
/// (spatial diversity) and its effective arrival time (temporal diversity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contribution {
    /// Worker confidence `pⱼ`.
    pub confidence: Confidence,
    /// Angle (radians, `[0, 2π)`) of the ray from the task's location towards
    /// the worker's approach side. Workers move towards the task, so this is
    /// the travel direction plus `π`.
    pub angle: f64,
    /// Effective arrival time at the task location, inside the task's valid
    /// period.
    pub arrival: f64,
}

impl Contribution {
    /// Creates a contribution, normalising the angle.
    pub fn new(confidence: Confidence, angle: f64, arrival: f64) -> Self {
        Self {
            confidence,
            angle: normalize_angle(angle),
            arrival,
        }
    }

    /// The confidence as an `f64`.
    #[inline]
    pub fn p(&self) -> f64 {
        self.confidence.value()
    }
}

/// A valid task-and-worker pair: the worker can arrive at the task's location
/// within its valid period while respecting its moving-direction cone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidPair {
    /// The task of the pair.
    pub task: TaskId,
    /// The worker that can serve it.
    pub worker: WorkerId,
    /// The contribution the worker would make to the task.
    pub contribution: Contribution,
}

/// Checks a single (task, worker) pair and, when valid, returns the worker's
/// contribution.
///
/// `depart_at` is the time at which the assignment is made (0 for the static
/// problem; the current platform time for incremental re-assignments).
pub fn check_pair(task: &Task, worker: &Worker, depart_at: f64, allow_wait: bool) -> Option<Contribution> {
    match worker.motion().reach(
        task.location,
        task.window.start,
        task.window.end,
        depart_at,
        allow_wait,
    ) {
        Reachability::Reachable {
            effective_arrival,
            travel_direction,
            ..
        } => Some(Contribution::new(
            worker.confidence,
            travel_direction + PI,
            effective_arrival,
        )),
        Reachability::Unreachable(_) => None,
    }
}

/// The bipartite candidate graph of all valid pairs: adjacency lists per
/// worker and per task (Figure 4 of the paper).
#[derive(Debug, Clone, Default)]
pub struct BipartiteCandidates {
    /// All valid pairs.
    pub pairs: Vec<ValidPair>,
    /// For each worker (by index), the indices into `pairs` of its candidate
    /// tasks. The length of this list is the worker's degree `deg(wⱼ)`.
    pub by_worker: Vec<Vec<usize>>,
    /// For each task (by index), the indices into `pairs` of its candidate
    /// workers.
    pub by_task: Vec<Vec<usize>>,
}

impl BipartiteCandidates {
    /// Creates an empty candidate graph sized for `num_tasks` × `num_workers`.
    pub fn with_capacity(num_tasks: usize, num_workers: usize) -> Self {
        Self {
            pairs: Vec::new(),
            by_worker: vec![Vec::new(); num_workers],
            by_task: vec![Vec::new(); num_tasks],
        }
    }

    /// Adds a valid pair to the graph.
    pub fn push(&mut self, pair: ValidPair) {
        let idx = self.pairs.len();
        self.by_worker[pair.worker.index()].push(idx);
        self.by_task[pair.task.index()].push(idx);
        self.pairs.push(pair);
    }

    /// The degree `deg(wⱼ)` of a worker: the number of tasks it can serve.
    pub fn degree(&self, worker: WorkerId) -> usize {
        self.by_worker[worker.index()].len()
    }

    /// Total number of valid pairs (edges in the bipartite graph).
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Natural logarithm of the population size `N = Π deg(wⱼ)` over workers
    /// with non-zero degree (Section 5.2). Computed in log-space to avoid
    /// overflow for large instances.
    pub fn ln_population(&self) -> f64 {
        self.by_worker
            .iter()
            .filter(|adj| !adj.is_empty())
            .map(|adj| (adj.len() as f64).ln())
            .sum()
    }

    /// Candidate pairs of a given worker.
    pub fn pairs_of_worker(&self, worker: WorkerId) -> impl Iterator<Item = &ValidPair> {
        self.by_worker[worker.index()].iter().map(|&i| &self.pairs[i])
    }

    /// Candidate pairs of a given task.
    pub fn pairs_of_task(&self, task: TaskId) -> impl Iterator<Item = &ValidPair> {
        self.by_task[task.index()].iter().map(|&i| &self.pairs[i])
    }
}

/// Computes every valid task-and-worker pair of an instance by brute force
/// (`O(m·n)` reachability checks). The grid index (crate `rdbsc-index`)
/// provides an accelerated equivalent.
pub fn compute_valid_pairs(instance: &ProblemInstance) -> BipartiteCandidates {
    let mut graph =
        BipartiteCandidates::with_capacity(instance.tasks.len(), instance.workers.len());
    for task in &instance.tasks {
        for worker in &instance.workers {
            if let Some(contribution) =
                check_pair(task, worker, instance.depart_at, instance.allow_wait)
            {
                graph.push(ValidPair {
                    task: task.id,
                    worker: worker.id,
                    contribution,
                });
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ProblemInstance;
    use crate::task::TimeWindow;
    use rdbsc_geo::{AngleRange, Point};

    fn conf(p: f64) -> Confidence {
        Confidence::new(p).unwrap()
    }

    fn simple_instance() -> ProblemInstance {
        // One task at (1, 0) open during [0, 5]; two workers at the origin:
        // one heading east (can reach), one heading west (cannot).
        let task = Task::new(
            TaskId(0),
            Point::new(1.0, 0.0),
            TimeWindow::new(0.0, 5.0).unwrap(),
        );
        let east = Worker::new(
            WorkerId(0),
            Point::ORIGIN,
            1.0,
            AngleRange::from_bounds(-0.5, 0.5),
            conf(0.9),
        )
        .unwrap();
        let west = Worker::new(
            WorkerId(1),
            Point::ORIGIN,
            1.0,
            AngleRange::from_bounds(PI - 0.5, PI + 0.5),
            conf(0.8),
        )
        .unwrap();
        ProblemInstance::new(vec![task], vec![east, west], 0.5)
    }

    #[test]
    fn check_pair_respects_direction_and_deadline() {
        let instance = simple_instance();
        let t = &instance.tasks[0];
        assert!(check_pair(t, &instance.workers[0], 0.0, true).is_some());
        assert!(check_pair(t, &instance.workers[1], 0.0, true).is_none());
        // too-late departure
        assert!(check_pair(t, &instance.workers[0], 10.0, true).is_none());
    }

    #[test]
    fn contribution_angle_points_back_at_worker() {
        let instance = simple_instance();
        let t = &instance.tasks[0];
        let c = check_pair(t, &instance.workers[0], 0.0, true).unwrap();
        // worker approaches from the west, so the ray from the task towards
        // the worker points west (π).
        assert!((c.angle - PI).abs() < 1e-9);
        assert!((c.arrival - 1.0).abs() < 1e-9);
        assert_eq!(c.p(), 0.9);
    }

    #[test]
    fn compute_valid_pairs_builds_adjacency() {
        let instance = simple_instance();
        let graph = compute_valid_pairs(&instance);
        assert_eq!(graph.num_pairs(), 1);
        assert_eq!(graph.degree(WorkerId(0)), 1);
        assert_eq!(graph.degree(WorkerId(1)), 0);
        assert_eq!(graph.pairs_of_task(TaskId(0)).count(), 1);
        assert_eq!(graph.by_task.len(), 1);
        assert_eq!(graph.by_worker.len(), 2);
    }

    #[test]
    fn ln_population_counts_only_connected_workers() {
        let instance = simple_instance();
        let graph = compute_valid_pairs(&instance);
        // single connected worker with degree 1 -> ln(1) = 0
        assert_eq!(graph.ln_population(), 0.0);
    }
}
