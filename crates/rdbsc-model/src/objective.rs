//! Evaluation of the two RDB-SC optimisation goals (Definition 4) for a
//! candidate assignment: the **minimum reliability** over tasks and the
//! **summed expected spatial/temporal diversity** `total_STD`.

use crate::assignment::Assignment;
use crate::expected::expected_std;
use crate::ids::TaskId;
use crate::instance::ProblemInstance;
use crate::reliability::{log_reliability, reliability};
use crate::valid_pairs::Contribution;

/// Contributions a task has *already* banked before the current assignment
/// round — e.g. answers received from previously assigned workers in the
/// incremental updating strategy (Figure 10: "considering A and S_c").
///
/// Priors participate in both the reliability and the expected-diversity of a
/// task, exactly like newly assigned workers.
/// `PartialEq` compares bucket *order* as well as content: the append order
/// is part of the engine's byte-identity contract (float folds downstream
/// are order-sensitive), and the equality is what regression tests assert.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskPriors {
    per_task: Vec<Vec<Contribution>>,
}

impl TaskPriors {
    /// No priors for any of `num_tasks` tasks.
    pub fn empty(num_tasks: usize) -> Self {
        Self {
            per_task: vec![Vec::new(); num_tasks],
        }
    }

    /// Adds a banked contribution to a task.
    pub fn add(&mut self, task: TaskId, contribution: Contribution) {
        if task.index() >= self.per_task.len() {
            self.per_task.resize(task.index() + 1, Vec::new());
        }
        self.per_task[task.index()].push(contribution);
    }

    /// The banked contributions of a task.
    pub fn of(&self, task: TaskId) -> &[Contribution] {
        self.per_task
            .get(task.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Does any task have a banked contribution?
    pub fn is_empty(&self) -> bool {
        self.per_task.iter().all(|v| v.is_empty())
    }
}

/// The value of an assignment under the two RDB-SC objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveValue {
    /// `min_i rel(tᵢ, Wᵢ)` over the tasks considered (see
    /// [`MinReliabilityScope`]). `1.0` when no task is considered (e.g. an
    /// empty assignment under the non-empty scope), so that it acts as the
    /// neutral element for minimisation.
    pub min_reliability: f64,
    /// `min_i R(tᵢ, Wᵢ)` — the equivalent log-form of the first objective
    /// (Eq. 8), convenient for the greedy algorithm's increments.
    pub min_log_reliability: f64,
    /// `total_STD = Σ_i E[STD(tᵢ)]` (Eq. 7).
    pub total_std: f64,
    /// Number of tasks with at least one assigned worker.
    pub assigned_tasks: usize,
    /// Number of assigned workers.
    pub assigned_workers: usize,
}

impl ObjectiveValue {
    /// The `(reliability, diversity)` pair used by dominance comparisons.
    pub fn as_bi_objective(&self) -> (f64, f64) {
        (self.min_reliability, self.total_std)
    }
}

/// Which tasks participate in the minimum-reliability objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinReliabilityScope {
    /// Only tasks with at least one assigned worker (the paper's experiments
    /// report minimum reliabilities close to the workers' confidence lower
    /// bound even when `m > n`, which is only possible under this reading —
    /// with more tasks than workers some tasks necessarily stay empty).
    #[default]
    NonEmptyTasks,
    /// All tasks; any empty task forces the minimum to 0.
    AllTasks,
}

/// Evaluates an assignment under the default scope
/// ([`MinReliabilityScope::NonEmptyTasks`]).
pub fn evaluate(instance: &ProblemInstance, assignment: &Assignment) -> ObjectiveValue {
    evaluate_with_scope(instance, assignment, MinReliabilityScope::NonEmptyTasks)
}

/// Evaluates an assignment with an explicit minimum-reliability scope.
pub fn evaluate_with_scope(
    instance: &ProblemInstance,
    assignment: &Assignment,
    scope: MinReliabilityScope,
) -> ObjectiveValue {
    let priors = TaskPriors::empty(instance.num_tasks());
    evaluate_with_priors(instance, assignment, &priors, scope)
}

/// Evaluates an assignment together with the banked contributions each task
/// already has (the incremental strategy's view of the objectives).
pub fn evaluate_with_priors(
    instance: &ProblemInstance,
    assignment: &Assignment,
    priors: &TaskPriors,
    scope: MinReliabilityScope,
) -> ObjectiveValue {
    let mut min_rel = f64::INFINITY;
    let mut min_log_rel = f64::INFINITY;
    let mut total_std = 0.0;
    let mut assigned_tasks = 0usize;

    for task in &instance.tasks {
        let mut contributions = assignment.contributions_of(task.id);
        contributions.extend_from_slice(priors.of(task.id));
        if contributions.is_empty() {
            if scope == MinReliabilityScope::AllTasks {
                min_rel = 0.0;
                min_log_rel = 0.0;
            }
            continue;
        }
        assigned_tasks += 1;
        let confidences: Vec<_> = contributions.iter().map(|c| c.confidence).collect();
        let rel = reliability(&confidences);
        let log_rel = log_reliability(&confidences);
        min_rel = min_rel.min(rel);
        min_log_rel = min_log_rel.min(log_rel);
        total_std += expected_std(
            &contributions,
            task.window,
            task.effective_beta(instance.beta),
        );
    }

    if min_rel == f64::INFINITY {
        // No task considered at all.
        min_rel = if scope == MinReliabilityScope::AllTasks && instance.num_tasks() > 0 {
            0.0
        } else {
            1.0
        };
        min_log_rel = if min_rel == 0.0 { 0.0 } else { f64::INFINITY };
    }

    ObjectiveValue {
        min_reliability: min_rel,
        min_log_reliability: min_log_rel,
        total_std,
        assigned_tasks,
        assigned_workers: assignment.num_assigned(),
    }
}

/// Expected STD of a single task under an assignment (convenience used by the
/// greedy algorithm's incremental updates).
pub fn task_expected_std(
    instance: &ProblemInstance,
    assignment: &Assignment,
    task: TaskId,
) -> f64 {
    let contributions = assignment.contributions_of(task);
    let t = &instance.tasks[task.index()];
    expected_std(&contributions, t.window, t.effective_beta(instance.beta))
}

/// Expected STD of a single task from an explicit contribution set (newly
/// assigned workers plus banked priors).
pub fn task_expected_std_of(
    instance: &ProblemInstance,
    task: TaskId,
    contributions: &[Contribution],
) -> f64 {
    let t = &instance.tasks[task.index()];
    expected_std(contributions, t.window, t.effective_beta(instance.beta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::Confidence;
    use crate::task::{Task, TimeWindow};
    use crate::valid_pairs::{compute_valid_pairs, Contribution};
    use crate::worker::Worker;
    use rdbsc_geo::{AngleRange, Point};

    fn instance_with(m: usize, n: usize) -> ProblemInstance {
        let tasks = (0..m)
            .map(|i| {
                Task::new(
                    TaskId(0),
                    Point::new(0.1 * (i + 1) as f64, 0.0),
                    TimeWindow::new(0.0, 10.0).unwrap(),
                )
            })
            .collect();
        let workers = (0..n)
            .map(|j| {
                Worker::new(
                    WorkerId(0),
                    Point::new(0.0, 0.1 * j as f64),
                    0.5,
                    AngleRange::full(),
                    Confidence::new(0.8 + 0.02 * j as f64).unwrap(),
                )
                .unwrap()
            })
            .collect();
        ProblemInstance::new(tasks, workers, 0.5)
    }
    use crate::ids::WorkerId;

    #[test]
    fn empty_assignment_objective() {
        let inst = instance_with(2, 2);
        let a = Assignment::for_instance(&inst);
        let v = evaluate(&inst, &a);
        assert_eq!(v.min_reliability, 1.0);
        assert_eq!(v.total_std, 0.0);
        assert_eq!(v.assigned_tasks, 0);
        let v_all = evaluate_with_scope(&inst, &a, MinReliabilityScope::AllTasks);
        assert_eq!(v_all.min_reliability, 0.0);
    }

    #[test]
    fn single_pair_objective_matches_manual_computation() {
        let inst = instance_with(1, 1);
        let graph = compute_valid_pairs(&inst);
        assert_eq!(graph.num_pairs(), 1);
        let mut a = Assignment::for_instance(&inst);
        a.assign_pair(&graph.pairs[0]).unwrap();
        let v = evaluate(&inst, &a);
        assert!((v.min_reliability - 0.8).abs() < 1e-12);
        assert_eq!(v.assigned_tasks, 1);
        assert_eq!(v.assigned_workers, 1);
        // single worker: E[STD] = (1-β)·p·TD({arrival})
        let c = graph.pairs[0].contribution;
        let expected = 0.5
            * 0.8
            * crate::diversity::temporal_diversity(&[c.arrival], inst.tasks[0].window);
        assert!((v.total_std - expected).abs() < 1e-9);
    }

    #[test]
    fn min_reliability_is_the_weakest_non_empty_task() {
        let inst = instance_with(2, 2);
        let mut a = Assignment::for_instance(&inst);
        a.assign(
            TaskId(0),
            WorkerId(0),
            Contribution::new(Confidence::new(0.8).unwrap(), 0.0, 1.0),
        )
        .unwrap();
        a.assign(
            TaskId(1),
            WorkerId(1),
            Contribution::new(Confidence::new(0.95).unwrap(), 0.0, 1.0),
        )
        .unwrap();
        let v = evaluate(&inst, &a);
        assert!((v.min_reliability - 0.8).abs() < 1e-12);
        assert_eq!(v.assigned_tasks, 2);
    }

    #[test]
    fn adding_workers_never_hurts_the_objective() {
        let inst = instance_with(1, 3);
        let graph = compute_valid_pairs(&inst);
        let mut a = Assignment::for_instance(&inst);
        a.assign_pair(&graph.pairs[0]).unwrap();
        let before = evaluate(&inst, &a);
        for p in &graph.pairs[1..] {
            a.assign_pair(p).unwrap();
        }
        let after = evaluate(&inst, &a);
        assert!(after.min_reliability >= before.min_reliability - 1e-12);
        assert!(after.total_std >= before.total_std - 1e-12);
    }

    #[test]
    fn task_expected_std_matches_objective_sum() {
        let inst = instance_with(2, 4);
        let graph = compute_valid_pairs(&inst);
        let mut a = Assignment::for_instance(&inst);
        for (i, p) in graph.pairs.iter().enumerate() {
            // spread workers over tasks round-robin, one task each
            if a.is_unassigned(p.worker) && i % 2 == p.task.index() % 2 {
                a.assign_pair(p).unwrap();
            }
        }
        let v = evaluate(&inst, &a);
        let sum: f64 = (0..inst.num_tasks())
            .map(|i| task_expected_std(&inst, &a, TaskId::from(i)))
            .sum();
        assert!((v.total_std - sum).abs() < 1e-9);
    }
}
