//! Task-and-worker assignment strategies (the `S` of the paper's algorithms).
//!
//! An [`Assignment`] maps every worker to at most one task and records, per
//! task, the contributions (confidence, approach angle, arrival time) of the
//! workers assigned to it. It is the common currency between the greedy,
//! sampling and divide-and-conquer solvers, the objective evaluation and the
//! platform simulator.

use crate::error::ModelError;
use crate::ids::{TaskId, WorkerId};
use crate::instance::ProblemInstance;
use crate::valid_pairs::{check_pair, Contribution, ValidPair};

/// A task-and-worker assignment strategy.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    /// For each task (dense index), the workers assigned to it together with
    /// their contributions.
    per_task: Vec<Vec<(WorkerId, Contribution)>>,
    /// For each worker (dense index), the task it is assigned to, if any.
    per_worker: Vec<Option<TaskId>>,
}

impl Assignment {
    /// Creates an empty assignment for `num_tasks` tasks and `num_workers`
    /// workers.
    pub fn new(num_tasks: usize, num_workers: usize) -> Self {
        Self {
            per_task: vec![Vec::new(); num_tasks],
            per_worker: vec![None; num_workers],
        }
    }

    /// Creates an empty assignment sized for an instance.
    pub fn for_instance(instance: &ProblemInstance) -> Self {
        Self::new(instance.num_tasks(), instance.num_workers())
    }

    /// Number of tasks this assignment covers (dense capacity, not the number
    /// of tasks with workers).
    pub fn num_tasks(&self) -> usize {
        self.per_task.len()
    }

    /// Number of workers this assignment covers.
    pub fn num_workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Assigns a worker to a task with the given contribution.
    ///
    /// Fails when the worker is already assigned to a *different* task.
    /// Re-assigning a worker to the same task overwrites its contribution.
    pub fn assign(
        &mut self,
        task: TaskId,
        worker: WorkerId,
        contribution: Contribution,
    ) -> Result<(), ModelError> {
        match self.per_worker.get(worker.index()) {
            None => return Err(ModelError::UnknownWorker(worker)),
            Some(Some(existing)) if *existing != task => {
                return Err(ModelError::WorkerAssignedTwice(worker))
            }
            _ => {}
        }
        if task.index() >= self.per_task.len() {
            return Err(ModelError::UnknownTask(task));
        }
        let entry = &mut self.per_task[task.index()];
        if let Some(slot) = entry.iter_mut().find(|(w, _)| *w == worker) {
            slot.1 = contribution;
        } else {
            entry.push((worker, contribution));
        }
        self.per_worker[worker.index()] = Some(task);
        Ok(())
    }

    /// Assigns a worker to a task described by a [`ValidPair`].
    pub fn assign_pair(&mut self, pair: &ValidPair) -> Result<(), ModelError> {
        self.assign(pair.task, pair.worker, pair.contribution)
    }

    /// Removes a worker's assignment (no-op if unassigned). Returns the task
    /// it was assigned to, if any.
    pub fn unassign(&mut self, worker: WorkerId) -> Option<TaskId> {
        let slot = self.per_worker.get_mut(worker.index())?;
        let task = slot.take()?;
        self.per_task[task.index()].retain(|(w, _)| *w != worker);
        Some(task)
    }

    /// The task a worker is assigned to, if any.
    pub fn task_of(&self, worker: WorkerId) -> Option<TaskId> {
        self.per_worker.get(worker.index()).copied().flatten()
    }

    /// Is the worker currently unassigned?
    pub fn is_unassigned(&self, worker: WorkerId) -> bool {
        self.task_of(worker).is_none()
    }

    /// The workers (and contributions) assigned to a task.
    pub fn workers_of(&self, task: TaskId) -> &[(WorkerId, Contribution)] {
        self.per_task
            .get(task.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The contributions assigned to a task (without worker ids).
    pub fn contributions_of(&self, task: TaskId) -> Vec<Contribution> {
        self.workers_of(task).iter().map(|(_, c)| *c).collect()
    }

    /// Number of workers assigned to a task.
    pub fn task_load(&self, task: TaskId) -> usize {
        self.workers_of(task).len()
    }

    /// Total number of assigned workers.
    pub fn num_assigned(&self) -> usize {
        self.per_worker.iter().filter(|t| t.is_some()).count()
    }

    /// Tasks that have at least one worker assigned.
    pub fn non_empty_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.per_task
            .iter()
            .enumerate()
            .filter(|(_, ws)| !ws.is_empty())
            .map(|(i, _)| TaskId::from(i))
    }

    /// Iterates over all `(task, worker, contribution)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, WorkerId, Contribution)> + '_ {
        self.per_task.iter().enumerate().flat_map(|(i, ws)| {
            ws.iter()
                .map(move |(w, c)| (TaskId::from(i), *w, *c))
        })
    }

    /// Merges another assignment into this one. Workers already assigned in
    /// `self` keep their assignment; conflicting assignments in `other` are
    /// skipped and reported back.
    pub fn merge_preferring_self(&mut self, other: &Assignment) -> Vec<WorkerId> {
        let mut conflicts = Vec::new();
        for (task, worker, contribution) in other.iter() {
            match self.task_of(worker) {
                None => {
                    // Safe: `other` has the same dimensions by construction of callers.
                    let _ = self.assign(task, worker, contribution);
                }
                Some(existing) if existing == task => {}
                Some(_) => conflicts.push(worker),
            }
        }
        conflicts
    }

    /// Validates the assignment against an instance: every pair must satisfy
    /// the direction/deadline constraints and every worker must serve at most
    /// one task (the latter holds by construction, but is re-checked for
    /// assignments deserialised from external sources).
    pub fn validate(&self, instance: &ProblemInstance) -> Result<(), ModelError> {
        if self.per_task.len() != instance.num_tasks()
            || self.per_worker.len() != instance.num_workers()
        {
            return Err(ModelError::UnknownTask(TaskId::from(self.per_task.len())));
        }
        let mut seen = vec![false; instance.num_workers()];
        for (task_id, worker_id, _) in self.iter() {
            let task = instance.task(task_id)?;
            let worker = instance.worker(worker_id)?;
            if seen[worker_id.index()] {
                return Err(ModelError::WorkerAssignedTwice(worker_id));
            }
            seen[worker_id.index()] = true;
            if check_pair(task, worker, instance.depart_at, instance.allow_wait).is_none() {
                return Err(ModelError::InvalidPair {
                    task: task_id,
                    worker: worker_id,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::Confidence;
    use crate::task::{Task, TimeWindow};
    use crate::worker::Worker;
    use rdbsc_geo::{AngleRange, Point};

    fn contribution(p: f64) -> Contribution {
        Contribution::new(Confidence::new(p).unwrap(), 1.0, 2.0)
    }

    #[test]
    fn assign_and_lookup() {
        let mut a = Assignment::new(2, 3);
        a.assign(TaskId(0), WorkerId(1), contribution(0.9)).unwrap();
        a.assign(TaskId(1), WorkerId(2), contribution(0.8)).unwrap();
        assert_eq!(a.task_of(WorkerId(1)), Some(TaskId(0)));
        assert_eq!(a.task_of(WorkerId(0)), None);
        assert_eq!(a.task_load(TaskId(0)), 1);
        assert_eq!(a.num_assigned(), 2);
        assert_eq!(a.non_empty_tasks().count(), 2);
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn double_assignment_is_rejected() {
        let mut a = Assignment::new(2, 1);
        a.assign(TaskId(0), WorkerId(0), contribution(0.9)).unwrap();
        let err = a.assign(TaskId(1), WorkerId(0), contribution(0.9));
        assert_eq!(err, Err(ModelError::WorkerAssignedTwice(WorkerId(0))));
        // re-assigning to the same task just overwrites the contribution
        assert!(a.assign(TaskId(0), WorkerId(0), contribution(0.5)).is_ok());
        assert_eq!(a.workers_of(TaskId(0)).len(), 1);
        assert_eq!(a.workers_of(TaskId(0))[0].1.p(), 0.5);
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let mut a = Assignment::new(1, 1);
        assert!(a.assign(TaskId(5), WorkerId(0), contribution(0.9)).is_err());
        assert!(a.assign(TaskId(0), WorkerId(5), contribution(0.9)).is_err());
    }

    #[test]
    fn unassign_round_trip() {
        let mut a = Assignment::new(1, 1);
        a.assign(TaskId(0), WorkerId(0), contribution(0.9)).unwrap();
        assert_eq!(a.unassign(WorkerId(0)), Some(TaskId(0)));
        assert_eq!(a.unassign(WorkerId(0)), None);
        assert_eq!(a.task_load(TaskId(0)), 0);
        assert!(a.is_unassigned(WorkerId(0)));
    }

    #[test]
    fn merge_prefers_existing_assignments() {
        let mut a = Assignment::new(2, 2);
        a.assign(TaskId(0), WorkerId(0), contribution(0.9)).unwrap();
        let mut b = Assignment::new(2, 2);
        b.assign(TaskId(1), WorkerId(0), contribution(0.8)).unwrap();
        b.assign(TaskId(1), WorkerId(1), contribution(0.7)).unwrap();
        let conflicts = a.merge_preferring_self(&b);
        assert_eq!(conflicts, vec![WorkerId(0)]);
        assert_eq!(a.task_of(WorkerId(0)), Some(TaskId(0)));
        assert_eq!(a.task_of(WorkerId(1)), Some(TaskId(1)));
    }

    #[test]
    fn validate_against_instance() {
        let task = Task::new(
            TaskId(0),
            Point::new(1.0, 0.0),
            TimeWindow::new(0.0, 5.0).unwrap(),
        );
        let worker = Worker::new(
            WorkerId(0),
            Point::ORIGIN,
            1.0,
            AngleRange::full(),
            Confidence::new(0.9).unwrap(),
        )
        .unwrap();
        let slow_worker = Worker::new(
            WorkerId(1),
            Point::new(100.0, 100.0),
            0.01,
            AngleRange::full(),
            Confidence::new(0.9).unwrap(),
        )
        .unwrap();
        let instance = ProblemInstance::new(vec![task], vec![worker, slow_worker], 0.5);

        let mut ok = Assignment::for_instance(&instance);
        let c = check_pair(&instance.tasks[0], &instance.workers[0], 0.0, true).unwrap();
        ok.assign(TaskId(0), WorkerId(0), c).unwrap();
        assert!(ok.validate(&instance).is_ok());

        // An assignment claiming the unreachable worker serves the task must fail.
        let mut bad = Assignment::for_instance(&instance);
        bad.assign(TaskId(0), WorkerId(1), contribution(0.9)).unwrap();
        assert!(matches!(
            bad.validate(&instance),
            Err(ModelError::InvalidPair { .. })
        ));
    }
}
