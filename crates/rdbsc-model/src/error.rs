//! Error type for model construction and validation.

use crate::ids::{TaskId, WorkerId};
use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A confidence value fell outside `[0, 1]` or was not finite.
    InvalidConfidence(f64),
    /// A time window had `end < start` or non-finite bounds.
    InvalidTimeWindow {
        /// The rejected window's start.
        start: f64,
        /// The rejected window's end.
        end: f64,
    },
    /// A worker speed was negative or non-finite.
    InvalidSpeed(f64),
    /// A referenced task id does not exist in the instance.
    UnknownTask(TaskId),
    /// A referenced worker id does not exist in the instance.
    UnknownWorker(WorkerId),
    /// A worker was assigned to more than one task.
    WorkerAssignedTwice(WorkerId),
    /// An assignment pair violates the reachability constraint.
    InvalidPair {
        /// The task of the rejected pair.
        task: TaskId,
        /// The worker of the rejected pair.
        worker: WorkerId,
    },
    /// The diversity balance weight `β` fell outside `[0, 1]`.
    InvalidBeta(f64),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfidence(p) => {
                write!(f, "worker confidence {p} is outside [0, 1]")
            }
            ModelError::InvalidTimeWindow { start, end } => {
                write!(f, "invalid time window [{start}, {end}]")
            }
            ModelError::InvalidSpeed(v) => write!(f, "invalid worker speed {v}"),
            ModelError::UnknownTask(t) => write!(f, "unknown task {t}"),
            ModelError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            ModelError::WorkerAssignedTwice(w) => {
                write!(f, "worker {w} assigned to more than one task")
            }
            ModelError::InvalidPair { task, worker } => {
                write!(f, "worker {worker} cannot serve task {task} under the direction/deadline constraints")
            }
            ModelError::InvalidBeta(b) => write!(f, "diversity balance weight β = {b} is outside [0, 1]"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = ModelError::InvalidConfidence(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = ModelError::WorkerAssignedTwice(WorkerId(3));
        assert!(e.to_string().contains("w3"));
        let e = ModelError::InvalidPair {
            task: TaskId(1),
            worker: WorkerId(2),
        };
        assert!(e.to_string().contains("t1") && e.to_string().contains("w2"));
    }
}
