//! A complete RDB-SC problem instance: the task set `T`, the worker set `W`
//! and the global parameters of Definition 4.

use crate::error::ModelError;
use crate::ids::{TaskId, WorkerId};
use crate::task::Task;
use crate::worker::Worker;

/// An RDB-SC problem instance.
///
/// Tasks and workers are stored in dense vectors and identified by their
/// index ([`TaskId`] / [`WorkerId`]); the constructor re-numbers ids to match
/// positions so the rest of the system can index in O(1).
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    /// The `m` time-constrained spatial tasks.
    pub tasks: Vec<Task>,
    /// The `n` dynamically moving workers.
    pub workers: Vec<Worker>,
    /// Default diversity balance weight `β ∈ [0, 1]` (Eq. 5), used by tasks
    /// that do not specify their own.
    pub beta: f64,
    /// Time at which assignments are made (workers depart no earlier).
    pub depart_at: f64,
    /// Whether a worker arriving before a task's window opens may wait at the
    /// location (see `rdbsc_geo::MotionModel::reach`).
    pub allow_wait: bool,
}

impl ProblemInstance {
    /// Creates an instance, re-numbering task and worker ids to their
    /// positions. `beta` is clamped into `[0, 1]`.
    pub fn new(mut tasks: Vec<Task>, mut workers: Vec<Worker>, beta: f64) -> Self {
        for (i, t) in tasks.iter_mut().enumerate() {
            t.id = TaskId::from(i);
        }
        for (j, w) in workers.iter_mut().enumerate() {
            w.id = WorkerId::from(j);
        }
        Self {
            tasks,
            workers,
            beta: beta.clamp(0.0, 1.0),
            depart_at: 0.0,
            allow_wait: true,
        }
    }

    /// Sets the departure time (builder style).
    pub fn with_depart_at(mut self, t: f64) -> Self {
        self.depart_at = t;
        self
    }

    /// Sets the waiting policy (builder style).
    pub fn with_allow_wait(mut self, allow: bool) -> Self {
        self.allow_wait = allow;
        self
    }

    /// Number of tasks `m`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of workers `n`.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Looks a task up by id.
    pub fn task(&self, id: TaskId) -> Result<&Task, ModelError> {
        self.tasks.get(id.index()).ok_or(ModelError::UnknownTask(id))
    }

    /// Looks a worker up by id.
    pub fn worker(&self, id: WorkerId) -> Result<&Worker, ModelError> {
        self.workers
            .get(id.index())
            .ok_or(ModelError::UnknownWorker(id))
    }

    /// The effective β of a task, falling back to the instance default.
    pub fn beta_of(&self, task: TaskId) -> f64 {
        self.tasks
            .get(task.index())
            .map(|t| t.effective_beta(self.beta))
            .unwrap_or(self.beta)
    }

    /// Builds a sub-instance restricted to the given tasks and workers
    /// (used by the divide-and-conquer partitioner). Ids in the returned
    /// instance are re-numbered; the mapping back to the original ids is
    /// returned alongside.
    pub fn restrict(
        &self,
        task_ids: &[TaskId],
        worker_ids: &[WorkerId],
    ) -> (ProblemInstance, SubInstanceMapping) {
        let tasks: Vec<Task> = task_ids
            .iter()
            .filter_map(|id| self.tasks.get(id.index()).copied())
            .collect();
        let workers: Vec<Worker> = worker_ids
            .iter()
            .filter_map(|id| self.workers.get(id.index()).copied())
            .collect();
        let mapping = SubInstanceMapping {
            tasks: tasks.iter().map(|t| t.id).collect(),
            workers: workers.iter().map(|w| w.id).collect(),
        };
        let mut sub = ProblemInstance::new(tasks, workers, self.beta);
        sub.depart_at = self.depart_at;
        sub.allow_wait = self.allow_wait;
        (sub, mapping)
    }
}

/// Mapping from a sub-instance's dense ids back to the parent instance's ids.
#[derive(Debug, Clone, Default)]
pub struct SubInstanceMapping {
    /// `tasks[i]` is the parent id of sub-task `i`.
    pub tasks: Vec<TaskId>,
    /// `workers[j]` is the parent id of sub-worker `j`.
    pub workers: Vec<WorkerId>,
}

impl SubInstanceMapping {
    /// Parent id of a sub-instance task.
    pub fn task(&self, sub: TaskId) -> TaskId {
        self.tasks[sub.index()]
    }

    /// Parent id of a sub-instance worker.
    pub fn worker(&self, sub: WorkerId) -> WorkerId {
        self.workers[sub.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::Confidence;
    use crate::task::TimeWindow;
    use rdbsc_geo::{AngleRange, Point};

    fn make_instance(m: usize, n: usize) -> ProblemInstance {
        let tasks = (0..m)
            .map(|i| {
                Task::new(
                    TaskId(999), // ids are re-numbered by the constructor
                    Point::new(i as f64 * 0.1, 0.0),
                    TimeWindow::new(0.0, 10.0).unwrap(),
                )
            })
            .collect();
        let workers = (0..n)
            .map(|j| {
                Worker::new(
                    WorkerId(999),
                    Point::new(0.0, j as f64 * 0.1),
                    0.5,
                    AngleRange::full(),
                    Confidence::new(0.9).unwrap(),
                )
                .unwrap()
            })
            .collect();
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn ids_are_renumbered_to_positions() {
        let inst = make_instance(3, 2);
        for (i, t) in inst.tasks.iter().enumerate() {
            assert_eq!(t.id.index(), i);
        }
        for (j, w) in inst.workers.iter().enumerate() {
            assert_eq!(w.id.index(), j);
        }
    }

    #[test]
    fn lookups_by_id() {
        let inst = make_instance(3, 2);
        assert!(inst.task(TaskId(2)).is_ok());
        assert!(inst.task(TaskId(5)).is_err());
        assert!(inst.worker(WorkerId(1)).is_ok());
        assert!(inst.worker(WorkerId(9)).is_err());
        assert_eq!(inst.num_tasks(), 3);
        assert_eq!(inst.num_workers(), 2);
    }

    #[test]
    fn beta_of_uses_task_override() {
        let mut inst = make_instance(2, 1);
        inst.tasks[1].beta = Some(0.9);
        assert_eq!(inst.beta_of(TaskId(0)), 0.5);
        assert_eq!(inst.beta_of(TaskId(1)), 0.9);
    }

    #[test]
    fn restrict_builds_sub_instance_with_mapping() {
        let inst = make_instance(4, 3);
        let (sub, map) = inst.restrict(&[TaskId(1), TaskId(3)], &[WorkerId(0), WorkerId(2)]);
        assert_eq!(sub.num_tasks(), 2);
        assert_eq!(sub.num_workers(), 2);
        assert_eq!(map.task(TaskId(0)), TaskId(1));
        assert_eq!(map.task(TaskId(1)), TaskId(3));
        assert_eq!(map.worker(WorkerId(1)), WorkerId(2));
        // sub-instance tasks keep the parent locations
        assert_eq!(sub.tasks[0].location, inst.tasks[1].location);
    }

    #[test]
    fn builder_setters() {
        let inst = make_instance(1, 1).with_depart_at(3.0).with_allow_wait(false);
        assert_eq!(inst.depart_at, 3.0);
        assert!(!inst.allow_wait);
    }
}
