//! Answer aggregation for a spatial task (Section 2.3, "Answer Aggregation
//! for a Spatial Task").
//!
//! After a task has been served by several workers, the requester receives a
//! pile of answers (photos) taken from different angles and at different
//! times. The paper proposes grouping answers with similar spatial/temporal
//! characteristics and showing only one representative per group. This module
//! implements that aggregation: answers are clustered greedily by angular and
//! temporal proximity, and each cluster is represented by its
//! highest-confidence member.

use crate::task::TimeWindow;
use crate::valid_pairs::Contribution;
use rdbsc_geo::angle::ccw_delta;

/// Parameters controlling when two answers are considered "similar".
#[derive(Debug, Clone, Copy)]
pub struct AggregationConfig {
    /// Two answers whose approach angles differ by at most this (radians)
    /// are spatially similar.
    pub angle_tolerance: f64,
    /// Two answers whose (window-normalised) times differ by at most this
    /// fraction of the valid period are temporally similar.
    pub time_tolerance_fraction: f64,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        Self {
            angle_tolerance: std::f64::consts::PI / 6.0,
            time_tolerance_fraction: 0.15,
        }
    }
}

/// One aggregated group of answers.
#[derive(Debug, Clone)]
pub struct AnswerGroup {
    /// Indices (into the input slice) of the answers in this group.
    pub members: Vec<usize>,
    /// Index of the representative answer (the highest-confidence member).
    pub representative: usize,
    /// Mean approach angle of the group (radians).
    pub mean_angle: f64,
    /// Mean arrival time of the group.
    pub mean_arrival: f64,
}

/// The circular distance between two angles (≤ π).
fn angular_distance(a: f64, b: f64) -> f64 {
    let d = ccw_delta(a, b);
    d.min(rdbsc_geo::FULL_TURN - d)
}

/// Groups a task's answers by spatial/temporal similarity and picks one
/// representative per group.
///
/// The clustering is a simple greedy leader algorithm: answers are visited in
/// decreasing confidence order; each answer either joins the first existing
/// group whose representative is within both tolerances, or founds a new
/// group. This is deterministic, `O(k·g)` for `k` answers and `g` groups, and
/// — because the visit order is by confidence — every group's representative
/// is automatically its most reliable member.
pub fn aggregate_answers(
    answers: &[Contribution],
    window: TimeWindow,
    config: &AggregationConfig,
) -> Vec<AnswerGroup> {
    if answers.is_empty() {
        return Vec::new();
    }
    let duration = window.duration().max(f64::EPSILON);
    let time_tolerance = config.time_tolerance_fraction.max(0.0) * duration;

    let mut order: Vec<usize> = (0..answers.len()).collect();
    order.sort_by(|&a, &b| {
        answers[b]
            .p()
            .partial_cmp(&answers[a].p())
            .expect("confidences are not NaN")
            .then(a.cmp(&b))
    });

    let mut groups: Vec<AnswerGroup> = Vec::new();
    for &idx in &order {
        let answer = &answers[idx];
        let joined = groups.iter_mut().find(|g| {
            let rep = &answers[g.representative];
            angular_distance(answer.angle, rep.angle) <= config.angle_tolerance
                && (answer.arrival - rep.arrival).abs() <= time_tolerance
        });
        match joined {
            Some(group) => group.members.push(idx),
            None => groups.push(AnswerGroup {
                members: vec![idx],
                representative: idx,
                mean_angle: 0.0,
                mean_arrival: 0.0,
            }),
        }
    }

    // Finalise the group summaries.
    for group in &mut groups {
        let n = group.members.len() as f64;
        // Mean angle via the circular mean.
        let (sin_sum, cos_sum) = group.members.iter().fold((0.0, 0.0), |(s, c), &i| {
            (s + answers[i].angle.sin(), c + answers[i].angle.cos())
        });
        group.mean_angle = rdbsc_geo::normalize_angle(sin_sum.atan2(cos_sum));
        group.mean_arrival = group.members.iter().map(|&i| answers[i].arrival).sum::<f64>() / n;
    }
    groups
}

/// Convenience: the representative answers only (what the requester is
/// shown), in group order.
pub fn representatives(
    answers: &[Contribution],
    window: TimeWindow,
    config: &AggregationConfig,
) -> Vec<Contribution> {
    aggregate_answers(answers, window, config)
        .into_iter()
        .map(|g| answers[g.representative])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::Confidence;
    use std::f64::consts::PI;

    fn contribution(p: f64, angle: f64, arrival: f64) -> Contribution {
        Contribution::new(Confidence::new(p).unwrap(), angle, arrival)
    }

    fn window() -> TimeWindow {
        TimeWindow::new(0.0, 10.0).unwrap()
    }

    #[test]
    fn empty_input_yields_no_groups() {
        assert!(aggregate_answers(&[], window(), &AggregationConfig::default()).is_empty());
    }

    #[test]
    fn similar_answers_are_grouped_and_represented_by_the_most_reliable() {
        let answers = [
            contribution(0.7, 0.05, 1.0),
            contribution(0.9, 0.00, 1.2), // same view, more reliable
            contribution(0.8, PI, 8.0),   // opposite side, much later
        ];
        let groups = aggregate_answers(&answers, window(), &AggregationConfig::default());
        assert_eq!(groups.len(), 2);
        let west_group = groups
            .iter()
            .find(|g| g.members.contains(&0))
            .expect("first answer belongs to some group");
        assert!(west_group.members.contains(&1));
        assert_eq!(west_group.representative, 1, "highest confidence represents the group");
    }

    #[test]
    fn distinct_views_stay_separate() {
        let answers = [
            contribution(0.9, 0.0, 1.0),
            contribution(0.9, PI / 2.0, 1.0),
            contribution(0.9, PI, 1.0),
            contribution(0.9, 1.5 * PI, 1.0),
        ];
        let groups = aggregate_answers(&answers, window(), &AggregationConfig::default());
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert_eq!(g.members.len(), 1);
        }
    }

    #[test]
    fn same_angle_different_times_stay_separate() {
        let answers = [
            contribution(0.9, 1.0, 0.5),
            contribution(0.9, 1.0, 9.5),
        ];
        let groups = aggregate_answers(&answers, window(), &AggregationConfig::default());
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn angular_wraparound_is_respected() {
        // 0.05 rad and 2π − 0.05 rad are only 0.1 rad apart.
        let answers = [
            contribution(0.9, 0.05, 1.0),
            contribution(0.8, rdbsc_geo::FULL_TURN - 0.05, 1.0),
        ];
        let groups = aggregate_answers(&answers, window(), &AggregationConfig::default());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 2);
        // The circular mean of the two angles is ~0, not ~π.
        assert!(groups[0].mean_angle < 0.2 || groups[0].mean_angle > rdbsc_geo::FULL_TURN - 0.2);
    }

    #[test]
    fn every_answer_lands_in_exactly_one_group() {
        let answers: Vec<Contribution> = (0..25)
            .map(|i| contribution(0.5 + 0.01 * (i % 10) as f64, (i as f64) * 0.7, (i % 11) as f64))
            .collect();
        let groups = aggregate_answers(&answers, window(), &AggregationConfig::default());
        let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
        for g in &groups {
            assert!(g.members.contains(&g.representative));
        }
    }

    #[test]
    fn representatives_shrink_the_answer_set() {
        let answers = [
            contribution(0.7, 0.02, 1.0),
            contribution(0.9, 0.04, 1.1),
            contribution(0.6, 0.01, 0.9),
            contribution(0.8, PI, 5.0),
        ];
        let reps = representatives(&answers, window(), &AggregationConfig::default());
        assert_eq!(reps.len(), 2);
        assert!(reps.iter().any(|c| (c.p() - 0.9).abs() < 1e-12));
        assert!(reps.iter().any(|c| (c.p() - 0.8).abs() < 1e-12));
    }

    #[test]
    fn zero_tolerances_give_one_group_per_distinct_answer() {
        let answers = [
            contribution(0.9, 1.0, 2.0),
            contribution(0.9, 1.0, 2.0),
            contribution(0.9, 2.0, 2.0),
        ];
        let config = AggregationConfig {
            angle_tolerance: 0.0,
            time_tolerance_fraction: 0.0,
        };
        let groups = aggregate_answers(&answers, window(), &config);
        // identical answers still merge (distance 0), distinct ones do not
        assert_eq!(groups.len(), 2);
    }
}
