//! Spatial and temporal diversity of a concrete worker set (Eqs. 3–5).
//!
//! * **Spatial diversity** `SD(tᵢ)`: draw a ray from the task location
//!   towards each (successful) worker; the rays cut the circle into angular
//!   gaps `A₁..A_r` summing to `2π`; `SD` is the entropy of the gap
//!   fractions.
//! * **Temporal diversity** `TD(tᵢ)`: the workers' arrival times cut the
//!   valid period `[sᵢ, eᵢ]` into `r + 1` sub-intervals `I₁..I_{r+1}`;
//!   `TD` is the entropy of the sub-interval fractions.
//! * `STD = β·SD + (1−β)·TD` (Eq. 5).
//!
//! The paper writes `log` without a base; this implementation uses the
//! natural logarithm throughout (the base only rescales every diversity value
//! by the same constant, so comparisons between algorithms are unaffected).

use crate::task::TimeWindow;
use rdbsc_geo::{normalize_angle, FULL_TURN};

/// Entropy summand `h(x) = −x·ln(x)`, with `h(0) = 0`.
#[inline]
pub fn entropy_term(fraction: f64) -> f64 {
    if fraction <= 0.0 {
        0.0
    } else {
        -fraction * fraction.ln()
    }
}

/// Spatial diversity (Eq. 3) of a set of approach angles (radians).
///
/// With zero or one angle there is a single gap of `2π`, whose entropy is 0.
/// The maximum value for `r` angles is `ln(r)`, attained when the rays are
/// equally spaced.
pub fn spatial_diversity(angles: &[f64]) -> f64 {
    if angles.len() < 2 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = angles.iter().map(|&a| normalize_angle(a)).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("angle must not be NaN"));
    let r = sorted.len();
    let mut sum = 0.0;
    for j in 0..r {
        let next = if j + 1 == r {
            sorted[0] + FULL_TURN
        } else {
            sorted[j + 1]
        };
        let gap = next - sorted[j];
        sum += entropy_term(gap / FULL_TURN);
    }
    sum
}

/// Temporal diversity (Eq. 4) of a set of arrival times within the task's
/// valid period.
///
/// Arrival times are clamped into the window (a worker that waits for the
/// window to open contributes an arrival at `s`). With zero arrivals the
/// whole window is a single interval and the diversity is 0. With `r`
/// arrivals the maximum is `ln(r + 1)`.
///
/// A degenerate window (`duration == 0`) has diversity 0.
pub fn temporal_diversity(arrivals: &[f64], window: TimeWindow) -> f64 {
    let duration = window.duration();
    if duration <= 0.0 || arrivals.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = arrivals.iter().map(|&t| window.clamp(t)).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("arrival must not be NaN"));
    let mut sum = 0.0;
    let mut prev = window.start;
    for &t in &sorted {
        sum += entropy_term((t - prev) / duration);
        prev = t;
    }
    sum += entropy_term((window.end - prev) / duration);
    sum
}

/// Combined spatial/temporal diversity `STD = β·SD + (1−β)·TD` (Eq. 5).
///
/// `beta` is clamped into `[0, 1]` defensively.
pub fn std_diversity(beta: f64, sd: f64, td: f64) -> f64 {
    let beta = beta.clamp(0.0, 1.0);
    beta * sd + (1.0 - beta) * td
}

/// STD of a concrete set of worker contributions, given as
/// `(approach_angle, arrival_time)` pairs.
pub fn std_of_contributions(
    contributions: &[(f64, f64)],
    window: TimeWindow,
    beta: f64,
) -> f64 {
    let angles: Vec<f64> = contributions.iter().map(|c| c.0).collect();
    let arrivals: Vec<f64> = contributions.iter().map(|c| c.1).collect();
    std_diversity(
        beta,
        spatial_diversity(&angles),
        temporal_diversity(&arrivals, window),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn window(s: f64, e: f64) -> TimeWindow {
        TimeWindow::new(s, e).unwrap()
    }

    #[test]
    fn entropy_term_edge_cases() {
        assert_eq!(entropy_term(0.0), 0.0);
        assert_eq!(entropy_term(1.0), 0.0);
        assert!(entropy_term(0.5) > 0.0);
        assert_eq!(entropy_term(-0.1), 0.0);
    }

    #[test]
    fn spatial_diversity_trivial_cases() {
        assert_eq!(spatial_diversity(&[]), 0.0);
        assert_eq!(spatial_diversity(&[1.0]), 0.0);
    }

    #[test]
    fn spatial_diversity_two_opposite_angles_is_ln2() {
        let sd = spatial_diversity(&[0.0, PI]);
        assert!((sd - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn spatial_diversity_equally_spaced_is_ln_r() {
        for r in 2..8usize {
            let angles: Vec<f64> = (0..r).map(|i| FULL_TURN * i as f64 / r as f64).collect();
            let sd = spatial_diversity(&angles);
            assert!(
                (sd - (r as f64).ln()).abs() < 1e-9,
                "r={r}: sd={sd}, expected {}",
                (r as f64).ln()
            );
        }
    }

    #[test]
    fn spatial_diversity_clustered_angles_is_low() {
        let clustered = spatial_diversity(&[0.0, 0.01, 0.02]);
        let spread = spatial_diversity(&[0.0, 2.0, 4.0]);
        assert!(clustered < spread);
    }

    #[test]
    fn spatial_diversity_max_bound() {
        // entropy of r gaps is at most ln(r)
        let angles = [0.3, 1.1, 2.9, 4.4, 5.0];
        assert!(spatial_diversity(&angles) <= (angles.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn spatial_diversity_invariant_to_rotation() {
        let a = [0.1, 1.5, 3.0, 5.5];
        let b: Vec<f64> = a.iter().map(|x| x + 1.234).collect();
        assert!((spatial_diversity(&a) - spatial_diversity(&b)).abs() < 1e-9);
    }

    #[test]
    fn temporal_diversity_trivial_cases() {
        let w = window(0.0, 10.0);
        assert_eq!(temporal_diversity(&[], w), 0.0);
        assert_eq!(temporal_diversity(&[3.0], window(5.0, 5.0)), 0.0);
    }

    #[test]
    fn temporal_diversity_single_midpoint_arrival_is_ln2() {
        let w = window(0.0, 10.0);
        let td = temporal_diversity(&[5.0], w);
        assert!((td - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn temporal_diversity_equally_spaced_is_ln_r_plus_1() {
        let w = window(0.0, 12.0);
        // arrivals at 4 and 8 cut [0,12] into three equal intervals
        let td = temporal_diversity(&[4.0, 8.0], w);
        assert!((td - 3.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn temporal_diversity_boundary_arrivals_contribute_zero_intervals() {
        let w = window(0.0, 10.0);
        // an arrival exactly at the start produces a zero-length first interval
        let td = temporal_diversity(&[0.0], w);
        assert_eq!(td, 0.0);
        // arrivals outside the window are clamped
        let td = temporal_diversity(&[-5.0, 20.0], w);
        assert_eq!(td, 0.0);
    }

    #[test]
    fn temporal_diversity_is_order_independent() {
        let w = window(0.0, 10.0);
        assert!(
            (temporal_diversity(&[2.0, 7.0, 4.0], w) - temporal_diversity(&[7.0, 2.0, 4.0], w))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn std_combines_with_beta() {
        let sd = 1.0;
        let td = 3.0;
        assert_eq!(std_diversity(1.0, sd, td), 1.0);
        assert_eq!(std_diversity(0.0, sd, td), 3.0);
        assert!((std_diversity(0.5, sd, td) - 2.0).abs() < 1e-12);
        // defensive clamping
        assert_eq!(std_diversity(2.0, sd, td), 1.0);
    }

    #[test]
    fn std_of_contributions_matches_components() {
        let w = window(0.0, 10.0);
        let contributions = [(0.0, 5.0), (PI, 2.5)];
        let expected = std_diversity(
            0.3,
            spatial_diversity(&[0.0, PI]),
            temporal_diversity(&[5.0, 2.5], w),
        );
        assert!((std_of_contributions(&contributions, w, 0.3) - expected).abs() < 1e-12);
    }
}
