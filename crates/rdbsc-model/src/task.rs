//! Time-constrained spatial tasks (Definition 1).

use crate::error::ModelError;
use crate::ids::TaskId;
use rdbsc_geo::Point;

/// The valid period `[s, e]` during which a task may be served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWindow {
    /// Start of the valid period (`sᵢ`).
    pub start: f64,
    /// End of the valid period / expiration time (`eᵢ`).
    pub end: f64,
}

impl TimeWindow {
    /// Creates a window, validating `start <= end` and finiteness.
    pub fn new(start: f64, end: f64) -> Result<Self, ModelError> {
        if !start.is_finite() || !end.is_finite() || end < start {
            return Err(ModelError::InvalidTimeWindow { start, end });
        }
        Ok(Self { start, end })
    }

    /// Window length (`eᵢ − sᵢ`), the paper's expiration-time range `rt`.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Does the window contain time `t` (inclusive)?
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t <= self.end
    }

    /// Clamp a time into the window.
    #[inline]
    pub fn clamp(&self, t: f64) -> f64 {
        t.clamp(self.start, self.end)
    }
}

/// A time-constrained spatial task `tᵢ` (Definition 1): a location `lᵢ` and a
/// valid period `[sᵢ, eᵢ]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Identifier (index within the instance).
    pub id: TaskId,
    /// Location `lᵢ` where the task must be performed.
    pub location: Point,
    /// Valid period `[sᵢ, eᵢ]`.
    pub window: TimeWindow,
    /// Requester-specified balance weight `β ∈ [0, 1]` between spatial and
    /// temporal diversity (Eq. 5). Tasks may override the instance default.
    pub beta: Option<f64>,
}

impl Task {
    /// Creates a task with the instance-level default `β`.
    pub fn new(id: TaskId, location: Point, window: TimeWindow) -> Self {
        Self {
            id,
            location,
            window,
            beta: None,
        }
    }

    /// Creates a task with a per-task `β`, validated to `[0, 1]`.
    pub fn with_beta(
        id: TaskId,
        location: Point,
        window: TimeWindow,
        beta: f64,
    ) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&beta) || !beta.is_finite() {
            return Err(ModelError::InvalidBeta(beta));
        }
        Ok(Self {
            id,
            location,
            window,
            beta: Some(beta),
        })
    }

    /// The effective `β` given the instance default.
    #[inline]
    pub fn effective_beta(&self, default_beta: f64) -> f64 {
        self.beta.unwrap_or(default_beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_validation() {
        assert!(TimeWindow::new(0.0, 1.0).is_ok());
        assert!(TimeWindow::new(1.0, 1.0).is_ok());
        assert!(TimeWindow::new(2.0, 1.0).is_err());
        assert!(TimeWindow::new(f64::NAN, 1.0).is_err());
        assert!(TimeWindow::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn window_queries() {
        let w = TimeWindow::new(1.0, 3.0).unwrap();
        assert_eq!(w.duration(), 2.0);
        assert!(w.contains(1.0) && w.contains(3.0) && w.contains(2.0));
        assert!(!w.contains(0.5) && !w.contains(3.5));
        assert_eq!(w.clamp(0.0), 1.0);
        assert_eq!(w.clamp(10.0), 3.0);
        assert_eq!(w.clamp(2.0), 2.0);
    }

    #[test]
    fn task_beta_validation_and_default() {
        let w = TimeWindow::new(0.0, 1.0).unwrap();
        let t = Task::new(TaskId(0), Point::ORIGIN, w);
        assert_eq!(t.effective_beta(0.5), 0.5);
        let t = Task::with_beta(TaskId(0), Point::ORIGIN, w, 0.8).unwrap();
        assert_eq!(t.effective_beta(0.5), 0.8);
        assert!(Task::with_beta(TaskId(0), Point::ORIGIN, w, 1.2).is_err());
        assert!(Task::with_beta(TaskId(0), Point::ORIGIN, w, -0.1).is_err());
    }
}
