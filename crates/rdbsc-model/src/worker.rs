//! Dynamically moving workers (Definition 2).

use crate::error::ModelError;
use crate::ids::WorkerId;
use crate::reliability::Confidence;
use rdbsc_geo::{AngleRange, MotionModel, Point};

/// A dynamically moving worker `wⱼ` (Definition 2): current location `lⱼ`,
/// velocity `vⱼ`, moving-direction cone `[α⁻ⱼ, α⁺ⱼ]` and confidence `pⱼ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Worker {
    /// Identifier (index within the instance).
    pub id: WorkerId,
    /// Current location `lⱼ`.
    pub location: Point,
    /// Scalar speed `vⱼ` (data-space units per time unit).
    pub speed: f64,
    /// Registered moving-direction cone `[α⁻ⱼ, α⁺ⱼ]`. A worker free to move
    /// anywhere registers the full circle.
    pub heading: AngleRange,
    /// Confidence `pⱼ ∈ [0, 1]` that the worker reliably completes a task.
    pub confidence: Confidence,
    /// Check-in time: the worker is available to start travelling from this
    /// time on (0 for workers present from the beginning).
    pub available_from: f64,
}

impl Worker {
    /// Creates a worker available from time 0, validating the speed.
    pub fn new(
        id: WorkerId,
        location: Point,
        speed: f64,
        heading: AngleRange,
        confidence: Confidence,
    ) -> Result<Self, ModelError> {
        if !speed.is_finite() || speed < 0.0 {
            return Err(ModelError::InvalidSpeed(speed));
        }
        Ok(Self {
            id,
            location,
            speed,
            heading,
            confidence,
            available_from: 0.0,
        })
    }

    /// Sets the check-in time.
    pub fn with_available_from(mut self, t: f64) -> Self {
        self.available_from = t;
        self
    }

    /// The worker's kinematic state as a [`MotionModel`].
    pub fn motion(&self) -> MotionModel {
        MotionModel::new(self.location, self.speed, self.heading)
            .with_available_from(self.available_from)
    }

    /// Probability `pⱼ` as a plain `f64`.
    #[inline]
    pub fn p(&self) -> f64 {
        self.confidence.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn worker_construction_validates_speed() {
        let c = Confidence::new(0.9).unwrap();
        assert!(Worker::new(WorkerId(0), Point::ORIGIN, 0.5, AngleRange::full(), c).is_ok());
        assert!(Worker::new(WorkerId(0), Point::ORIGIN, -0.5, AngleRange::full(), c).is_err());
        assert!(Worker::new(WorkerId(0), Point::ORIGIN, f64::NAN, AngleRange::full(), c).is_err());
    }

    #[test]
    fn motion_model_reflects_worker_fields() {
        let c = Confidence::new(0.8).unwrap();
        let w = Worker::new(
            WorkerId(1),
            Point::new(0.1, 0.2),
            0.3,
            AngleRange::from_bounds(0.0, FRAC_PI_4),
            c,
        )
        .unwrap()
        .with_available_from(2.0);
        let m = w.motion();
        assert_eq!(m.location, w.location);
        assert_eq!(m.speed, 0.3);
        assert_eq!(m.available_from, 2.0);
        assert!((w.p() - 0.8).abs() < 1e-12);
    }
}
