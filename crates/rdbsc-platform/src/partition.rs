//! Region-partitioned multi-engine serving behind the partition protocol.
//!
//! One [`AssignmentEngine`] owns the whole data space behind one lock — fine
//! for a single metro area, a ceiling for "heavy traffic from millions of
//! users". [`PartitionedEngine`] removes that ceiling by running **one
//! engine per spatial region** and routing [`EngineEvent`]s by location.
//! Since PR 5 the router is transport-agnostic: it holds one
//! [`PartitionClient`] per region and speaks the versioned partition
//! protocol ([`crate::protocol`]), so a region's engine can be a thread in
//! this process ([`InProcessClient`]) or a daemon on another host
//! (`rdbsc-server::HttpPartitionClient` → `rdbsc-partitiond`):
//!
//! ```text
//!                         ┌► PartitionClient 0 ─ thread: engine over region 0
//!   events ──► router ────┼► PartitionClient 1 ─ thread: engine over region 1
//!   (by location)         └► PartitionClient 2 ─ HTTP ──► rdbsc-partitiond
//!                              ▲ ticks begin on every client before any
//!                              └ reply is collected → partitions solve
//!                                concurrently, reports merge in order
//! ```
//!
//! Regions come from [`rdbsc_cluster::RegionPartitioner`]: rectangular,
//! aligned to the grid cells of the index geometry, with either static
//! uniform boundaries or k-means-seeded data-driven ones.
//!
//! ## Cross-partition worker handoff
//!
//! Workers move; regions do not. When a [`EngineEvent::WorkerMoved`] (or a
//! re-[`EngineEvent::WorkerCheckIn`]) lands on the other side of a region
//! boundary, the router **hands the worker off** using the engines' existing
//! machinery: a [`EngineEvent::WorkerLeft`] detaches it from its old engine
//! and a [`EngineEvent::WorkerCheckIn`] (with the router's last-known worker
//! record at the new position) registers it with the new one. Two rules keep
//! the handoff loss-free:
//!
//! * **Committed workers stay put.** A worker en route to a task is serving
//!   that task's partition; tearing it out would drop the commitment. The
//!   handoff is *deferred*: the move is forwarded to the old engine (whose
//!   index clamps out-of-region positions onto its border cells) and the
//!   worker is handed off only once it delivers its answer, gives up, or is
//!   released by a task expiration — with its banked contribution staying in
//!   the partition of the task it answered.
//! * **Exactly-one residency.** Handoff enqueues the `WorkerLeft` and the
//!   `WorkerCheckIn` in the same inter-tick window, and every engine drains
//!   its queue at the next lockstep tick — so a worker is live in exactly
//!   one engine whenever any engine solves.
//!
//! ## Determinism contract
//!
//! * With **one partition** the router degenerates to a pass-through and the
//!   output (tick reports, assignments, snapshots) is **byte-identical** to
//!   a plain [`AssignmentEngine`] fed the same event stream — whether the
//!   partition is a thread or a daemon across the wire.
//! * With **N partitions** the routed per-engine event streams depend only
//!   on the submission order, each engine is deterministic per its own
//!   config seed, ticks are lockstep, and merged listings are ordered by
//!   `(partition, task, worker)` — so the output is independent of thread
//!   scheduling *and* of which transport hosts each partition
//!   (`rdbsc-bench --bin remote_scale` proves a mixed local/remote topology
//!   byte-identical to the all-in-process one).
//!
//! ## Failure model
//!
//! A partition command failure (a daemon killed mid-tick, a dropped
//! connection) does **not** unwind the router. The failing slot is marked
//! unhealthy with a structured [`PartitionHealth`] record — partition id,
//! transport endpoint, and the [`PartitionError`] that killed it — and the
//! router degrades: commands skip unhealthy slots, events routed to a lost
//! region are counted in [`PartitionedEngine::events_dropped`] instead of
//! being shipped, and [`PartitionedEngine::unhealthy_partitions`] surfaces
//! the loss (the server exposes it as the `partitions_unhealthy` gauge on
//! `/metrics`). Serving continues on the surviving regions; answers for the
//! lost region are unavailable, not silently wrong — its tasks and workers
//! simply drop out of merged snapshots and listings. Restoring the lost
//! region (restart its daemon with `--data-dir` and let the WAL recover it,
//! see [`crate::wal`]) requires a new router today.
//!
//! A slot can instead be armed with a [`StandbyPromoter`] — a hot standby
//! that has been replaying the primary's shipped log (see [`crate::repl`]).
//! Then the first transport failure triggers **inline promotion**: the
//! promoter health-checks its standby, waits for replay to finish, seals
//! the stream and returns a fresh [`PartitionClient`] which replaces the
//! dead one in place. The slot never goes unhealthy; the round that
//! observed the failure skips the promoted slot (the successor never saw
//! that round's `begin_tick` — a per-slot generation counter guards every
//! deferred completion) and the next round serves from the standby, whose
//! state is digest-identical to the primary's acknowledged prefix. Each
//! promotion is recorded in [`PartitionedEngine::promotions`]. Promotion is
//! one-shot per slot: a second failure degrades to the unhealthy path
//! above (automated re-seeding of a fresh standby is future work, see
//! ROADMAP).
//!
//! Known approximation: a task re-posted at a location in a *different*
//! partition is treated as withdraw-then-arrive (the old partition retires
//! it, commitments there are released); within one partition the engine's
//! own re-post semantics apply (see [`AssignmentEngine::tick`]).

use crate::engine::{AssignmentEngine, EngineEvent, EngineObjective, TickReport};
use crate::handle::EngineSnapshot;
use crate::protocol::{InProcessClient, PartitionClient, PartitionError, ProtocolStats};
use rdbsc_cluster::RegionPartition;
use rdbsc_geo::Rect;
use rdbsc_index::{MaintenanceCounters, SpatialIndex};
use rdbsc_model::valid_pairs::ValidPair;
use rdbsc_model::{Contribution, TaskId, Worker, WorkerId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The router's view of one known worker.
#[derive(Debug, Clone, Copy)]
struct WorkerEntry {
    /// The partition whose engine currently owns the worker.
    home: usize,
    /// Last-known full record (what a handoff re-registers on the far side).
    record: Worker,
    /// A `WorkerLeft` has been routed but not yet applied by a tick. The
    /// engine keeps the worker (and any commitment) until then, so commands
    /// arriving in the submit-to-tick window must still route to `home` —
    /// exactly like a plain engine whose queue holds the same pending leave.
    departed: bool,
}

/// One lost partition: which region, where it lived, and what killed it —
/// what [`PartitionedEngine::unhealthy_partitions`] reports and the server
/// renders under `partitions_unhealthy` on `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionHealth {
    /// The region index of the lost partition.
    pub partition: usize,
    /// The backend kind (`"in-process"` / `"http"`).
    pub kind: &'static str,
    /// The thread label or network address that stopped answering.
    pub endpoint: String,
    /// The first [`PartitionError`] observed on the slot, rendered.
    pub error: String,
}

/// How the router promotes a partition's configured standby when its
/// primary dies: the implementation health-checks the standby daemon, tells
/// it to seal its replication stream and start accepting commands, and
/// hands back a fresh [`PartitionClient`] attached to it
/// (`rdbsc-server::RemoteStandbyPromoter` is the wire implementation).
pub trait StandbyPromoter: Send {
    /// The standby's endpoint, for logs and the promotion record.
    fn endpoint(&self) -> String;

    /// Performs the promotion and returns a client attached to the
    /// successor. An error leaves the slot on the ordinary unhealthy path.
    fn promote(&mut self) -> Result<Box<dyn PartitionClient>, String>;

    /// Stops the standby daemon when the topology shuts down without the
    /// promoter ever firing (best effort; default no-op).
    fn shutdown(&mut self) -> Result<(), String> {
        Ok(())
    }
}

/// One completed failover: which slot, which endpoints, and the transport
/// failure that triggered it — surfaced on `/metrics` next to
/// [`PartitionHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct PromotionRecord {
    /// The region index that failed over.
    pub partition: usize,
    /// The lost primary's endpoint.
    pub old_endpoint: String,
    /// The promoted standby's endpoint now serving the region.
    pub new_endpoint: String,
    /// The rendered [`PartitionError`] that triggered the failover.
    pub error: String,
}

/// One partition's transport identity plus its protocol counters — what the
/// router surfaces per region on `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionTransport {
    /// The region index.
    pub partition: usize,
    /// The backend kind (`"in-process"` / `"http"`).
    pub kind: &'static str,
    /// The thread label or network address.
    pub endpoint: String,
    /// The client's protocol counters at snapshot time.
    pub stats: ProtocolStats,
}

/// N region-local engines behind one location-routing façade, each reached
/// through a [`PartitionClient`] (see the [module docs](self) for the
/// architecture, the handoff protocol and the determinism contract).
///
/// The API deliberately mirrors the single engine's — `submit`, `tick`,
/// `record_answer`, `committed_assignments` — so
/// [`crate::handle::EngineHandle`] can drive either interchangeably.
pub struct PartitionedEngine {
    partition: RegionPartition,
    clients: Vec<Box<dyn PartitionClient>>,
    /// Pending routed events, one buffer per partition, flushed as one
    /// submit command per partition at the end of every submit call —
    /// per-partition order is what determinism needs, and batching spares a
    /// protocol round trip per event on the ingestion hot path.
    outbox: Vec<Vec<EngineEvent>>,
    /// Each known worker's routing state.
    worker_home: HashMap<WorkerId, WorkerEntry>,
    /// Each known live task's partition (entries for auto-expired tasks
    /// linger until an explicit expire names them; the growth is bounded by
    /// the total tasks ever posted, like the engines' own retired maps).
    task_home: HashMap<TaskId, usize>,
    /// Workers currently en route somewhere, rebuilt exactly from the
    /// engines' own committed sets at every tick.
    committed: HashSet<WorkerId>,
    /// Boundary-crossing workers whose handoff waits for their commitment
    /// to clear. Ordered so the post-tick resolution is deterministic.
    pending_handoff: BTreeSet<WorkerId>,
    handoffs: u64,
    /// Per-slot health: `None` while the slot answers, the first observed
    /// failure once it stops (see the module docs' failure model).
    health: Vec<Option<PartitionHealth>>,
    /// Per-slot standby promoter, armed by [`Self::set_standby_promoter`]
    /// and consumed (one-shot) by the first transport failure on the slot.
    promoters: Vec<Option<Box<dyn StandbyPromoter>>>,
    /// Completed failovers, in order.
    promotions: Vec<PromotionRecord>,
    /// Per-slot client generation, bumped when a promotion swaps the
    /// client. Round-scoped completions (`finish_tick`, deferred pipelined
    /// submits) compare generations so a reply begun on the dead primary is
    /// never collected from its successor.
    client_gen: Vec<u64>,
    /// Events routed to a partition after it was marked unhealthy — dropped
    /// instead of shipped, and surfaced so operators can size the loss.
    events_dropped: u64,
    /// Submits dispatched to pipelining clients whose replies are still on
    /// the wire: `(slot, batch_len, client_gen)`. A pipelining transport preserves
    /// per-connection order, so the router leaves the submit unconfirmed,
    /// streams the same slot's tick command behind it, and collects both
    /// replies together — one round trip per round instead of two. At most
    /// one entry per slot (the depth cap): the next dispatch to a slot
    /// collects the previous reply first.
    pending_submits: Vec<(usize, u64, u64)>,
    /// The most recent tick time (what the graceful-shutdown drain tick
    /// runs at).
    last_now: f64,
    /// The trace id of the most recent tick (`0` before the first one) —
    /// what `/debug/spans` looks up to show the last round's span tree.
    last_trace: u64,
    /// Set once [`Self::shutdown`] has run; commands after it are bugs.
    shut: bool,
}

impl PartitionedEngine {
    /// Wraps one protocol client per region. Panics unless
    /// `clients.len() == partition.num_regions()`.
    pub fn new(partition: RegionPartition, clients: Vec<Box<dyn PartitionClient>>) -> Self {
        assert_eq!(
            clients.len(),
            partition.num_regions(),
            "one partition client per region required"
        );
        let outbox = (0..clients.len()).map(|_| Vec::new()).collect();
        let health = (0..clients.len()).map(|_| None).collect();
        let promoters = (0..clients.len()).map(|_| None).collect();
        let client_gen = vec![0; clients.len()];
        Self {
            partition,
            clients,
            outbox,
            worker_home: HashMap::new(),
            task_home: HashMap::new(),
            committed: HashSet::new(),
            pending_handoff: BTreeSet::new(),
            handoffs: 0,
            health,
            promoters,
            promotions: Vec::new(),
            client_gen,
            events_dropped: 0,
            pending_submits: Vec::new(),
            last_now: 0.0,
            last_trace: 0,
            shut: false,
        }
    }

    /// Builds one in-process engine per region with `make_index` supplying
    /// each region's spatial index (over the region rectangle) and a shared
    /// engine configuration — every partition runs the same config,
    /// including the seed, which is what makes the single-partition case
    /// byte-identical to a plain engine.
    pub fn build<I, F>(
        partition: RegionPartition,
        config: crate::engine::EngineConfig,
        mut make_index: F,
    ) -> Self
    where
        I: SpatialIndex + 'static,
        F: FnMut(Rect) -> I,
    {
        let clients = (0..partition.num_regions())
            .map(|i| {
                let engine =
                    AssignmentEngine::new(make_index(partition.region_rect(i)), config.clone());
                Box::new(InProcessClient::spawn(i, engine)) as Box<dyn PartitionClient>
            })
            .collect();
        Self::new(partition, clients)
    }

    /// Number of partitions (= protocol clients).
    pub fn num_partitions(&self) -> usize {
        self.clients.len()
    }

    /// The region rectangles, in partition order.
    pub fn regions(&self) -> Vec<Rect> {
        (0..self.partition.num_regions())
            .map(|i| self.partition.region_rect(i))
            .collect()
    }

    /// The region partition the router uses.
    pub fn region_partition(&self) -> &RegionPartition {
        &self.partition
    }

    /// Cross-partition worker handoffs performed so far.
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// The trace id the most recent [`Self::tick`] ran under (`0` before
    /// the first tick). Every partition's spans for that round carry this
    /// id — [`rdbsc_obs::collect_spans`] reassembles the cross-partition
    /// span tree from it.
    pub fn last_trace(&self) -> u64 {
        self.last_trace
    }

    /// Each partition's transport identity and protocol counters, in
    /// partition order.
    pub fn transport_stats(&self) -> Vec<PartitionTransport> {
        self.clients
            .iter()
            .enumerate()
            .map(|(i, client)| PartitionTransport {
                partition: i,
                kind: client.kind(),
                endpoint: client.endpoint(),
                stats: client.counters().stats(),
            })
            .collect()
    }

    /// A partition command failed. With a standby armed on the slot, the
    /// failover path runs right here: the promoter (one-shot) promotes the
    /// standby and the successor client takes the slot — the slot never
    /// goes unhealthy, and the generation bump keeps this round's
    /// outstanding completions away from the successor (it joins at the
    /// next command). Otherwise — no standby, or the promotion itself
    /// failed — record the loss (first error wins) and degrade: later
    /// commands skip the slot (see the module docs' failure model).
    /// Idempotent per slot.
    fn mark_unhealthy(&mut self, slot: usize, error: PartitionError) {
        if self.health[slot].is_some() {
            return;
        }
        if let Some(mut promoter) = self.promoters[slot].take() {
            let old_endpoint = self.clients[slot].endpoint();
            let standby = promoter.endpoint();
            eprintln!(
                "partition {slot} ({old_endpoint}) lost: {error} — promoting standby {standby}"
            );
            match promoter.promote() {
                Ok(client) => {
                    let new_endpoint = client.endpoint();
                    self.clients[slot] = client;
                    self.client_gen[slot] += 1;
                    eprintln!(
                        "partition {slot} failover complete: {new_endpoint} serves the region"
                    );
                    self.promotions.push(PromotionRecord {
                        partition: slot,
                        old_endpoint,
                        new_endpoint,
                        error: error.to_string(),
                    });
                    return;
                }
                Err(e) => {
                    eprintln!("partition {slot} standby {standby} promotion failed: {e}");
                }
            }
        }
        let record = PartitionHealth {
            partition: slot,
            kind: self.clients[slot].kind(),
            endpoint: self.clients[slot].endpoint(),
            error: error.to_string(),
        };
        eprintln!(
            "partition {slot} ({}) lost: {} — continuing on surviving regions",
            record.endpoint, record.error
        );
        self.health[slot] = Some(record);
    }

    /// Arms `slot` with a standby promoter: the first transport failure on
    /// the slot promotes the standby instead of marking the region lost.
    /// One-shot — a second failure (or a failed promotion) falls back to
    /// the ordinary unhealthy path until re-armed.
    pub fn set_standby_promoter(&mut self, slot: usize, promoter: Box<dyn StandbyPromoter>) {
        assert!(slot < self.clients.len(), "no such partition slot");
        self.promoters[slot] = Some(promoter);
    }

    /// Completed failovers, in the order they happened.
    pub fn promotions(&self) -> &[PromotionRecord] {
        &self.promotions
    }

    /// Slots with a standby currently armed.
    pub fn standbys_armed(&self) -> usize {
        self.promoters.iter().flatten().count()
    }

    fn healthy(&self, slot: usize) -> bool {
        self.health[slot].is_none()
    }

    /// The partitions currently marked lost, in partition order (empty when
    /// the topology is fully healthy).
    pub fn unhealthy_partitions(&self) -> Vec<PartitionHealth> {
        self.health.iter().flatten().cloned().collect()
    }

    /// Events routed to a lost partition and dropped instead of shipped.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Buffers a routed event for `slot`; [`Self::flush_outbox`] ships it.
    fn send(&mut self, slot: usize, event: EngineEvent) {
        self.outbox[slot].push(event);
    }

    /// Ships every buffered event, one split-phase submit per partition:
    /// all dispatches go out before any completion is awaited, so remote
    /// partitions ingest concurrently. For pipelining clients the
    /// completion is deferred entirely ([`Self::pending_submits`]): the
    /// reply is collected just before the slot's next command dispatch, so
    /// a submit-then-tick round writes both commands before reading
    /// anything.
    fn flush_outbox(&mut self) {
        let mut inflight = Vec::new();
        for slot in 0..self.outbox.len() {
            if self.outbox[slot].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.outbox[slot]);
            if !self.healthy(slot) {
                self.events_dropped += batch.len() as u64;
                continue;
            }
            // Depth cap: collect the slot's previous pipelined submit (if
            // any) before dispatching the next one.
            self.finish_pending_submit(slot);
            if !self.healthy(slot) {
                self.events_dropped += batch.len() as u64;
                continue;
            }
            let batch_len = batch.len() as u64;
            if let Err(e) = self.clients[slot].begin_submit(batch) {
                self.mark_unhealthy(slot, e);
                self.events_dropped += batch_len;
                continue;
            }
            if self.clients[slot].supports_pipelining() {
                self.pending_submits
                    .push((slot, batch_len, self.client_gen[slot]));
            } else {
                inflight.push((slot, batch_len));
            }
        }
        for (slot, batch_len) in inflight {
            if let Err(e) = self.clients[slot].finish_submit() {
                // Unconfirmed means unapplied as far as the router can
                // know: count the batch lost.
                self.mark_unhealthy(slot, e);
                self.events_dropped += batch_len;
            }
        }
    }

    /// Collects `slot`'s deferred pipelined submit reply, if one is
    /// outstanding, with the same loss accounting as an eager completion.
    /// A generation mismatch means a promotion replaced the client since
    /// the dispatch: the batch died with the primary and is counted lost.
    fn finish_pending_submit(&mut self, slot: usize) {
        let Some(pos) = self.pending_submits.iter().position(|(s, _, _)| *s == slot) else {
            return;
        };
        let (_, batch_len, gen) = self.pending_submits.remove(pos);
        if self.client_gen[slot] != gen {
            self.events_dropped += batch_len;
            return;
        }
        if let Err(e) = self.clients[slot].finish_submit() {
            self.mark_unhealthy(slot, e);
            self.events_dropped += batch_len;
        }
    }

    /// Collects every outstanding pipelined submit reply.
    fn finish_all_pending_submits(&mut self) {
        for (slot, batch_len, gen) in std::mem::take(&mut self.pending_submits) {
            if self.client_gen[slot] != gen {
                self.events_dropped += batch_len;
                continue;
            }
            if let Err(e) = self.clients[slot].finish_submit() {
                self.mark_unhealthy(slot, e);
                self.events_dropped += batch_len;
            }
        }
    }

    /// Detaches `id` from `from` and re-registers `record` with the
    /// partition owning its current location, via the engines' ordinary
    /// leave/check-in machinery.
    fn handoff(&mut self, id: WorkerId, from: usize, record: Worker) {
        let target = self.partition.partition_of(record.location);
        debug_assert_ne!(target, from);
        self.worker_home.insert(
            id,
            WorkerEntry {
                home: target,
                record,
                departed: false,
            },
        );
        self.handoffs += 1;
        self.send(from, EngineEvent::WorkerLeft(id));
        self.send(target, EngineEvent::WorkerCheckIn(record));
    }

    /// Routes one event into the outbox (shipped by [`Self::flush_outbox`]).
    fn route(&mut self, event: EngineEvent) {
        match event {
            EngineEvent::TaskArrived(task) => {
                let target = self.partition.partition_of(task.location);
                if let Some(old) = self.task_home.insert(task.id, target) {
                    if old != target {
                        // Cross-partition re-post: withdraw from the old
                        // region before arriving fresh in the new one.
                        self.send(old, EngineEvent::TaskExpired(task.id));
                    }
                }
                self.send(target, EngineEvent::TaskArrived(task));
            }
            EngineEvent::TaskExpired(id) => {
                // Unknown ids go to partition 0, where the expire is the
                // same no-op a plain engine would apply (and the event
                // accounting stays identical in the 1-partition case).
                let target = self.task_home.remove(&id).unwrap_or(0);
                self.send(target, EngineEvent::TaskExpired(id));
            }
            EngineEvent::WorkerCheckIn(worker) => {
                let target = self.partition.partition_of(worker.location);
                match self.worker_home.get(&worker.id).copied() {
                    // A departed entry is routing history, not residency:
                    // the queued leave clears any commitment before this
                    // check-in applies, so register fresh at the target.
                    Some(entry) if entry.departed => {
                        self.worker_home.insert(
                            worker.id,
                            WorkerEntry {
                                home: target,
                                record: worker,
                                departed: false,
                            },
                        );
                        self.send(target, EngineEvent::WorkerCheckIn(worker));
                    }
                    Some(entry) if entry.home == target => {
                        self.pending_handoff.remove(&worker.id);
                        self.worker_home.insert(
                            worker.id,
                            WorkerEntry {
                                record: worker,
                                ..entry
                            },
                        );
                        self.send(entry.home, EngineEvent::WorkerCheckIn(worker));
                    }
                    Some(entry) if self.committed.contains(&worker.id) => {
                        // Re-registration while en route: the engine keeps
                        // the commitment, so the worker stays with it and
                        // the handoff waits.
                        self.pending_handoff.insert(worker.id);
                        self.worker_home.insert(
                            worker.id,
                            WorkerEntry {
                                record: worker,
                                ..entry
                            },
                        );
                        self.send(entry.home, EngineEvent::WorkerCheckIn(worker));
                    }
                    Some(entry) => {
                        self.pending_handoff.remove(&worker.id);
                        self.handoff(worker.id, entry.home, worker);
                    }
                    None => {
                        self.worker_home.insert(
                            worker.id,
                            WorkerEntry {
                                home: target,
                                record: worker,
                                departed: false,
                            },
                        );
                        self.send(target, EngineEvent::WorkerCheckIn(worker));
                    }
                }
            }
            EngineEvent::WorkerMoved(id, to) => {
                let target = self.partition.partition_of(to);
                match self.worker_home.get(&id).copied() {
                    // Departed: the engine applies the queued leave first,
                    // making this move its usual absent-worker no-op.
                    Some(entry) if entry.departed => {
                        self.send(entry.home, EngineEvent::WorkerMoved(id, to));
                    }
                    Some(mut entry) => {
                        entry.record.location = to;
                        if entry.home == target {
                            self.pending_handoff.remove(&id);
                            self.worker_home.insert(id, entry);
                            self.send(entry.home, EngineEvent::WorkerMoved(id, to));
                        } else if self.committed.contains(&id) {
                            // En route: stays with its task's partition (the
                            // index clamps the position onto border cells);
                            // hand off once the commitment clears.
                            self.pending_handoff.insert(id);
                            self.worker_home.insert(id, entry);
                            self.send(entry.home, EngineEvent::WorkerMoved(id, to));
                        } else {
                            self.pending_handoff.remove(&id);
                            self.handoff(id, entry.home, entry.record);
                        }
                    }
                    // Unknown worker: forward to the target partition where
                    // the move is the plain engine's no-op.
                    None => self.send(target, EngineEvent::WorkerMoved(id, to)),
                }
            }
            EngineEvent::WorkerLeft(id) => {
                // Route the leave to the worker's home but keep the entry
                // (tombstoned) until the next tick applies it: a plain
                // engine only removes the worker at the tick, so commands
                // in the submit-to-tick window (an answer delivery, say)
                // must still reach the engine that holds the commitment.
                self.pending_handoff.remove(&id);
                let target = match self.worker_home.get_mut(&id) {
                    Some(entry) => {
                        entry.departed = true;
                        entry.home
                    }
                    None => 0, // no-op there; keeps 1-partition accounting identical
                };
                self.send(target, EngineEvent::WorkerLeft(id));
            }
        }
    }

    /// Queues one event, routed by location, for the next tick.
    pub fn submit(&mut self, event: EngineEvent) {
        self.route(event);
        self.flush_outbox();
    }

    /// Queues many events (in order) for the next tick, shipping one
    /// batched submit per partition.
    pub fn submit_all<E: IntoIterator<Item = EngineEvent>>(&mut self, events: E) {
        for event in events {
            self.route(event);
        }
        self.flush_outbox();
    }

    /// Runs one lockstep engine round at time `now` on **every** partition
    /// concurrently (tick commands are dispatched to all clients before any
    /// reply is collected), merges the per-partition reports in partition
    /// order, refreshes the router's committed-worker view and resolves any
    /// deferred handoffs whose commitment has cleared.
    pub fn tick(&mut self, now: f64) -> TickReport {
        // Every round gets a fresh trace id; the clients propagate it to
        // their partitions (thread or daemon), whose spans all carry it —
        // one id correlates the whole fan-out. Observational only.
        let trace = rdbsc_obs::next_trace_id();
        self.last_trace = trace;
        let root = rdbsc_obs::span(trace, 0, "router.tick");
        let fanout = rdbsc_obs::span(trace, root.id(), "router.fanout");
        let mut ticking = Vec::with_capacity(self.clients.len());
        for slot in 0..self.clients.len() {
            if !self.healthy(slot) {
                continue;
            }
            self.clients[slot].set_trace(trace);
            match self.clients[slot].begin_tick(now) {
                Ok(()) => ticking.push((slot, self.client_gen[slot])),
                Err(e) => self.mark_unhealthy(slot, e),
            }
        }
        // Pipelined submit replies are collected only now, after the tick
        // fan-out: each connection's submit reply precedes its tick reply
        // (FIFO), and deferring the read this far means the submit round
        // trips overlapped with every partition's solve.
        self.finish_all_pending_submits();
        let mut results = Vec::with_capacity(ticking.len());
        for (slot, gen) in ticking {
            if !self.healthy(slot) {
                continue;
            }
            // A generation bump means a promotion swapped the client while
            // this round was in flight: the successor never received this
            // round's begin_tick, so there is no reply to collect.
            if self.client_gen[slot] != gen {
                continue;
            }
            match self.clients[slot].finish_tick() {
                Ok(reply) => results.push(reply),
                Err(e) => self.mark_unhealthy(slot, e),
            }
        }
        drop(fanout);
        self.last_now = now;

        let merge_span = rdbsc_obs::span(trace, root.id(), "router.merge");
        self.committed.clear();
        let mut merged = TickReport {
            now,
            events_applied: 0,
            tasks_expired: 0,
            num_shards: 0,
            largest_shard_pairs: 0,
            strategies: Vec::new(),
            new_assignments: Vec::new(),
            solve_seconds: 0.0,
            shard_solve_seconds: Vec::new(),
            index_maintenance: MaintenanceCounters::default(),
            stages: rdbsc_obs::StageTimings::default(),
        };
        for reply in results {
            let report = reply.report;
            merged.events_applied += report.events_applied;
            merged.tasks_expired += report.tasks_expired;
            merged.num_shards += report.num_shards;
            merged.largest_shard_pairs =
                merged.largest_shard_pairs.max(report.largest_shard_pairs);
            merged.strategies.extend(report.strategies);
            merged.new_assignments.extend(report.new_assignments);
            // Partitions solve concurrently: the round's wall time is the
            // slowest partition's, not the sum.
            merged.solve_seconds = merged.solve_seconds.max(report.solve_seconds);
            merged.stages.merge_max(&report.stages);
            merged
                .shard_solve_seconds
                .extend(report.shard_solve_seconds);
            merged.index_maintenance.relocations += report.index_maintenance.relocations;
            merged.index_maintenance.cells_repaired +=
                report.index_maintenance.cells_repaired;
            merged.index_maintenance.tcell_rebuilds +=
                report.index_maintenance.tcell_rebuilds;
            self.committed.extend(reply.committed);
        }

        // Departed tombstones have served their purpose: every routed
        // leave was in its engine's queue before this tick, so the workers
        // are gone now and the routing entries can go too.
        self.worker_home.retain(|_, entry| !entry.departed);

        // Deferred handoffs: commitments may have cleared (answer banked
        // before the tick, task expired during it). BTreeSet order makes the
        // resolution sequence deterministic.
        let pending: Vec<WorkerId> = self.pending_handoff.iter().copied().collect();
        for id in pending {
            if self.committed.contains(&id) {
                continue;
            }
            self.pending_handoff.remove(&id);
            let Some(entry) = self.worker_home.get(&id).copied() else {
                continue;
            };
            if self.partition.partition_of(entry.record.location) != entry.home {
                self.handoff(id, entry.home, entry.record);
            }
        }
        self.flush_outbox();
        drop(merge_span);
        merged
    }

    /// Does any partition have pending events or live tasks? (The partitioned
    /// analogue of the idle check behind
    /// [`crate::handle::EngineHandle::tick_if_active`]; ticks stay lockstep,
    /// so one active partition ticks all of them.)
    pub fn is_active(&mut self) -> bool {
        for slot in 0..self.clients.len() {
            if !self.healthy(slot) {
                continue;
            }
            match self.clients[slot].is_active() {
                Ok(true) => return true,
                Ok(false) => {}
                Err(e) => self.mark_unhealthy(slot, e),
            }
        }
        false
    }

    /// Banks an en-route worker's answer in its partition; a now-free
    /// boundary-crossing worker is immediately handed off to the partition
    /// of its last reported position. Returns `false` when the worker was
    /// not en route.
    pub fn record_answer(&mut self, worker: WorkerId, contribution: Contribution) -> bool {
        let Some(entry) = self.worker_home.get(&worker).copied() else {
            return false;
        };
        if !self.healthy(entry.home) {
            return false;
        }
        let banked = match self.clients[entry.home].record_answer(worker, contribution) {
            Ok(banked) => banked,
            Err(e) => {
                self.mark_unhealthy(entry.home, e);
                return false;
            }
        };
        if banked {
            self.committed.remove(&worker);
            if self.pending_handoff.remove(&worker)
                && self.partition.partition_of(entry.record.location) != entry.home
            {
                self.handoff(worker, entry.home, entry.record);
                self.flush_outbox();
            }
        }
        banked
    }

    /// Releases an en-route worker (gave up / rejected) in its partition,
    /// performing a deferred handoff if one is waiting on it.
    pub fn release_worker(&mut self, worker: WorkerId) {
        let Some(entry) = self.worker_home.get(&worker).copied() else {
            return;
        };
        if !self.healthy(entry.home) {
            return;
        }
        if let Err(e) = self.clients[entry.home].release_worker(worker) {
            self.mark_unhealthy(entry.home, e);
            return;
        }
        self.committed.remove(&worker);
        if self.pending_handoff.remove(&worker)
            && self.partition.partition_of(entry.record.location) != entry.home
        {
            self.handoff(worker, entry.home, entry.record);
            self.flush_outbox();
        }
    }

    /// Is the worker currently en route (in any partition)?
    pub fn is_committed(&self, worker: WorkerId) -> bool {
        self.committed.contains(&worker)
    }

    /// The standing committed pairs across all partitions, ordered by
    /// `(partition, task, worker)` — partition-major concatenation of the
    /// per-engine sorted listings.
    pub fn committed_assignments(&mut self) -> Vec<ValidPair> {
        let mut merged = Vec::new();
        for slot in 0..self.clients.len() {
            if !self.healthy(slot) {
                continue;
            }
            match self.clients[slot].assignments() {
                Ok(pairs) => merged.extend(pairs),
                Err(e) => self.mark_unhealthy(slot, e),
            }
        }
        merged
    }

    /// One consistent snapshot per surviving partition, in partition order
    /// (lost partitions are absent — see the module docs' failure model).
    pub fn partition_snapshots(&mut self) -> Vec<EngineSnapshot> {
        let mut snapshots = Vec::with_capacity(self.clients.len());
        for slot in 0..self.clients.len() {
            if !self.healthy(slot) {
                continue;
            }
            match self.clients[slot].snapshot() {
                Ok(snapshot) => snapshots.push(snapshot),
                Err(e) => self.mark_unhealthy(slot, e),
            }
        }
        snapshots
    }

    /// The merged serving snapshot: counters summed, objective folded
    /// (minimum reliability over covered partitions, diversity summed).
    pub fn snapshot(&mut self) -> EngineSnapshot {
        merge_snapshots(&self.partition_snapshots())
    }

    /// The partitions whose index currently holds the worker. The handoff
    /// invariant says this has at most one element once queues are drained;
    /// the property tests assert exactly that.
    pub fn partitions_holding(&mut self, id: WorkerId) -> Vec<usize> {
        let mut holding = Vec::new();
        for slot in 0..self.clients.len() {
            if !self.healthy(slot) {
                continue;
            }
            match self.clients[slot].has_worker(id) {
                Ok(true) => holding.push(slot),
                Ok(false) => {}
                Err(e) => self.mark_unhealthy(slot, e),
            }
        }
        holding
    }

    /// Graceful shutdown with drain ordering: ship any buffered routed
    /// events, run one final drain tick so queued events apply and deferred
    /// handoffs resolve, capture the final merged snapshot, then drain and
    /// stop every partition (a daemon answers 503 to commands after its
    /// drain, then exits on the shutdown command). Returns the final
    /// snapshot so callers can assert nothing queued was dropped.
    ///
    /// # Panics
    ///
    /// If called twice.
    pub fn shutdown(&mut self) -> EngineSnapshot {
        assert!(!self.shut, "PartitionedEngine::shutdown called twice");
        self.flush_outbox();
        self.finish_all_pending_submits();
        if self.is_active() {
            // The drain tick: applies whatever the queues hold and fires
            // any deferred handoffs whose commitment has cleared. Re-using
            // the last tick time keeps the engines' monotone-time rule.
            self.tick(self.last_now);
        }
        let snapshot = self.snapshot();
        for slot in 0..self.clients.len() {
            if !self.healthy(slot) {
                continue;
            }
            // Best effort from here on: an already-dead partition must not
            // stop the others from being released.
            if let Err(e) = self.clients[slot].drain() {
                eprintln!("partition {slot} drain failed: {e}");
            }
            if let Err(e) = self.clients[slot].shutdown() {
                eprintln!("partition {slot} shutdown failed: {e}");
            }
        }
        // Standbys that were never promoted still hold live processes or
        // threads; release them too (best effort, same as above).
        for (slot, promoter) in self.promoters.iter_mut().enumerate() {
            if let Some(promoter) = promoter {
                if let Err(e) = promoter.shutdown() {
                    eprintln!("partition {slot} standby shutdown failed: {e}");
                }
            }
        }
        self.shut = true;
        snapshot
    }
}

/// Folds per-partition snapshots into one platform-wide view (lockstep
/// ticks, summed counters, merged objective).
pub fn merge_snapshots(parts: &[EngineSnapshot]) -> EngineSnapshot {
    let mut merged = EngineSnapshot {
        now: parts.first().map(|p| p.now).unwrap_or(0.0),
        ticks: parts.first().map(|p| p.ticks).unwrap_or(0),
        events_applied: 0,
        pending_events: 0,
        live_tasks: 0,
        live_workers: 0,
        committed_workers: 0,
        banked_answers: 0,
        total_assignments: 0,
        objective: EngineObjective {
            min_reliability: f64::INFINITY,
            total_std: 0.0,
            covered_tasks: 0,
        },
        backend: parts.first().map(|p| p.backend).unwrap_or("none"),
        index_counters: MaintenanceCounters::default(),
        wal: None,
    };
    for p in parts {
        merged.events_applied += p.events_applied;
        merged.pending_events += p.pending_events;
        merged.live_tasks += p.live_tasks;
        merged.live_workers += p.live_workers;
        merged.committed_workers += p.committed_workers;
        merged.banked_answers += p.banked_answers;
        merged.total_assignments += p.total_assignments;
        merged.objective.total_std += p.objective.total_std;
        merged.objective.covered_tasks += p.objective.covered_tasks;
        if p.objective.covered_tasks > 0 {
            merged.objective.min_reliability = merged
                .objective
                .min_reliability
                .min(p.objective.min_reliability);
        }
        merged.index_counters.relocations += p.index_counters.relocations;
        merged.index_counters.cells_repaired += p.index_counters.cells_repaired;
        merged.index_counters.tcell_rebuilds += p.index_counters.tcell_rebuilds;
        if let Some(w) = p.wal {
            // Durability counters sum across partitions; the checkpoint
            // epoch reported is the most recent one (with lockstep ticks
            // and a shared interval it is every partition's).
            let m = merged.wal.get_or_insert_with(Default::default);
            m.segments += w.segments;
            m.segments_retired += w.segments_retired;
            m.bytes_appended += w.bytes_appended;
            m.records_appended += w.records_appended;
            m.fsyncs += w.fsyncs;
            m.checkpoints += w.checkpoints;
            m.last_checkpoint_tick = m.last_checkpoint_tick.max(w.last_checkpoint_tick);
            m.recovered_records += w.recovered_records;
            m.recovered_checkpoint |= w.recovered_checkpoint;
        }
    }
    if merged.objective.covered_tasks == 0 {
        merged.objective.min_reliability = 1.0;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use rdbsc_cluster::RegionPartitioner;
    use rdbsc_geo::{AngleRange, Point};
    use rdbsc_index::geometry::GridGeometry;
    use rdbsc_index::GridIndex;
    use rdbsc_model::{Confidence, Task, TimeWindow};

    fn task(id: u32, x: f64, y: f64, start: f64, end: f64) -> Task {
        Task::new(
            TaskId(id),
            Point::new(x, y),
            TimeWindow::new(start, end).unwrap(),
        )
    }

    fn worker(id: u32, x: f64, y: f64, speed: f64) -> Worker {
        Worker::new(
            WorkerId(id),
            Point::new(x, y),
            speed,
            AngleRange::full(),
            Confidence::new(0.9).unwrap(),
        )
        .unwrap()
    }

    fn partitioned(n: usize) -> PartitionedEngine {
        let geometry = GridGeometry::new(Rect::unit(), 0.1);
        let partition = RegionPartitioner::uniform().split(geometry, n, &[]);
        PartitionedEngine::build(partition, EngineConfig::default(), |rect| {
            GridIndex::new(rect, 0.1)
        })
    }

    /// A two-sided script: tasks and workers in the left (x < 0.5) and right
    /// halves, matching a 2-way uniform split's vertical boundary.
    fn two_sided_events() -> Vec<EngineEvent> {
        let mut events = Vec::new();
        for i in 0..6u32 {
            let x = if i % 2 == 0 { 0.2 } else { 0.8 };
            events.push(EngineEvent::TaskArrived(task(i, x, 0.5, 0.0, 5.0)));
            events.push(EngineEvent::WorkerCheckIn(worker(i, x, 0.45, 0.3)));
        }
        events
    }

    #[test]
    fn single_partition_matches_plain_engine() {
        let mut plain = AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.1),
            EngineConfig::default(),
        );
        let mut split = partitioned(1);
        let events = two_sided_events();
        plain.submit_all(events.clone());
        split.submit_all(events);

        let a = plain.tick(0.0);
        let b = split.tick(0.0);
        assert_eq!(a.new_assignments, b.new_assignments);
        assert_eq!(a.events_applied, b.events_applied);
        assert_eq!(a.num_shards, b.num_shards);
        assert_eq!(a.strategies, b.strategies);
        assert_eq!(plain.committed_assignments(), split.committed_assignments());

        // Answers flow identically.
        let pair = a.new_assignments[0];
        assert!(plain.record_answer(pair.worker, pair.contribution));
        assert!(split.record_answer(pair.worker, pair.contribution));
        assert_eq!(
            plain.tick(0.5).new_assignments,
            split.tick(0.5).new_assignments
        );
        assert_eq!(split.handoffs(), 0);
    }

    #[test]
    fn events_route_to_the_owning_partition() {
        let mut split = partitioned(2);
        split.submit_all(two_sided_events());
        let report = split.tick(0.0);
        assert!(!report.new_assignments.is_empty());
        let snaps = split.partition_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].live_tasks, 3);
        assert_eq!(snaps[1].live_tasks, 3);
        assert_eq!(snaps[0].live_workers, 3);
        assert_eq!(snaps[1].live_workers, 3);
        let merged = split.snapshot();
        assert_eq!(merged.live_tasks, 6);
        assert_eq!(merged.live_workers, 6);
    }

    #[test]
    fn transport_stats_name_the_in_process_backend() {
        let mut split = partitioned(2);
        split.submit_all(two_sided_events());
        split.tick(0.0);
        let transports = split.transport_stats();
        assert_eq!(transports.len(), 2);
        for (i, t) in transports.iter().enumerate() {
            assert_eq!(t.partition, i);
            assert_eq!(t.kind, "in-process");
            assert_eq!(t.endpoint, format!("rdbsc-partition-{i}"));
            assert!(t.stats.requests >= 2, "submit + tick each count");
            assert_eq!(t.stats.bytes_sent, 0);
        }
    }

    #[test]
    fn free_worker_crossing_the_boundary_is_handed_off() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.2, 0.5, 0.3)));
        split.tick(0.0);
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![0]);

        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.8, 0.5)));
        split.tick(0.1);
        assert_eq!(split.handoffs(), 1);
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![1]);

        // A task near its new home is served by the new partition's engine.
        split.submit(EngineEvent::TaskArrived(task(0, 0.82, 0.5, 0.0, 5.0)));
        let report = split.tick(0.2);
        assert_eq!(report.new_assignments.len(), 1);
        assert_eq!(report.new_assignments[0].worker, WorkerId(0));
    }

    #[test]
    fn committed_worker_handoff_waits_for_the_answer() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 8.0)));
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.25, 0.5, 0.4)));
        let report = split.tick(0.0);
        assert_eq!(report.new_assignments.len(), 1);
        let pair = report.new_assignments[0];
        assert!(split.is_committed(pair.worker));

        // The committed worker reports from the far side of the boundary:
        // no handoff yet — the commitment pins it to partition 0.
        split.submit(EngineEvent::WorkerMoved(pair.worker, Point::new(0.8, 0.5)));
        split.tick(0.5);
        assert_eq!(split.handoffs(), 0);
        assert_eq!(split.partitions_holding(pair.worker), vec![0]);
        assert_eq!(split.committed_assignments().len(), 1);

        // The answer banks in partition 0 (where the task lives) and the
        // handoff fires immediately after.
        assert!(split.record_answer(pair.worker, pair.contribution));
        assert_eq!(split.handoffs(), 1);
        assert_eq!(split.snapshot().banked_answers, 1);
        split.tick(1.0);
        assert_eq!(split.partitions_holding(pair.worker), vec![1]);
        assert!(split.snapshot().objective.min_reliability > 0.0);
    }

    #[test]
    fn expiration_releases_and_then_hands_off() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 1.0)));
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.25, 0.5, 0.4)));
        let report = split.tick(0.0);
        assert_eq!(report.new_assignments.len(), 1);
        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.9, 0.5)));
        split.tick(0.5); // still committed, still partition 0
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![0]);

        // The task expires without an answer: the engine releases the
        // traveller and the post-tick resolution hands it off.
        let late = split.tick(2.0);
        assert_eq!(late.tasks_expired, 1);
        assert_eq!(split.handoffs(), 1);
        split.tick(2.1);
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![1]);
    }

    #[test]
    fn oscillation_between_ticks_settles_in_one_partition() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.2, 0.5, 0.3)));
        split.tick(0.0);
        // Two boundary crossings within one inter-tick window.
        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.8, 0.5)));
        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.2, 0.5)));
        split.tick(0.1);
        assert_eq!(split.handoffs(), 2);
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![0]);
        assert_eq!(split.snapshot().live_workers, 1);
    }

    #[test]
    fn answer_after_queued_leave_still_banks_like_the_plain_engine() {
        // A leave is only applied at the next tick; an answer delivered in
        // the submit-to-tick window must still reach the engine holding the
        // commitment — on one partition this must match the plain engine
        // byte for byte.
        let drive_plain = |mut engine: AssignmentEngine<GridIndex>| {
            engine.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 8.0)));
            engine.submit(EngineEvent::WorkerCheckIn(worker(0, 0.25, 0.5, 0.4)));
            let pair = engine.tick(0.0).new_assignments[0];
            engine.submit(EngineEvent::WorkerLeft(pair.worker));
            let banked = engine.record_answer(pair.worker, pair.contribution);
            engine.tick(0.5);
            (banked, engine.num_workers(), engine.num_banked_answers())
        };
        let plain = drive_plain(AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.1),
            EngineConfig::default(),
        ));
        assert_eq!(plain, (true, 0, 1), "plain engine banks, then removes");

        for partitions in [1, 2] {
            let mut split = partitioned(partitions);
            split.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 8.0)));
            split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.25, 0.5, 0.4)));
            let pair = split.tick(0.0).new_assignments[0];
            split.submit(EngineEvent::WorkerLeft(pair.worker));
            assert!(
                split.record_answer(pair.worker, pair.contribution),
                "{partitions}-partition answer in the leave window must bank"
            );
            split.tick(0.5);
            assert_eq!(split.snapshot().live_workers, 0);
            assert_eq!(split.snapshot().banked_answers, 1);
            assert!(split.partitions_holding(pair.worker).is_empty());
            // The tombstoned routing entry is cleaned up by the tick; a
            // later move is the usual unknown-worker no-op.
            split.submit(EngineEvent::WorkerMoved(pair.worker, Point::new(0.9, 0.5)));
            split.tick(1.0);
            assert!(split.partitions_holding(pair.worker).is_empty());
        }
    }

    #[test]
    fn worker_left_removes_everywhere() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.2, 0.5, 0.3)));
        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.8, 0.5)));
        split.submit(EngineEvent::WorkerLeft(WorkerId(0)));
        split.tick(0.0);
        assert!(split.partitions_holding(WorkerId(0)).is_empty());
        assert_eq!(split.snapshot().live_workers, 0);
    }

    #[test]
    fn cross_partition_task_repost_withdraws_the_old_copy() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 5.0)));
        split.tick(0.0);
        assert_eq!(split.partition_snapshots()[0].live_tasks, 1);
        split.submit(EngineEvent::TaskArrived(task(0, 0.8, 0.5, 0.0, 5.0)));
        split.tick(0.1);
        let snaps = split.partition_snapshots();
        assert_eq!(snaps[0].live_tasks, 0, "old copy withdrawn");
        assert_eq!(snaps[1].live_tasks, 1, "new copy lives right");
    }

    /// Delegates to an in-process partition until "killed", then answers
    /// every command with a transport error — the in-process analogue of a
    /// daemon dying mid-run.
    struct KillableClient {
        inner: InProcessClient,
        dead: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl KillableClient {
        fn fail(&self) -> Result<(), PartitionError> {
            if self.dead.load(std::sync::atomic::Ordering::SeqCst) {
                Err(PartitionError::Transport {
                    endpoint: self.inner.endpoint(),
                    detail: "connection refused (killed)".into(),
                })
            } else {
                Ok(())
            }
        }
    }

    impl PartitionClient for KillableClient {
        fn kind(&self) -> &'static str {
            self.inner.kind()
        }
        fn endpoint(&self) -> String {
            self.inner.endpoint()
        }
        fn counters(&self) -> std::sync::Arc<crate::protocol::ProtocolCounters> {
            self.inner.counters()
        }
        fn begin_submit(&mut self, events: Vec<EngineEvent>) -> Result<(), PartitionError> {
            self.fail()?;
            self.inner.begin_submit(events)
        }
        fn finish_submit(&mut self) -> Result<(), PartitionError> {
            self.fail()?;
            self.inner.finish_submit()
        }
        fn begin_tick(&mut self, now: f64) -> Result<(), PartitionError> {
            self.fail()?;
            self.inner.begin_tick(now)
        }
        fn finish_tick(&mut self) -> Result<crate::protocol::PartitionTick, PartitionError> {
            self.fail()?;
            self.inner.finish_tick()
        }
        fn record_answer(
            &mut self,
            worker: WorkerId,
            contribution: Contribution,
        ) -> Result<bool, PartitionError> {
            self.fail()?;
            self.inner.record_answer(worker, contribution)
        }
        fn release_worker(&mut self, worker: WorkerId) -> Result<(), PartitionError> {
            self.fail()?;
            self.inner.release_worker(worker)
        }
        fn assignments(&mut self) -> Result<Vec<ValidPair>, PartitionError> {
            self.fail()?;
            self.inner.assignments()
        }
        fn snapshot(&mut self) -> Result<EngineSnapshot, PartitionError> {
            self.fail()?;
            self.inner.snapshot()
        }
        fn is_active(&mut self) -> Result<bool, PartitionError> {
            self.fail()?;
            self.inner.is_active()
        }
        fn has_worker(&mut self, id: WorkerId) -> Result<bool, PartitionError> {
            self.fail()?;
            self.inner.has_worker(id)
        }
        fn drain(&mut self) -> Result<(), PartitionError> {
            self.fail()?;
            self.inner.drain()
        }
        fn shutdown(&mut self) -> Result<(), PartitionError> {
            self.fail()?;
            self.inner.shutdown()
        }
    }

    #[test]
    fn lost_partition_degrades_instead_of_panicking() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let geometry = GridGeometry::new(Rect::unit(), 0.1);
        let partition = RegionPartitioner::uniform().split(geometry, 2, &[]);
        let config = EngineConfig::default();
        let dead = Arc::new(AtomicBool::new(false));
        let clients: Vec<Box<dyn PartitionClient>> = (0..2)
            .map(|i| {
                let engine = AssignmentEngine::new(
                    GridIndex::new(partition.region_rect(i), 0.1),
                    config.clone(),
                );
                let inner = InProcessClient::spawn(i, engine);
                if i == 1 {
                    Box::new(KillableClient {
                        inner,
                        dead: Arc::clone(&dead),
                    }) as Box<dyn PartitionClient>
                } else {
                    Box::new(inner)
                }
            })
            .collect();
        let mut split = PartitionedEngine::new(partition, clients);

        split.submit_all(two_sided_events());
        let report = split.tick(0.0);
        assert!(report.new_assignments.len() >= 2, "both regions assign");
        assert!(split.unhealthy_partitions().is_empty());

        // Partition 1 dies mid-run: the next tick must not unwind.
        dead.store(true, Ordering::SeqCst);
        let report = split.tick(0.5);
        let lost = split.unhealthy_partitions();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].partition, 1);
        assert_eq!(lost[0].endpoint, "rdbsc-partition-1");
        assert!(lost[0].error.contains("connection refused"), "{}", lost[0].error);
        // The surviving region still reports (3 live tasks keep it active).
        assert!(split.is_active());
        assert_eq!(split.partition_snapshots().len(), 1);
        assert_eq!(split.snapshot().live_tasks, 3);
        let _ = report;

        // Events for the lost region are dropped and counted; the healthy
        // region keeps serving new work.
        split.submit(EngineEvent::TaskArrived(task(10, 0.8, 0.5, 0.0, 9.0)));
        split.submit(EngineEvent::TaskArrived(task(11, 0.2, 0.2, 0.0, 9.0)));
        split.submit(EngineEvent::WorkerCheckIn(worker(11, 0.2, 0.25, 0.4)));
        let report = split.tick(1.0);
        assert_eq!(split.events_dropped(), 1);
        assert!(report
            .new_assignments
            .iter()
            .any(|p| p.worker == WorkerId(11)), "surviving region assigns");
        assert_eq!(split.unhealthy_partitions().len(), 1, "first error wins, no duplicates");

        // Shutdown stays graceful: drains the survivor, skips the corpse.
        let final_snapshot = split.shutdown();
        assert_eq!(final_snapshot.pending_events, 0);
    }

    /// Hands out a pre-built standby client when promoted; the in-process
    /// analogue of `rdbsc-server::RemoteStandbyPromoter`.
    struct FakePromoter {
        slot: usize,
        standby: Option<InProcessClient>,
        fail: bool,
        shut: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl StandbyPromoter for FakePromoter {
        fn endpoint(&self) -> String {
            format!("standby-{}", self.slot)
        }
        fn promote(&mut self) -> Result<Box<dyn PartitionClient>, String> {
            if self.fail {
                return Err("standby unreachable".into());
            }
            Ok(Box::new(self.standby.take().expect("promoted once")))
        }
        fn shutdown(&mut self) -> Result<(), String> {
            self.shut.store(true, std::sync::atomic::Ordering::SeqCst);
            if let Some(mut standby) = self.standby.take() {
                let _ = standby.drain();
                let _ = standby.shutdown();
            }
            Ok(())
        }
    }

    /// A 2-way split whose slot 1 is killable, with slot 1's routed
    /// sub-stream returned so a test can grow a byte-identical standby.
    fn killable_split() -> (
        PartitionedEngine,
        std::sync::Arc<std::sync::atomic::AtomicBool>,
        AssignmentEngine<GridIndex>,
    ) {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let geometry = GridGeometry::new(Rect::unit(), 0.1);
        let partition = RegionPartitioner::uniform().split(geometry, 2, &[]);
        let config = EngineConfig::default();
        let standby = AssignmentEngine::new(
            GridIndex::new(partition.region_rect(1), 0.1),
            config.clone(),
        );
        let dead = Arc::new(AtomicBool::new(false));
        let clients: Vec<Box<dyn PartitionClient>> = (0..2)
            .map(|i| {
                let engine = AssignmentEngine::new(
                    GridIndex::new(partition.region_rect(i), 0.1),
                    config.clone(),
                );
                let inner = InProcessClient::spawn(i, engine);
                if i == 1 {
                    Box::new(KillableClient {
                        inner,
                        dead: Arc::clone(&dead),
                    }) as Box<dyn PartitionClient>
                } else {
                    Box::new(inner)
                }
            })
            .collect();
        (PartitionedEngine::new(partition, clients), dead, standby)
    }

    #[test]
    fn transport_failure_promotes_the_armed_standby() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let (mut split, dead, standby) = killable_split();

        // The standby replays slot 1's routed sub-stream through the same
        // protocol methods a real follower applies shipped records with —
        // the in-process stand-in for log shipping. Determinism makes it
        // byte-identical to the primary by construction.
        let mut sub = Vec::new();
        for i in [1u32, 3, 5] {
            sub.push(EngineEvent::TaskArrived(task(i, 0.8, 0.5, 0.0, 5.0)));
            sub.push(EngineEvent::WorkerCheckIn(worker(i, 0.8, 0.45, 0.3)));
        }
        let mut standby = InProcessClient::spawn(1, standby);
        standby.begin_submit(sub).unwrap();
        standby.finish_submit().unwrap();
        standby.begin_tick(0.0).unwrap();
        standby.finish_tick().unwrap();

        let shut = Arc::new(AtomicBool::new(false));
        split.set_standby_promoter(
            1,
            Box::new(FakePromoter {
                slot: 1,
                standby: Some(standby),
                fail: false,
                shut: Arc::clone(&shut),
            }),
        );
        assert_eq!(split.standbys_armed(), 1);

        split.submit_all(two_sided_events());
        split.tick(0.0);
        let acknowledged = split.partition_snapshots()[1].clone();

        // The primary dies mid-run: the next tick promotes inline instead
        // of degrading. The promoted slot skips the detection round (its
        // begin_tick never happened), so its state is still exactly the
        // acknowledged pre-kill snapshot.
        dead.store(true, Ordering::SeqCst);
        split.tick(0.5);
        assert!(split.unhealthy_partitions().is_empty(), "slot stayed healthy");
        assert_eq!(split.standbys_armed(), 0, "promotion is one-shot");
        let promotions = split.promotions();
        assert_eq!(promotions.len(), 1);
        assert_eq!(promotions[0].partition, 1);
        assert_eq!(promotions[0].old_endpoint, "rdbsc-partition-1");
        assert_eq!(promotions[0].new_endpoint, "rdbsc-partition-1");
        assert!(promotions[0].error.contains("connection refused"));
        assert_eq!(
            split.partition_snapshots()[1],
            acknowledged,
            "promoted standby serves the acknowledged state, bit for bit"
        );

        // The region keeps serving from the standby: new work routed right
        // of the boundary assigns there.
        split.submit(EngineEvent::TaskArrived(task(10, 0.85, 0.5, 0.0, 9.0)));
        split.submit(EngineEvent::WorkerCheckIn(worker(10, 0.85, 0.45, 0.4)));
        let report = split.tick(1.0);
        assert!(
            report.new_assignments.iter().any(|p| p.worker == WorkerId(10)),
            "promoted region assigns new work"
        );
        assert_eq!(split.events_dropped(), 0, "no events lost across failover");

        let final_snapshot = split.shutdown();
        assert_eq!(final_snapshot.pending_events, 0);
        assert!(!shut.load(Ordering::SeqCst), "fired promoter is not re-shut");
    }

    #[test]
    fn failed_promotion_falls_back_to_the_unhealthy_path() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let (mut split, dead, standby) = killable_split();
        drop(standby);
        let shut = Arc::new(AtomicBool::new(false));
        split.set_standby_promoter(
            1,
            Box::new(FakePromoter {
                slot: 1,
                standby: None,
                fail: true,
                shut: Arc::clone(&shut),
            }),
        );

        split.submit_all(two_sided_events());
        split.tick(0.0);
        dead.store(true, Ordering::SeqCst);
        split.tick(0.5);

        let lost = split.unhealthy_partitions();
        assert_eq!(lost.len(), 1, "failed promotion degrades, not panics");
        assert_eq!(lost[0].partition, 1);
        assert!(split.promotions().is_empty());
        assert_eq!(split.standbys_armed(), 0, "the attempt consumed the promoter");
        split.shutdown();
    }

    #[test]
    fn shutdown_releases_an_unfired_standby() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let (mut split, _dead, standby) = killable_split();
        let shut = Arc::new(AtomicBool::new(false));
        split.set_standby_promoter(
            1,
            Box::new(FakePromoter {
                slot: 1,
                standby: Some(InProcessClient::spawn(1, standby)),
                fail: false,
                shut: Arc::clone(&shut),
            }),
        );
        split.submit_all(two_sided_events());
        split.tick(0.0);
        split.shutdown();
        assert!(shut.load(Ordering::SeqCst), "armed standby was stopped");
    }

    #[test]
    fn graceful_shutdown_drains_queued_events_and_deferred_handoffs() {
        // The regression this locks in: a shutdown right after a submit
        // used to stop the engines with the events still queued — they were
        // never applied. The graceful path runs a final drain tick first.
        let mut split = partitioned(2);
        split.submit_all(two_sided_events());
        // Nothing has ticked yet: all 12 events are still queued.
        assert_eq!(split.snapshot().pending_events, 12);
        let final_snapshot = split.shutdown();
        assert_eq!(final_snapshot.pending_events, 0, "drain tick applied the queue");
        assert_eq!(final_snapshot.events_applied, 12);
        assert_eq!(final_snapshot.live_tasks, 6);
        assert_eq!(final_snapshot.live_workers, 6);

        // Deferred-handoff flush: a committed worker whose answer lands in
        // the submit-to-shutdown window is handed off by the drain tick.
        let mut split = partitioned(2);
        split.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 8.0)));
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.25, 0.5, 0.4)));
        let pair = split.tick(0.0).new_assignments[0];
        split.submit(EngineEvent::WorkerMoved(pair.worker, Point::new(0.8, 0.5)));
        split.tick(0.5); // commitment pins the worker left of the boundary
        assert!(split.record_answer(pair.worker, pair.contribution));
        assert_eq!(split.handoffs(), 1, "answer released the deferred handoff");
        let final_snapshot = split.shutdown();
        assert_eq!(final_snapshot.pending_events, 0, "handoff events were applied");
        assert_eq!(final_snapshot.banked_answers, 1);
        assert_eq!(final_snapshot.live_workers, 1);
    }
}
