//! Region-partitioned multi-engine serving.
//!
//! One [`AssignmentEngine`] owns the whole data space behind one lock — fine
//! for a single metro area, a ceiling for "heavy traffic from millions of
//! users". [`PartitionedEngine`] removes that ceiling by running **one
//! engine per spatial region on its own OS thread** and routing
//! [`EngineEvent`]s by location:
//!
//! ```text
//!                         ┌► partition 0 thread: AssignmentEngine over region 0
//!   events ──► router ────┼► partition 1 thread: AssignmentEngine over region 1
//!   (by location)         └► partition 2 thread: AssignmentEngine over region 2
//!                              ▲ ticks broadcast, solved concurrently,
//!                              └ reports merged in partition order
//! ```
//!
//! Regions come from [`rdbsc_cluster::RegionPartitioner`]: rectangular,
//! aligned to the grid cells of the index geometry, with either static
//! uniform boundaries or k-means-seeded data-driven ones.
//!
//! ## Cross-partition worker handoff
//!
//! Workers move; regions do not. When a [`EngineEvent::WorkerMoved`] (or a
//! re-[`EngineEvent::WorkerCheckIn`]) lands on the other side of a region
//! boundary, the router **hands the worker off** using the engines' existing
//! machinery: a [`EngineEvent::WorkerLeft`] detaches it from its old engine
//! and a [`EngineEvent::WorkerCheckIn`] (with the router's last-known worker
//! record at the new position) registers it with the new one. Two rules keep
//! the handoff loss-free:
//!
//! * **Committed workers stay put.** A worker en route to a task is serving
//!   that task's partition; tearing it out would drop the commitment. The
//!   handoff is *deferred*: the move is forwarded to the old engine (whose
//!   index clamps out-of-region positions onto its border cells) and the
//!   worker is handed off only once it delivers its answer, gives up, or is
//!   released by a task expiration — with its banked contribution staying in
//!   the partition of the task it answered.
//! * **Exactly-one residency.** Handoff enqueues the `WorkerLeft` and the
//!   `WorkerCheckIn` in the same inter-tick window, and every engine drains
//!   its queue at the next lockstep tick — so a worker is live in exactly
//!   one engine whenever any engine solves.
//!
//! ## Determinism contract
//!
//! * With **one partition** the router degenerates to a pass-through and the
//!   output (tick reports, assignments, snapshots) is **byte-identical** to
//!   a plain [`AssignmentEngine`] fed the same event stream.
//! * With **N partitions** the routed per-engine event streams depend only
//!   on the submission order, each engine is deterministic per its own
//!   config seed, ticks are lockstep, and merged listings are ordered by
//!   `(partition, task, worker)` — so the output is independent of thread
//!   scheduling.
//!
//! Known approximation: a task re-posted at a location in a *different*
//! partition is treated as withdraw-then-arrive (the old partition retires
//! it, commitments there are released); within one partition the engine's
//! own re-post semantics apply (see [`AssignmentEngine::tick`]).

use crate::engine::{AssignmentEngine, EngineEvent, EngineObjective, TickReport};
use crate::handle::EngineSnapshot;
use rdbsc_cluster::RegionPartition;
use rdbsc_geo::Rect;
use rdbsc_index::{MaintenanceCounters, SpatialIndex};
use rdbsc_model::valid_pairs::ValidPair;
use rdbsc_model::{Contribution, TaskId, Worker, WorkerId};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A command processed by one partition's engine thread.
enum Command {
    /// Queue events for the next tick.
    Submit(Vec<EngineEvent>),
    /// Run one engine round and reply with the report plus the engine's
    /// post-tick committed worker set (the router's handoff oracle).
    Tick {
        now: f64,
        reply: Sender<(TickReport, Vec<WorkerId>)>,
    },
    /// Bank an answer; replies whether the worker was en route.
    RecordAnswer {
        worker: WorkerId,
        contribution: Contribution,
        reply: Sender<bool>,
    },
    /// Release an en-route worker without banking.
    Release(WorkerId),
    /// Reply with the standing committed pairs, sorted by `(task, worker)`.
    Assignments(Sender<Vec<ValidPair>>),
    /// Reply with a consistent snapshot of this partition's state.
    Snapshot(Sender<EngineSnapshot>),
    /// Reply whether the partition has anything to do (pending events or
    /// live tasks).
    IsActive(Sender<bool>),
    /// Reply whether this partition's index holds the worker (test/debug
    /// residency probe).
    HasWorker(WorkerId, Sender<bool>),
    /// Exit the thread.
    Shutdown,
}

/// The per-partition engine thread: owns one [`AssignmentEngine`] plus the
/// same serving counters an [`crate::handle::EngineHandle`] keeps, so a
/// partition can answer snapshot queries on its own.
fn slot_loop<I: SpatialIndex>(mut engine: AssignmentEngine<I>, commands: Receiver<Command>) {
    let mut last_now = 0.0f64;
    let mut events_applied = 0u64;
    let mut total_assignments = 0u64;
    while let Ok(command) = commands.recv() {
        match command {
            Command::Submit(events) => engine.submit_all(events),
            Command::Tick { now, reply } => {
                let report = engine.tick(now);
                last_now = now;
                events_applied += report.events_applied as u64;
                total_assignments += report.new_assignments.len() as u64;
                let committed: Vec<WorkerId> = engine
                    .committed_assignments()
                    .iter()
                    .map(|p| p.worker)
                    .collect();
                let _ = reply.send((report, committed));
            }
            Command::RecordAnswer {
                worker,
                contribution,
                reply,
            } => {
                let _ = reply.send(engine.record_answer(worker, contribution));
            }
            Command::Release(worker) => engine.release_worker(worker),
            Command::Assignments(reply) => {
                let _ = reply.send(engine.committed_assignments());
            }
            Command::Snapshot(reply) => {
                let _ = reply.send(EngineSnapshot::capture(
                    &engine,
                    last_now,
                    events_applied,
                    total_assignments,
                ));
            }
            Command::IsActive(reply) => {
                let _ =
                    reply.send(engine.num_pending_events() > 0 || engine.num_tasks() > 0);
            }
            Command::HasWorker(id, reply) => {
                let _ = reply.send(engine.index().worker(id).is_some());
            }
            Command::Shutdown => return,
        }
    }
}

/// The router's view of one known worker.
#[derive(Debug, Clone, Copy)]
struct WorkerEntry {
    /// The partition whose engine currently owns the worker.
    home: usize,
    /// Last-known full record (what a handoff re-registers on the far side).
    record: Worker,
    /// A `WorkerLeft` has been routed but not yet applied by a tick. The
    /// engine keeps the worker (and any commitment) until then, so commands
    /// arriving in the submit-to-tick window must still route to `home` —
    /// exactly like a plain engine whose queue holds the same pending leave.
    departed: bool,
}

/// N region-local [`AssignmentEngine`]s behind one location-routing façade
/// (see the [module docs](self) for the architecture, the handoff protocol
/// and the determinism contract).
///
/// The API deliberately mirrors the single engine's — `submit`, `tick`,
/// `record_answer`, `committed_assignments` — so
/// [`crate::handle::EngineHandle`] can drive either interchangeably.
pub struct PartitionedEngine {
    partition: RegionPartition,
    slots: Vec<Sender<Command>>,
    threads: Vec<JoinHandle<()>>,
    /// Pending routed events, one buffer per partition, flushed as one
    /// `Command::Submit` per partition at the end of every submit call —
    /// per-partition order is what determinism needs, and batching spares a
    /// channel round-trip per event on the ingestion hot path.
    outbox: Vec<Vec<EngineEvent>>,
    /// Each known worker's routing state.
    worker_home: HashMap<WorkerId, WorkerEntry>,
    /// Each known live task's partition (entries for auto-expired tasks
    /// linger until an explicit expire names them; the growth is bounded by
    /// the total tasks ever posted, like the engines' own retired maps).
    task_home: HashMap<TaskId, usize>,
    /// Workers currently en route somewhere, rebuilt exactly from the
    /// engines' own committed sets at every tick.
    committed: HashSet<WorkerId>,
    /// Boundary-crossing workers whose handoff waits for their commitment
    /// to clear. Ordered so the post-tick resolution is deterministic.
    pending_handoff: BTreeSet<WorkerId>,
    handoffs: u64,
}

impl PartitionedEngine {
    /// Wraps one pre-built engine per region. Panics unless
    /// `engines.len() == partition.num_regions()`. Each engine starts its
    /// own named OS thread immediately.
    pub fn new<I: SpatialIndex + 'static>(
        partition: RegionPartition,
        engines: Vec<AssignmentEngine<I>>,
    ) -> Self {
        assert_eq!(
            engines.len(),
            partition.num_regions(),
            "one engine per region required"
        );
        let mut slots = Vec::with_capacity(engines.len());
        let mut threads = Vec::with_capacity(engines.len());
        for (i, engine) in engines.into_iter().enumerate() {
            let (tx, rx) = channel();
            slots.push(tx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rdbsc-partition-{i}"))
                    .spawn(move || slot_loop(engine, rx))
                    .expect("spawn partition thread"),
            );
        }
        let outbox = (0..slots.len()).map(|_| Vec::new()).collect();
        Self {
            partition,
            slots,
            threads,
            outbox,
            worker_home: HashMap::new(),
            task_home: HashMap::new(),
            committed: HashSet::new(),
            pending_handoff: BTreeSet::new(),
            handoffs: 0,
        }
    }

    /// Builds one engine per region with `make_index` supplying each
    /// region's spatial index (over the region rectangle) and a shared
    /// engine configuration — every partition runs the same config,
    /// including the seed, which is what makes the single-partition case
    /// byte-identical to a plain engine.
    pub fn build<I, F>(
        partition: RegionPartition,
        config: crate::engine::EngineConfig,
        mut make_index: F,
    ) -> Self
    where
        I: SpatialIndex + 'static,
        F: FnMut(Rect) -> I,
    {
        let engines = (0..partition.num_regions())
            .map(|i| AssignmentEngine::new(make_index(partition.region_rect(i)), config.clone()))
            .collect();
        Self::new(partition, engines)
    }

    /// Number of partitions (= engine threads).
    pub fn num_partitions(&self) -> usize {
        self.slots.len()
    }

    /// The region rectangles, in partition order.
    pub fn regions(&self) -> Vec<Rect> {
        (0..self.partition.num_regions())
            .map(|i| self.partition.region_rect(i))
            .collect()
    }

    /// The region partition the router uses.
    pub fn region_partition(&self) -> &RegionPartition {
        &self.partition
    }

    /// Cross-partition worker handoffs performed so far.
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Buffers a routed event for `slot`; [`Self::flush_outbox`] ships it.
    fn send(&mut self, slot: usize, event: EngineEvent) {
        self.outbox[slot].push(event);
    }

    /// Ships every buffered event, one `Submit` command per partition.
    fn flush_outbox(&mut self) {
        for (slot, buffer) in self.outbox.iter_mut().enumerate() {
            if !buffer.is_empty() {
                self.slots[slot]
                    .send(Command::Submit(std::mem::take(buffer)))
                    .expect("partition thread alive");
            }
        }
    }

    fn send_command(&self, slot: usize, command: Command) {
        self.slots[slot]
            .send(command)
            .expect("partition thread alive");
    }

    /// Detaches `id` from `from` and re-registers `record` with the
    /// partition owning its current location, via the engines' ordinary
    /// leave/check-in machinery.
    fn handoff(&mut self, id: WorkerId, from: usize, record: Worker) {
        let target = self.partition.partition_of(record.location);
        debug_assert_ne!(target, from);
        self.worker_home.insert(
            id,
            WorkerEntry {
                home: target,
                record,
                departed: false,
            },
        );
        self.handoffs += 1;
        self.send(from, EngineEvent::WorkerLeft(id));
        self.send(target, EngineEvent::WorkerCheckIn(record));
    }

    /// Routes one event into the outbox (shipped by [`Self::flush_outbox`]).
    fn route(&mut self, event: EngineEvent) {
        match event {
            EngineEvent::TaskArrived(task) => {
                let target = self.partition.partition_of(task.location);
                if let Some(old) = self.task_home.insert(task.id, target) {
                    if old != target {
                        // Cross-partition re-post: withdraw from the old
                        // region before arriving fresh in the new one.
                        self.send(old, EngineEvent::TaskExpired(task.id));
                    }
                }
                self.send(target, EngineEvent::TaskArrived(task));
            }
            EngineEvent::TaskExpired(id) => {
                // Unknown ids go to partition 0, where the expire is the
                // same no-op a plain engine would apply (and the event
                // accounting stays identical in the 1-partition case).
                let target = self.task_home.remove(&id).unwrap_or(0);
                self.send(target, EngineEvent::TaskExpired(id));
            }
            EngineEvent::WorkerCheckIn(worker) => {
                let target = self.partition.partition_of(worker.location);
                match self.worker_home.get(&worker.id).copied() {
                    // A departed entry is routing history, not residency:
                    // the queued leave clears any commitment before this
                    // check-in applies, so register fresh at the target.
                    Some(entry) if entry.departed => {
                        self.worker_home.insert(
                            worker.id,
                            WorkerEntry {
                                home: target,
                                record: worker,
                                departed: false,
                            },
                        );
                        self.send(target, EngineEvent::WorkerCheckIn(worker));
                    }
                    Some(entry) if entry.home == target => {
                        self.pending_handoff.remove(&worker.id);
                        self.worker_home.insert(
                            worker.id,
                            WorkerEntry {
                                record: worker,
                                ..entry
                            },
                        );
                        self.send(entry.home, EngineEvent::WorkerCheckIn(worker));
                    }
                    Some(entry) if self.committed.contains(&worker.id) => {
                        // Re-registration while en route: the engine keeps
                        // the commitment, so the worker stays with it and
                        // the handoff waits.
                        self.pending_handoff.insert(worker.id);
                        self.worker_home.insert(
                            worker.id,
                            WorkerEntry {
                                record: worker,
                                ..entry
                            },
                        );
                        self.send(entry.home, EngineEvent::WorkerCheckIn(worker));
                    }
                    Some(entry) => {
                        self.pending_handoff.remove(&worker.id);
                        self.handoff(worker.id, entry.home, worker);
                    }
                    None => {
                        self.worker_home.insert(
                            worker.id,
                            WorkerEntry {
                                home: target,
                                record: worker,
                                departed: false,
                            },
                        );
                        self.send(target, EngineEvent::WorkerCheckIn(worker));
                    }
                }
            }
            EngineEvent::WorkerMoved(id, to) => {
                let target = self.partition.partition_of(to);
                match self.worker_home.get(&id).copied() {
                    // Departed: the engine applies the queued leave first,
                    // making this move its usual absent-worker no-op.
                    Some(entry) if entry.departed => {
                        self.send(entry.home, EngineEvent::WorkerMoved(id, to));
                    }
                    Some(mut entry) => {
                        entry.record.location = to;
                        if entry.home == target {
                            self.pending_handoff.remove(&id);
                            self.worker_home.insert(id, entry);
                            self.send(entry.home, EngineEvent::WorkerMoved(id, to));
                        } else if self.committed.contains(&id) {
                            // En route: stays with its task's partition (the
                            // index clamps the position onto border cells);
                            // hand off once the commitment clears.
                            self.pending_handoff.insert(id);
                            self.worker_home.insert(id, entry);
                            self.send(entry.home, EngineEvent::WorkerMoved(id, to));
                        } else {
                            self.pending_handoff.remove(&id);
                            self.handoff(id, entry.home, entry.record);
                        }
                    }
                    // Unknown worker: forward to the target partition where
                    // the move is the plain engine's no-op.
                    None => self.send(target, EngineEvent::WorkerMoved(id, to)),
                }
            }
            EngineEvent::WorkerLeft(id) => {
                // Route the leave to the worker's home but keep the entry
                // (tombstoned) until the next tick applies it: a plain
                // engine only removes the worker at the tick, so commands
                // in the submit-to-tick window (an answer delivery, say)
                // must still reach the engine that holds the commitment.
                self.pending_handoff.remove(&id);
                let target = match self.worker_home.get_mut(&id) {
                    Some(entry) => {
                        entry.departed = true;
                        entry.home
                    }
                    None => 0, // no-op there; keeps 1-partition accounting identical
                };
                self.send(target, EngineEvent::WorkerLeft(id));
            }
        }
    }

    /// Queues one event, routed by location, for the next tick.
    pub fn submit(&mut self, event: EngineEvent) {
        self.route(event);
        self.flush_outbox();
    }

    /// Queues many events (in order) for the next tick, shipping one
    /// batched submit per partition.
    pub fn submit_all<E: IntoIterator<Item = EngineEvent>>(&mut self, events: E) {
        for event in events {
            self.route(event);
        }
        self.flush_outbox();
    }

    /// Runs one lockstep engine round at time `now` on **every** partition
    /// concurrently, merges the per-partition reports in partition order,
    /// refreshes the router's committed-worker view and resolves any
    /// deferred handoffs whose commitment has cleared.
    pub fn tick(&mut self, now: f64) -> TickReport {
        let replies: Vec<Receiver<(TickReport, Vec<WorkerId>)>> = self
            .slots
            .iter()
            .map(|slot| {
                let (tx, rx) = channel();
                slot.send(Command::Tick { now, reply: tx })
                    .expect("partition thread alive");
                rx
            })
            .collect();
        let results: Vec<(TickReport, Vec<WorkerId>)> = replies
            .into_iter()
            .map(|rx| rx.recv().expect("partition thread alive"))
            .collect();

        self.committed.clear();
        let mut merged = TickReport {
            now,
            events_applied: 0,
            tasks_expired: 0,
            num_shards: 0,
            largest_shard_pairs: 0,
            strategies: Vec::new(),
            new_assignments: Vec::new(),
            solve_seconds: 0.0,
            shard_solve_seconds: Vec::new(),
            index_maintenance: MaintenanceCounters::default(),
        };
        for (report, committed) in results {
            merged.events_applied += report.events_applied;
            merged.tasks_expired += report.tasks_expired;
            merged.num_shards += report.num_shards;
            merged.largest_shard_pairs =
                merged.largest_shard_pairs.max(report.largest_shard_pairs);
            merged.strategies.extend(report.strategies);
            merged.new_assignments.extend(report.new_assignments);
            // Partitions solve concurrently: the round's wall time is the
            // slowest partition's, not the sum.
            merged.solve_seconds = merged.solve_seconds.max(report.solve_seconds);
            merged
                .shard_solve_seconds
                .extend(report.shard_solve_seconds);
            merged.index_maintenance.relocations += report.index_maintenance.relocations;
            merged.index_maintenance.cells_repaired +=
                report.index_maintenance.cells_repaired;
            merged.index_maintenance.tcell_rebuilds +=
                report.index_maintenance.tcell_rebuilds;
            self.committed.extend(committed);
        }

        // Departed tombstones have served their purpose: every routed
        // leave was in its engine's queue before this tick, so the workers
        // are gone now and the routing entries can go too.
        self.worker_home.retain(|_, entry| !entry.departed);

        // Deferred handoffs: commitments may have cleared (answer banked
        // before the tick, task expired during it). BTreeSet order makes the
        // resolution sequence deterministic.
        let pending: Vec<WorkerId> = self.pending_handoff.iter().copied().collect();
        for id in pending {
            if self.committed.contains(&id) {
                continue;
            }
            self.pending_handoff.remove(&id);
            let Some(entry) = self.worker_home.get(&id).copied() else {
                continue;
            };
            if self.partition.partition_of(entry.record.location) != entry.home {
                self.handoff(id, entry.home, entry.record);
            }
        }
        self.flush_outbox();
        merged
    }

    /// Does any partition have pending events or live tasks? (The partitioned
    /// analogue of the idle check behind
    /// [`crate::handle::EngineHandle::tick_if_active`]; ticks stay lockstep,
    /// so one active partition ticks all of them.)
    pub fn is_active(&self) -> bool {
        let replies: Vec<Receiver<bool>> = self
            .slots
            .iter()
            .map(|slot| {
                let (tx, rx) = channel();
                slot.send(Command::IsActive(tx)).expect("partition thread alive");
                rx
            })
            .collect();
        replies
            .into_iter()
            .any(|rx| rx.recv().expect("partition thread alive"))
    }

    /// Banks an en-route worker's answer in its partition; a now-free
    /// boundary-crossing worker is immediately handed off to the partition
    /// of its last reported position. Returns `false` when the worker was
    /// not en route.
    pub fn record_answer(&mut self, worker: WorkerId, contribution: Contribution) -> bool {
        let Some(entry) = self.worker_home.get(&worker).copied() else {
            return false;
        };
        let (tx, rx) = channel();
        self.send_command(
            entry.home,
            Command::RecordAnswer {
                worker,
                contribution,
                reply: tx,
            },
        );
        let banked = rx.recv().expect("partition thread alive");
        if banked {
            self.committed.remove(&worker);
            if self.pending_handoff.remove(&worker)
                && self.partition.partition_of(entry.record.location) != entry.home
            {
                self.handoff(worker, entry.home, entry.record);
                self.flush_outbox();
            }
        }
        banked
    }

    /// Releases an en-route worker (gave up / rejected) in its partition,
    /// performing a deferred handoff if one is waiting on it.
    pub fn release_worker(&mut self, worker: WorkerId) {
        let Some(entry) = self.worker_home.get(&worker).copied() else {
            return;
        };
        self.send_command(entry.home, Command::Release(worker));
        self.committed.remove(&worker);
        if self.pending_handoff.remove(&worker)
            && self.partition.partition_of(entry.record.location) != entry.home
        {
            self.handoff(worker, entry.home, entry.record);
            self.flush_outbox();
        }
    }

    /// Is the worker currently en route (in any partition)?
    pub fn is_committed(&self, worker: WorkerId) -> bool {
        self.committed.contains(&worker)
    }

    /// The standing committed pairs across all partitions, ordered by
    /// `(partition, task, worker)` — partition-major concatenation of the
    /// per-engine sorted listings.
    pub fn committed_assignments(&self) -> Vec<ValidPair> {
        let mut merged = Vec::new();
        for slot in 0..self.slots.len() {
            let (tx, rx) = channel();
            self.send_command(slot, Command::Assignments(tx));
            merged.extend(rx.recv().expect("partition thread alive"));
        }
        merged
    }

    /// One consistent snapshot per partition, in partition order.
    pub fn partition_snapshots(&self) -> Vec<EngineSnapshot> {
        let replies: Vec<Receiver<EngineSnapshot>> = self
            .slots
            .iter()
            .map(|slot| {
                let (tx, rx) = channel();
                slot.send(Command::Snapshot(tx)).expect("partition thread alive");
                rx
            })
            .collect();
        replies
            .into_iter()
            .map(|rx| rx.recv().expect("partition thread alive"))
            .collect()
    }

    /// The merged serving snapshot: counters summed, objective folded
    /// (minimum reliability over covered partitions, diversity summed).
    pub fn snapshot(&self) -> EngineSnapshot {
        merge_snapshots(&self.partition_snapshots())
    }

    /// The partitions whose index currently holds the worker. The handoff
    /// invariant says this has at most one element once queues are drained;
    /// the property tests assert exactly that.
    pub fn partitions_holding(&self, id: WorkerId) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&slot| {
                let (tx, rx) = channel();
                self.send_command(slot, Command::HasWorker(id, tx));
                rx.recv().expect("partition thread alive")
            })
            .collect()
    }
}

impl Drop for PartitionedEngine {
    fn drop(&mut self) {
        for slot in &self.slots {
            let _ = slot.send(Command::Shutdown);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Folds per-partition snapshots into one platform-wide view (lockstep
/// ticks, summed counters, merged objective).
pub fn merge_snapshots(parts: &[EngineSnapshot]) -> EngineSnapshot {
    let mut merged = EngineSnapshot {
        now: parts.first().map(|p| p.now).unwrap_or(0.0),
        ticks: parts.first().map(|p| p.ticks).unwrap_or(0),
        events_applied: 0,
        pending_events: 0,
        live_tasks: 0,
        live_workers: 0,
        committed_workers: 0,
        banked_answers: 0,
        total_assignments: 0,
        objective: EngineObjective {
            min_reliability: f64::INFINITY,
            total_std: 0.0,
            covered_tasks: 0,
        },
        backend: parts.first().map(|p| p.backend).unwrap_or("none"),
        index_counters: MaintenanceCounters::default(),
    };
    for p in parts {
        merged.events_applied += p.events_applied;
        merged.pending_events += p.pending_events;
        merged.live_tasks += p.live_tasks;
        merged.live_workers += p.live_workers;
        merged.committed_workers += p.committed_workers;
        merged.banked_answers += p.banked_answers;
        merged.total_assignments += p.total_assignments;
        merged.objective.total_std += p.objective.total_std;
        merged.objective.covered_tasks += p.objective.covered_tasks;
        if p.objective.covered_tasks > 0 {
            merged.objective.min_reliability = merged
                .objective
                .min_reliability
                .min(p.objective.min_reliability);
        }
        merged.index_counters.relocations += p.index_counters.relocations;
        merged.index_counters.cells_repaired += p.index_counters.cells_repaired;
        merged.index_counters.tcell_rebuilds += p.index_counters.tcell_rebuilds;
    }
    if merged.objective.covered_tasks == 0 {
        merged.objective.min_reliability = 1.0;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use rdbsc_cluster::RegionPartitioner;
    use rdbsc_geo::{AngleRange, Point};
    use rdbsc_index::geometry::GridGeometry;
    use rdbsc_index::GridIndex;
    use rdbsc_model::{Confidence, Task, TimeWindow};

    fn task(id: u32, x: f64, y: f64, start: f64, end: f64) -> Task {
        Task::new(
            TaskId(id),
            Point::new(x, y),
            TimeWindow::new(start, end).unwrap(),
        )
    }

    fn worker(id: u32, x: f64, y: f64, speed: f64) -> Worker {
        Worker::new(
            WorkerId(id),
            Point::new(x, y),
            speed,
            AngleRange::full(),
            Confidence::new(0.9).unwrap(),
        )
        .unwrap()
    }

    fn partitioned(n: usize) -> PartitionedEngine {
        let geometry = GridGeometry::new(Rect::unit(), 0.1);
        let partition = RegionPartitioner::uniform().split(geometry, n, &[]);
        PartitionedEngine::build(partition, EngineConfig::default(), |rect| {
            GridIndex::new(rect, 0.1)
        })
    }

    /// A two-sided script: tasks and workers in the left (x < 0.5) and right
    /// halves, matching a 2-way uniform split's vertical boundary.
    fn two_sided_events() -> Vec<EngineEvent> {
        let mut events = Vec::new();
        for i in 0..6u32 {
            let x = if i % 2 == 0 { 0.2 } else { 0.8 };
            events.push(EngineEvent::TaskArrived(task(i, x, 0.5, 0.0, 5.0)));
            events.push(EngineEvent::WorkerCheckIn(worker(i, x, 0.45, 0.3)));
        }
        events
    }

    #[test]
    fn single_partition_matches_plain_engine() {
        let mut plain = AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.1),
            EngineConfig::default(),
        );
        let mut split = partitioned(1);
        let events = two_sided_events();
        plain.submit_all(events.clone());
        split.submit_all(events);

        let a = plain.tick(0.0);
        let b = split.tick(0.0);
        assert_eq!(a.new_assignments, b.new_assignments);
        assert_eq!(a.events_applied, b.events_applied);
        assert_eq!(a.num_shards, b.num_shards);
        assert_eq!(a.strategies, b.strategies);
        assert_eq!(plain.committed_assignments(), split.committed_assignments());

        // Answers flow identically.
        let pair = a.new_assignments[0];
        assert!(plain.record_answer(pair.worker, pair.contribution));
        assert!(split.record_answer(pair.worker, pair.contribution));
        assert_eq!(
            plain.tick(0.5).new_assignments,
            split.tick(0.5).new_assignments
        );
        assert_eq!(split.handoffs(), 0);
    }

    #[test]
    fn events_route_to_the_owning_partition() {
        let mut split = partitioned(2);
        split.submit_all(two_sided_events());
        let report = split.tick(0.0);
        assert!(!report.new_assignments.is_empty());
        let snaps = split.partition_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].live_tasks, 3);
        assert_eq!(snaps[1].live_tasks, 3);
        assert_eq!(snaps[0].live_workers, 3);
        assert_eq!(snaps[1].live_workers, 3);
        let merged = split.snapshot();
        assert_eq!(merged.live_tasks, 6);
        assert_eq!(merged.live_workers, 6);
    }

    #[test]
    fn free_worker_crossing_the_boundary_is_handed_off() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.2, 0.5, 0.3)));
        split.tick(0.0);
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![0]);

        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.8, 0.5)));
        split.tick(0.1);
        assert_eq!(split.handoffs(), 1);
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![1]);

        // A task near its new home is served by the new partition's engine.
        split.submit(EngineEvent::TaskArrived(task(0, 0.82, 0.5, 0.0, 5.0)));
        let report = split.tick(0.2);
        assert_eq!(report.new_assignments.len(), 1);
        assert_eq!(report.new_assignments[0].worker, WorkerId(0));
    }

    #[test]
    fn committed_worker_handoff_waits_for_the_answer() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 8.0)));
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.25, 0.5, 0.4)));
        let report = split.tick(0.0);
        assert_eq!(report.new_assignments.len(), 1);
        let pair = report.new_assignments[0];
        assert!(split.is_committed(pair.worker));

        // The committed worker reports from the far side of the boundary:
        // no handoff yet — the commitment pins it to partition 0.
        split.submit(EngineEvent::WorkerMoved(pair.worker, Point::new(0.8, 0.5)));
        split.tick(0.5);
        assert_eq!(split.handoffs(), 0);
        assert_eq!(split.partitions_holding(pair.worker), vec![0]);
        assert_eq!(split.committed_assignments().len(), 1);

        // The answer banks in partition 0 (where the task lives) and the
        // handoff fires immediately after.
        assert!(split.record_answer(pair.worker, pair.contribution));
        assert_eq!(split.handoffs(), 1);
        assert_eq!(split.snapshot().banked_answers, 1);
        split.tick(1.0);
        assert_eq!(split.partitions_holding(pair.worker), vec![1]);
        assert!(split.snapshot().objective.min_reliability > 0.0);
    }

    #[test]
    fn expiration_releases_and_then_hands_off() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 1.0)));
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.25, 0.5, 0.4)));
        let report = split.tick(0.0);
        assert_eq!(report.new_assignments.len(), 1);
        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.9, 0.5)));
        split.tick(0.5); // still committed, still partition 0
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![0]);

        // The task expires without an answer: the engine releases the
        // traveller and the post-tick resolution hands it off.
        let late = split.tick(2.0);
        assert_eq!(late.tasks_expired, 1);
        assert_eq!(split.handoffs(), 1);
        split.tick(2.1);
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![1]);
    }

    #[test]
    fn oscillation_between_ticks_settles_in_one_partition() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.2, 0.5, 0.3)));
        split.tick(0.0);
        // Two boundary crossings within one inter-tick window.
        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.8, 0.5)));
        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.2, 0.5)));
        split.tick(0.1);
        assert_eq!(split.handoffs(), 2);
        assert_eq!(split.partitions_holding(WorkerId(0)), vec![0]);
        assert_eq!(split.snapshot().live_workers, 1);
    }

    #[test]
    fn answer_after_queued_leave_still_banks_like_the_plain_engine() {
        // A leave is only applied at the next tick; an answer delivered in
        // the submit-to-tick window must still reach the engine holding the
        // commitment — on one partition this must match the plain engine
        // byte for byte.
        let drive_plain = |mut engine: AssignmentEngine<GridIndex>| {
            engine.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 8.0)));
            engine.submit(EngineEvent::WorkerCheckIn(worker(0, 0.25, 0.5, 0.4)));
            let pair = engine.tick(0.0).new_assignments[0];
            engine.submit(EngineEvent::WorkerLeft(pair.worker));
            let banked = engine.record_answer(pair.worker, pair.contribution);
            engine.tick(0.5);
            (banked, engine.num_workers(), engine.num_banked_answers())
        };
        let plain = drive_plain(AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.1),
            EngineConfig::default(),
        ));
        assert_eq!(plain, (true, 0, 1), "plain engine banks, then removes");

        for partitions in [1, 2] {
            let mut split = partitioned(partitions);
            split.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 8.0)));
            split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.25, 0.5, 0.4)));
            let pair = split.tick(0.0).new_assignments[0];
            split.submit(EngineEvent::WorkerLeft(pair.worker));
            assert!(
                split.record_answer(pair.worker, pair.contribution),
                "{partitions}-partition answer in the leave window must bank"
            );
            split.tick(0.5);
            assert_eq!(split.snapshot().live_workers, 0);
            assert_eq!(split.snapshot().banked_answers, 1);
            assert!(split.partitions_holding(pair.worker).is_empty());
            // The tombstoned routing entry is cleaned up by the tick; a
            // later move is the usual unknown-worker no-op.
            split.submit(EngineEvent::WorkerMoved(pair.worker, Point::new(0.9, 0.5)));
            split.tick(1.0);
            assert!(split.partitions_holding(pair.worker).is_empty());
        }
    }

    #[test]
    fn worker_left_removes_everywhere() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::WorkerCheckIn(worker(0, 0.2, 0.5, 0.3)));
        split.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.8, 0.5)));
        split.submit(EngineEvent::WorkerLeft(WorkerId(0)));
        split.tick(0.0);
        assert!(split.partitions_holding(WorkerId(0)).is_empty());
        assert_eq!(split.snapshot().live_workers, 0);
    }

    #[test]
    fn cross_partition_task_repost_withdraws_the_old_copy() {
        let mut split = partitioned(2);
        split.submit(EngineEvent::TaskArrived(task(0, 0.2, 0.5, 0.0, 5.0)));
        split.tick(0.0);
        assert_eq!(split.partition_snapshots()[0].live_tasks, 1);
        split.submit(EngineEvent::TaskArrived(task(0, 0.8, 0.5, 0.0, 5.0)));
        split.tick(0.1);
        let snaps = split.partition_snapshots();
        assert_eq!(snaps[0].live_tasks, 0, "old copy withdrawn");
        assert_eq!(snaps[1].live_tasks, 1, "new copy lives right");
    }
}
