//! Lock-free counting primitives shared by the serving and protocol layers.
//!
//! [`Counter`] and [`LatencyHistogram`] started life inside `rdbsc-server`'s
//! metrics endpoint; the partition protocol needs the identical primitives on
//! the router side (per-partition request/byte counters, command-latency
//! percentiles), so they live here where both `rdbsc-platform::protocol` and
//! `rdbsc-server::metrics` can share one implementation. Everything is
//! updated lock-free from any thread and read without stopping the world;
//! the histogram gives exact counts and sub-bucket-resolution percentile
//! estimates (linear interpolation inside the winning bucket), which is
//! plenty for p50/p99 over log-spaced buckets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (microseconds, inclusive) of the histogram buckets: roughly
/// 1-2-5 per decade from 10 µs to 10 s, plus an overflow bucket.
pub const BUCKET_BOUNDS_US: [u64; 19] = [
    10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
    500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram (microsecond resolution).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|bound| us <= *bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The largest observation so far, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// Estimates the `p`-th percentile (`0 < p <= 100`) in microseconds by
    /// linear interpolation inside the winning bucket. 0 when empty.
    pub fn percentile_us(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (p / 100.0 * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if seen + in_bucket >= rank {
                let lower = if idx == 0 { 0 } else { BUCKET_BOUNDS_US[idx - 1] };
                let upper = if idx < BUCKET_BOUNDS_US.len() {
                    BUCKET_BOUNDS_US[idx]
                } else {
                    self.max_us().max(lower + 1)
                };
                let fraction = if in_bucket == 0 {
                    0.0
                } else {
                    (rank - seen) as f64 / in_bucket as f64
                };
                return lower as f64 + fraction * (upper - lower) as f64;
            }
            seen += in_bucket;
        }
        self.max_us() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let h = LatencyHistogram::default();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile_us(50.0);
        let p99 = h.percentile_us(99.0);
        assert!((20_000.0..=60_000.0).contains(&p50), "p50 {p50}");
        assert!((90_000.0..=110_000.0).contains(&p99), "p99 {p99}");
        assert!(p99 >= p50);
        assert!((h.mean_us() - 50_500.0).abs() < 1_000.0);
    }

    #[test]
    fn histogram_handles_empty_and_overflow() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(99.0), 0.0);
        h.record(Duration::from_secs(60)); // beyond the last bound
        assert_eq!(h.count(), 1);
        assert!(h.percentile_us(50.0) > 10_000_000.0);
    }
}
