//! Lock-free counting primitives shared by the serving and protocol layers.
//!
//! [`Counter`] and [`LatencyHistogram`] started life inside `rdbsc-server`'s
//! metrics endpoint, moved here when the partition protocol needed the same
//! primitives on the router side, and now live in [`rdbsc_obs`] at the
//! bottom of the dependency stack — where the unified metrics registry,
//! the Prometheus renderer and the per-stage tick profiler all build on
//! them. This module re-exports them so every existing
//! `rdbsc_platform::stats` consumer (protocol counters, server metrics,
//! benches) keeps compiling unchanged.

pub use rdbsc_obs::{Counter, Gauge, LatencyHistogram, BUCKET_BOUNDS_US};
