//! Log-shipping replication: the primary side of a partition's
//! primary/standby pair.
//!
//! The engine is a deterministic state machine, so replication is redo
//! shipping: a standby that starts from a state snapshot and applies the
//! same command records in the same order is **byte-identical by
//! construction** — the same property the WAL's crash recovery rests on,
//! now stretched over the wire. The stream therefore reuses the WAL's
//! vocabulary wholesale: shipped units are [`WalRecord`]s in the canonical
//! codec, and bootstrap is the checkpoint+tail recovery path served
//! remotely (a `Checkpoint` record as the snapshot, then the live tail).
//!
//! ## The retained tail and its watermarks
//!
//! A [`ReplicationLog`] is the primary's in-memory publication buffer: every
//! command record the partition logs is also published here under a dense
//! **stream lsn** (independent of WAL lsns, which restart across reboots —
//! a primary reboot always re-bootstraps the follower). The follower pulls
//! batches with [`ReplicationLog::fetch`] and acknowledges application with
//! [`ReplicationLog::ack`]; acknowledged records are dropped, so the
//! acknowledgement watermark is exactly what bounds retention. A follower
//! that stops pulling cannot wedge the primary: past the retention cap
//! (`max_retained`, [`DEFAULT_MAX_RETAINED`]) unacknowledged records the oldest are
//! discarded and the stream marks a reset — the follower's next fetch
//! reports a gap ([`ReplError::Gap`]) and it re-bootstraps from a fresh
//! snapshot.
//!
//! Checkpoints and [`WalRecord::ReplMeta`] notes are *not* shipped: the
//! follower takes its own checkpoints at its own tick cadence, and repl
//! metadata is always local to the log that wrote it.

use crate::wal::WalRecord;
use std::collections::VecDeque;

/// Default cap on unacknowledged retained records before the stream resets
/// (a dead follower must not grow the primary's memory unboundedly).
pub const DEFAULT_MAX_RETAINED: usize = 65_536;

/// Why a fetch could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplError {
    /// Replication was never enabled on this partition.
    NotEnabled,
    /// The requested lsn precedes the retained tail (the stream reset or
    /// the acknowledgement watermark already passed it): the follower must
    /// re-bootstrap from a fresh snapshot.
    Gap {
        /// The oldest lsn still retained.
        base: u64,
    },
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::NotEnabled => write!(f, "replication is not enabled"),
            ReplError::Gap { base } => {
                write!(f, "requested lsn precedes retained base {base}; re-bootstrap")
            }
        }
    }
}

impl std::error::Error for ReplError {}

/// A point-in-time view of the primary-side stream, for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplStatus {
    /// The lsn the next published record gets (the stream head).
    pub next_lsn: u64,
    /// The oldest lsn still retained.
    pub base: u64,
    /// The acknowledgement watermark: every record below it was applied by
    /// the follower.
    pub acked: u64,
    /// Records currently retained (head minus base).
    pub retained: u64,
    /// Times the retention cap discarded unacknowledged records (each one
    /// forced a follower re-bootstrap).
    pub resets: u64,
}

/// The primary's publication buffer — see the [module docs](self).
pub struct ReplicationLog {
    base: u64,
    tail: VecDeque<WalRecord>,
    acked: u64,
    max_retained: usize,
    resets: u64,
}

impl ReplicationLog {
    /// An empty stream whose first published record gets `start_lsn`.
    pub fn new(start_lsn: u64, max_retained: usize) -> Self {
        Self {
            base: start_lsn,
            tail: VecDeque::new(),
            acked: start_lsn,
            max_retained: max_retained.max(1),
            resets: 0,
        }
    }

    /// The lsn the next published record gets.
    pub fn next_lsn(&self) -> u64 {
        self.base + self.tail.len() as u64
    }

    /// Publishes one record at the stream head. Past the retention cap the
    /// oldest unacknowledged record is discarded (stream reset — the
    /// follower will observe a gap and re-bootstrap).
    pub fn publish(&mut self, record: WalRecord) {
        if self.tail.len() >= self.max_retained {
            self.tail.pop_front();
            self.base += 1;
            self.resets += 1;
        }
        self.tail.push_back(record);
    }

    /// Advances the acknowledgement watermark to `upto` (exclusive lsn of
    /// the highest applied record + 1) and drops acknowledged records.
    /// Watermarks never move backwards.
    pub fn ack(&mut self, upto: u64) {
        let upto = upto.min(self.next_lsn());
        if upto <= self.acked {
            return;
        }
        self.acked = upto;
        while self.base < self.acked {
            self.tail.pop_front();
            self.base += 1;
        }
    }

    /// Records from `from` (inclusive), at most `max` of them, paired with
    /// their lsns. A `from` below the retained base is a gap: the follower
    /// must re-bootstrap.
    pub fn fetch(&self, from: u64, max: usize) -> Result<Vec<(u64, WalRecord)>, ReplError> {
        if from < self.base {
            return Err(ReplError::Gap { base: self.base });
        }
        let skip = (from - self.base) as usize;
        Ok(self
            .tail
            .iter()
            .skip(skip)
            .take(max)
            .cloned()
            .enumerate()
            .map(|(i, record)| (from + i as u64, record))
            .collect())
    }

    /// Restarts the stream at the current head: retained records are
    /// dropped and the watermark jumps forward. Called when a follower
    /// (re-)bootstraps — the snapshot it just took covers everything
    /// published so far.
    pub fn rebase_to_head(&mut self) {
        self.base = self.next_lsn();
        self.tail.clear();
        self.acked = self.base;
    }

    /// The point-in-time stream counters.
    pub fn status(&self) -> ReplStatus {
        ReplStatus {
            next_lsn: self.next_lsn(),
            base: self.base,
            acked: self.acked,
            retained: self.tail.len() as u64,
            resets: self.resets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(now: f64) -> WalRecord {
        WalRecord::Tick { now }
    }

    #[test]
    fn publish_fetch_ack_round_trips() {
        let mut log = ReplicationLog::new(0, 100);
        for i in 0..5 {
            log.publish(tick(i as f64));
        }
        assert_eq!(log.next_lsn(), 5);
        let batch = log.fetch(0, 3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], (0, tick(0.0)));
        assert_eq!(batch[2], (2, tick(2.0)));

        log.ack(3);
        assert_eq!(log.status().acked, 3);
        assert_eq!(log.status().base, 3);
        assert_eq!(log.status().retained, 2);
        // Acked records are gone; fetching them is a gap.
        assert_eq!(log.fetch(0, 10), Err(ReplError::Gap { base: 3 }));
        // Watermarks never regress.
        log.ack(1);
        assert_eq!(log.status().acked, 3);
        // Fetch at the head is empty, not an error.
        assert_eq!(log.fetch(5, 10).unwrap(), vec![]);
    }

    #[test]
    fn retention_cap_resets_the_stream() {
        let mut log = ReplicationLog::new(0, 4);
        for i in 0..10 {
            log.publish(tick(i as f64));
        }
        let status = log.status();
        assert_eq!(status.retained, 4);
        assert_eq!(status.base, 6);
        assert_eq!(status.resets, 6);
        assert_eq!(log.fetch(5, 10), Err(ReplError::Gap { base: 6 }));
        let batch = log.fetch(6, 10).unwrap();
        assert_eq!(batch.first().unwrap().0, 6);
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn rebase_jumps_to_the_head() {
        let mut log = ReplicationLog::new(0, 100);
        for i in 0..7 {
            log.publish(tick(i as f64));
        }
        log.rebase_to_head();
        let status = log.status();
        assert_eq!(status.base, 7);
        assert_eq!(status.acked, 7);
        assert_eq!(status.retained, 0);
        log.publish(tick(7.0));
        assert_eq!(log.fetch(7, 10).unwrap(), vec![(7, tick(7.0))]);
    }
}
