//! The durable partition event log (write-ahead log).
//!
//! Every partition engine is a deterministic state machine: byte-identical
//! command streams produce byte-identical state (the contract the
//! cross-topology FNV digests enforce). That turns durability into pure
//! *redo logging* — persist the command stream, and recovery is exact, not
//! best-effort: load the last checkpoint, replay the tail, and the engine
//! provably reaches its pre-crash state.
//!
//! ## Log format
//!
//! The log is a directory of append-only segments:
//!
//! ```text
//! wal-0000000000.log
//! ┌──────────────────────────────────────────────────────────┐
//! │ header: "RDBSCWAL" | version u32 | seqno u64 | first_lsn │
//! ├──────────────────────────────────────────────────────────┤
//! │ frame:  len u32 | crc32 u32 | lsn u64 | payload[len]     │
//! │ frame:  …                                                │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian; the CRC covers `lsn ‖ payload`. Records
//! carry [`WalRecord`]s — routed event batches, tick commands, banked
//! answers, worker releases and periodic [`PartitionState`] checkpoints —
//! in the module's canonical binary encoding.
//!
//! ## Durability discipline
//!
//! Appends are buffered by the OS; the log fsyncs **on tick boundaries**
//! ([`WalConfig::fsync_on_tick`]), so one `fsync` amortises over a whole
//! micro-batch of events — the classic group-commit trade: a crash may
//! lose the commands *after* the last tick boundary, never a prefix hole.
//! A tick logged-but-not-applied is recomputed identically on replay (its
//! reply was never externalised), which is what makes write-ahead redo
//! sound here.
//!
//! ## Recovery invariant
//!
//! [`scan_dir`] walks the segments in sequence order and accepts records
//! while the chain is intact: magic/version/seqno/lsn all match and every
//! CRC verifies. The first violation — torn frame, flipped byte, missing
//! segment — ends the *valid prefix*; everything after it is dropped (the
//! torn tail is truncated, later segments deleted) and the appender resumes
//! in a fresh segment. Recovery therefore always yields a prefix of the
//! appended record stream, never a corrupted state — the property the
//! fault-injection proptests in `tests/proptest_wal.rs` hammer with
//! [`FailpointWriter`].
//!
//! Checkpoints ride in the log as ordinary records; segments strictly older
//! than the segment holding the latest fsynced checkpoint are retired
//! (deleted) so the log's footprint is bounded by the checkpoint interval.

mod codec;
mod failpoint;

pub use codec::{crc32, decode_record, encode_partition_state, encode_record, fnv1a};
pub use failpoint::{FailpointWriter, FaultPlan};

use crate::engine::{EngineEvent, EngineState};
use rdbsc_model::{Contribution, WorkerId};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The segment header magic.
pub const SEGMENT_MAGIC: &[u8; 8] = b"RDBSCWAL";
/// The segment format revision this build reads and writes.
pub const SEGMENT_VERSION: u32 = 1;
/// Upper bound on one record's payload (a corrupted length field must not
/// look like a plausible frame).
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

const HEADER_BYTES: usize = 8 + 4 + 8 + 8;
const FRAME_HEADER_BYTES: usize = 4 + 4 + 8;

/// Why a log operation failed.
#[derive(Debug)]
pub enum WalError {
    /// The underlying filesystem failed.
    Io(io::Error),
    /// Bytes that should have been a record (or header) were not.
    Corrupt(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(what) => write!(f, "wal corruption: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One logged command — the redo stream's unit.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A routed event batch queued for the next tick.
    Events(Vec<EngineEvent>),
    /// A lockstep tick command (the fsync boundary).
    Tick {
        /// The tick's time.
        now: f64,
    },
    /// An en-route worker's banked answer.
    Answer {
        /// The answering worker.
        worker: WorkerId,
        /// Its contribution.
        contribution: Contribution,
    },
    /// An en-route worker released without banking.
    Release {
        /// The released worker.
        worker: WorkerId,
    },
    /// A full-state checkpoint; replay restarts from the latest one.
    Checkpoint(PartitionState),
    /// Replication-stream metadata a follower notes in its own log: the
    /// acknowledgement watermark (highest primary lsn applied) and the
    /// sealed marker promotion writes when the stream ends forever. Replay
    /// ignores it — the record exists so `wal_dump` can diagnose a
    /// standby's log read-only.
    ReplMeta {
        /// The highest shipped-record lsn this follower has applied and
        /// acknowledged back to its primary.
        acked: u64,
        /// The stream is sealed: this follower was promoted to primary and
        /// no further shipped records will ever be applied.
        sealed: bool,
    },
}

impl WalRecord {
    /// The record's type tag, for diagnostics (`wal-dump`).
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::Events(_) => "events",
            WalRecord::Tick { .. } => "tick",
            WalRecord::Answer { .. } => "answer",
            WalRecord::Release { .. } => "release",
            WalRecord::Checkpoint(_) => "checkpoint",
            WalRecord::ReplMeta { .. } => "repl-meta",
        }
    }
}

/// A partition's full logical state — the engine state plus the serving
/// counters the partition keeps around it. Its canonical encoding
/// ([`encode_partition_state`]) doubles as the recovery tests' byte
/// identity: equal encodings ⇔ equal observable state.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionState {
    /// The time of the most recent tick.
    pub last_now: f64,
    /// Events applied across the partition's lifetime.
    pub events_applied: u64,
    /// Assignments committed across the partition's lifetime.
    pub total_assignments: u64,
    /// The engine's state.
    pub engine: EngineState,
}

impl PartitionState {
    /// The FNV-1a digest of the canonical encoding — the state identity the
    /// recovery machinery compares.
    pub fn digest(&self) -> u64 {
        fnv1a(&encode_partition_state(self))
    }
}

/// Durability knobs (pushed to daemons in the serving configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalConfig {
    /// Rotate to a new segment once the current one exceeds this many bytes.
    pub segment_bytes: u64,
    /// Write a checkpoint every N ticks (`0` disables checkpointing; the
    /// log then grows unboundedly and replays from the beginning).
    pub checkpoint_every_ticks: u64,
    /// Fsync at every tick boundary (group commit). Disabling trades the
    /// crash-durability of recent ticks for raw append throughput.
    pub fsync_on_tick: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 4 << 20,
            checkpoint_every_ticks: 64,
            fsync_on_tick: true,
        }
    }
}

/// Point-in-time log counters, exposed on `/metrics` and snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WalStats {
    /// Live segment files (including the one being appended).
    pub segments: u64,
    /// Segments retired (deleted) behind checkpoints.
    pub segments_retired: u64,
    /// Bytes appended through this handle (headers + frames).
    pub bytes_appended: u64,
    /// Records appended through this handle.
    pub records_appended: u64,
    /// Fsyncs issued.
    pub fsyncs: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// The engine tick of the latest checkpoint (the checkpoint epoch).
    pub last_checkpoint_tick: u64,
    /// Records replayed from disk when this handle was opened.
    pub recovered_records: u64,
    /// Whether the open recovered from a checkpoint (vs full replay).
    pub recovered_checkpoint: bool,
}

/// The write surface the appender needs from a segment file — [`fs::File`]
/// in production, [`FailpointWriter`] under fault injection.
pub trait WalFile: Send {
    /// Appends `buf` in full.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Forces appended bytes to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl WalFile for fs::File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// Creates the file for a fresh segment — the injection point for
/// [`FailpointWriter`]-wrapped files in the fault tests.
pub type SegmentFactory = Box<dyn FnMut(&Path) -> io::Result<Box<dyn WalFile>> + Send>;

fn default_factory() -> SegmentFactory {
    Box::new(|path| {
        let file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        Ok(Box::new(file) as Box<dyn WalFile>)
    })
}

fn segment_path(dir: &Path, seqno: u64) -> PathBuf {
    dir.join(format!("wal-{seqno:010}.log"))
}

fn parse_segment_seqno(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let body = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if body.len() != 10 || !body.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    body.parse().ok()
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(seqno) = parse_segment_seqno(&path) {
            segments.push((seqno, path));
        }
    }
    segments.sort_unstable_by_key(|(seqno, _)| *seqno);
    Ok(segments)
}

/// What a read-only scan of a log directory found: the valid record prefix
/// plus the repairs an appender must make before resuming.
#[derive(Debug)]
pub struct ScannedLog {
    /// Every record of the valid prefix, in append (lsn) order.
    pub records: Vec<WalRecord>,
    /// The lsn the next append gets.
    pub next_lsn: u64,
    /// Highest segment sequence number seen (valid or not).
    pub max_seqno: Option<u64>,
    /// Surviving segment files after repairs.
    pub segments: u64,
    /// Bytes beyond the valid prefix (torn tail plus dropped segments).
    pub dropped_bytes: u64,
    /// Torn segment to truncate to its valid byte length.
    truncate: Option<(PathBuf, u64)>,
    /// Segment files entirely beyond the valid prefix, to delete.
    drop_files: Vec<PathBuf>,
}

impl ScannedLog {
    /// Splits the prefix into the latest checkpoint (if any) and the tail
    /// records after it — the recovery inputs.
    pub fn recovery_plan(&self) -> (Option<&PartitionState>, &[WalRecord]) {
        let checkpoint_at = self
            .records
            .iter()
            .rposition(|r| matches!(r, WalRecord::Checkpoint(_)));
        match checkpoint_at {
            Some(i) => {
                let WalRecord::Checkpoint(state) = &self.records[i] else {
                    unreachable!("rposition found a checkpoint");
                };
                (Some(state), &self.records[i + 1..])
            }
            None => (None, &self.records[..]),
        }
    }

    /// Did the scan find damage (torn tail or unreadable segments)?
    pub fn found_damage(&self) -> bool {
        self.truncate.is_some() || !self.drop_files.is_empty()
    }
}

/// Scans a log directory read-only and returns its valid record prefix
/// (see the [module docs](self) for the invariant). Unreadable or
/// out-of-chain bytes end the prefix; they are *reported*, not repaired —
/// [`Wal::open`] applies the repairs before resuming appends.
pub fn scan_dir(dir: &Path) -> Result<ScannedLog, WalError> {
    let segments = list_segments(dir)?;
    let mut scan = ScannedLog {
        records: Vec::new(),
        next_lsn: 0,
        max_seqno: segments.last().map(|(seqno, _)| *seqno),
        segments: 0,
        dropped_bytes: 0,
        truncate: None,
        drop_files: Vec::new(),
    };
    let mut expected_lsn: Option<u64> = None;
    let mut broken = false;
    for (seqno, path) in segments {
        if broken {
            scan.dropped_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            scan.drop_files.push(path);
            continue;
        }
        let bytes = fs::read(&path)?;
        match scan_segment(&bytes, seqno, expected_lsn, &mut scan.records) {
            SegmentScan::Clean { next_lsn } => {
                expected_lsn = Some(next_lsn);
                scan.segments += 1;
            }
            SegmentScan::Torn {
                valid_bytes,
                next_lsn,
            } => {
                // The prefix ends inside this segment: truncate it and drop
                // everything after. The appender resumes in a new segment.
                expected_lsn = Some(next_lsn);
                scan.segments += 1;
                scan.dropped_bytes += bytes.len() as u64 - valid_bytes;
                scan.truncate = Some((path, valid_bytes));
                broken = true;
            }
            SegmentScan::Unreadable => {
                // Not even a valid header: nothing in this segment (or any
                // later one) belongs to the prefix.
                scan.dropped_bytes += bytes.len() as u64;
                scan.drop_files.push(path);
                broken = true;
            }
        }
    }
    scan.next_lsn = expected_lsn.unwrap_or(0);
    Ok(scan)
}

enum SegmentScan {
    Clean { next_lsn: u64 },
    Torn { valid_bytes: u64, next_lsn: u64 },
    Unreadable,
}

/// Read-only metadata of one valid frame, produced by [`inspect_dir`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrameInfo {
    /// The frame's log sequence number.
    pub lsn: u64,
    /// The record's type tag (see [`WalRecord::kind`]).
    pub kind: &'static str,
    /// The encoded payload size (frame header excluded).
    pub payload_bytes: u64,
    /// A one-line human summary of the record's content.
    pub detail: String,
    /// Replication metadata when this frame is a `repl-meta` record:
    /// `(acked, sealed)` — the shipped-stream ack watermark the primary
    /// observed, and whether the marker sealed the stream (promotion or
    /// replica detach). `None` for every other record kind.
    pub repl: Option<(u64, bool)>,
}

/// Read-only metadata of one segment file, produced by [`inspect_dir`].
#[derive(Debug)]
pub struct SegmentInfo {
    /// The sequence number parsed from the file name.
    pub seqno: u64,
    /// The segment file.
    pub path: PathBuf,
    /// The file's size on disk.
    pub file_bytes: u64,
    /// The `first_lsn` field of the segment header (`None` when the header
    /// itself is unreadable).
    pub first_lsn: Option<u64>,
    /// The valid frames, in lsn order (empty for unreadable or
    /// beyond-prefix segments).
    pub frames: Vec<FrameInfo>,
    /// Bytes past the last valid frame (a torn tail an appender would
    /// truncate away; 0 on a clean segment).
    pub torn_bytes: u64,
    /// The header is invalid, the seqno disagrees with the file name, or
    /// the lsn chain from the previous segment does not continue here.
    pub unreadable: bool,
    /// The segment follows an earlier break: no byte of it belongs to the
    /// valid prefix, regardless of its own content.
    pub beyond_prefix: bool,
}

/// Walks a log directory read-only and describes every segment file —
/// header fields, per-frame lsn/type/size and torn-tail diagnosis. This is
/// the `wal-dump` view: unlike [`scan_dir`] it keeps describing segments
/// *past* a break (flagged [`SegmentInfo::beyond_prefix`]), so an operator
/// sees what a repair would delete before anything is deleted.
pub fn inspect_dir(dir: &Path) -> Result<Vec<SegmentInfo>, WalError> {
    let mut infos = Vec::new();
    let mut expected_lsn: Option<u64> = None;
    let mut broken = false;
    for (seqno, path) in list_segments(dir)? {
        let bytes = fs::read(&path)?;
        let mut info = SegmentInfo {
            seqno,
            path,
            file_bytes: bytes.len() as u64,
            first_lsn: None,
            frames: Vec::new(),
            torn_bytes: 0,
            unreadable: false,
            beyond_prefix: broken,
        };
        if broken {
            infos.push(info);
            continue;
        }
        let header_ok = bytes.len() >= HEADER_BYTES
            && &bytes[..8] == SEGMENT_MAGIC
            && u32::from_le_bytes(bytes[8..12].try_into().unwrap()) == SEGMENT_VERSION
            && u64::from_le_bytes(bytes[12..20].try_into().unwrap()) == seqno;
        if header_ok {
            info.first_lsn = Some(u64::from_le_bytes(bytes[20..28].try_into().unwrap()));
        }
        let chain_ok = match (expected_lsn, info.first_lsn) {
            (Some(expected), Some(first)) => expected == first,
            (None, Some(_)) => true,
            _ => false,
        };
        if !header_ok || !chain_ok {
            info.unreadable = true;
            broken = true;
            infos.push(info);
            continue;
        }
        let mut lsn = info.first_lsn.expect("header parsed");
        let mut pos = HEADER_BYTES;
        while let Some((record, total)) = read_frame(&bytes[pos..], lsn) {
            info.frames.push(FrameInfo {
                lsn,
                kind: record.kind(),
                payload_bytes: (total - FRAME_HEADER_BYTES) as u64,
                detail: record_detail(&record),
                repl: match record {
                    WalRecord::ReplMeta { acked, sealed } => Some((acked, sealed)),
                    _ => None,
                },
            });
            pos += total;
            lsn += 1;
        }
        if pos < bytes.len() {
            info.torn_bytes = (bytes.len() - pos) as u64;
            broken = true;
        }
        expected_lsn = Some(lsn);
        infos.push(info);
    }
    Ok(infos)
}

/// The one-line content summary [`inspect_dir`] attaches to each frame.
fn record_detail(record: &WalRecord) -> String {
    match record {
        WalRecord::Events(events) => format!("{} events", events.len()),
        WalRecord::Tick { now } => format!("now={now}"),
        WalRecord::Answer { worker, .. } => format!("worker={}", worker.0),
        WalRecord::Release { worker } => format!("worker={}", worker.0),
        WalRecord::Checkpoint(state) => format!(
            "digest={:016x} last_now={} events_applied={}",
            state.digest(),
            state.last_now,
            state.events_applied
        ),
        WalRecord::ReplMeta { acked, sealed } => format!("acked={acked} sealed={sealed}"),
    }
}

/// Walks one segment's bytes, pushing valid records onto `records` until
/// the frame chain breaks. `expected_lsn` is `None` for the first surviving
/// segment (retirement makes its first lsn the chain base).
fn scan_segment(
    bytes: &[u8],
    seqno: u64,
    expected_lsn: Option<u64>,
    records: &mut Vec<WalRecord>,
) -> SegmentScan {
    if bytes.len() < HEADER_BYTES
        || &bytes[..8] != SEGMENT_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != SEGMENT_VERSION
        || u64::from_le_bytes(bytes[12..20].try_into().unwrap()) != seqno
    {
        return SegmentScan::Unreadable;
    }
    let first_lsn = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let mut lsn = match expected_lsn {
        Some(expected) if expected != first_lsn => return SegmentScan::Unreadable,
        Some(expected) => expected,
        None => first_lsn,
    };
    let mut pos = HEADER_BYTES;
    loop {
        let Some(frame) = read_frame(&bytes[pos..], lsn) else {
            return if pos == bytes.len() {
                SegmentScan::Clean { next_lsn: lsn }
            } else {
                SegmentScan::Torn {
                    valid_bytes: pos as u64,
                    next_lsn: lsn,
                }
            };
        };
        records.push(frame.0);
        pos += frame.1;
        lsn += 1;
    }
}

/// Reads and validates one frame at the start of `bytes`; `None` on any
/// violation (truncation, bad CRC, lsn mismatch, undecodable payload).
fn read_frame(bytes: &[u8], expected_lsn: u64) -> Option<(WalRecord, usize)> {
    if bytes.len() < FRAME_HEADER_BYTES {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let total = FRAME_HEADER_BYTES + len as usize;
    if bytes.len() < total {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let lsn = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if lsn != expected_lsn {
        return None;
    }
    if crc32(&bytes[8..total]) != crc {
        return None;
    }
    let record = decode_record(&bytes[16..total]).ok()?;
    Some((record, total))
}

/// The segmented append-only log: one open handle per partition.
///
/// All appends return `Result`; the partition layer treats an error as
/// fatal (crash-and-recover — see `EnginePartition`), while the fault
/// tests drive this API directly to exercise every error path.
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    factory: SegmentFactory,
    file: Box<dyn WalFile>,
    seqno: u64,
    segment_bytes: u64,
    next_lsn: u64,
    stats: WalStats,
    dirty: bool,
}

impl Wal {
    /// Opens (or creates) the log in `dir`: scans the existing segments,
    /// repairs any damage (truncates the torn tail, deletes out-of-chain
    /// segments) and starts a fresh segment for new appends. Returns the
    /// appender plus the scan — whose [`ScannedLog::recovery_plan`] the
    /// partition replays before going live.
    pub fn open(dir: &Path, config: WalConfig) -> Result<(Self, ScannedLog), WalError> {
        Self::open_with_factory(dir, config, default_factory())
    }

    /// [`Wal::open`] with an explicit segment-file factory (fault tests
    /// inject [`FailpointWriter`]-wrapped files here).
    pub fn open_with_factory(
        dir: &Path,
        config: WalConfig,
        factory: SegmentFactory,
    ) -> Result<(Self, ScannedLog), WalError> {
        fs::create_dir_all(dir)?;
        let scan = scan_dir(dir)?;
        if let Some((path, valid_bytes)) = &scan.truncate {
            let file = fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(*valid_bytes)?;
            file.sync_data()?;
        }
        for path in &scan.drop_files {
            fs::remove_file(path)?;
        }
        let seqno = scan.max_seqno.map_or(0, |s| s + 1);
        let (checkpoint, tail) = scan.recovery_plan();
        let recovered_checkpoint = checkpoint.is_some();
        let recovered_records = tail.len() as u64;
        let mut wal = Self {
            dir: dir.to_path_buf(),
            config,
            factory,
            file: Box::new(NullFile),
            seqno,
            segment_bytes: 0,
            next_lsn: scan.next_lsn,
            stats: WalStats {
                segments: scan.segments,
                recovered_records,
                recovered_checkpoint,
                ..WalStats::default()
            },
            dirty: false,
        };
        wal.start_segment(seqno)?;
        Ok((wal, scan))
    }

    fn start_segment(&mut self, seqno: u64) -> Result<(), WalError> {
        let path = segment_path(&self.dir, seqno);
        self.file = (self.factory)(&path)?;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header.extend_from_slice(&seqno.to_le_bytes());
        header.extend_from_slice(&self.next_lsn.to_le_bytes());
        self.file.write_all(&header)?;
        self.seqno = seqno;
        self.segment_bytes = HEADER_BYTES as u64;
        self.stats.segments += 1;
        self.stats.bytes_appended += HEADER_BYTES as u64;
        self.dirty = true;
        Ok(())
    }

    /// Appends one record, rotating first if the current segment is full.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        if self.segment_bytes >= self.config.segment_bytes
            && self.segment_bytes > HEADER_BYTES as u64
        {
            self.sync()?;
            self.start_segment(self.seqno + 1)?;
        }
        let payload = encode_record(record);
        debug_assert!(payload.len() as u64 <= MAX_RECORD_BYTES as u64);
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&[0u8; 4]); // crc placeholder
        frame.extend_from_slice(&self.next_lsn.to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = crc32(&frame[8..]);
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&frame)?;
        self.segment_bytes += frame.len() as u64;
        self.stats.bytes_appended += frame.len() as u64;
        self.stats.records_appended += 1;
        self.next_lsn += 1;
        self.dirty = true;
        Ok(())
    }

    /// Logs a routed event batch (no-op for an empty batch).
    pub fn append_events(&mut self, events: &[EngineEvent]) -> Result<(), WalError> {
        if events.is_empty() {
            return Ok(());
        }
        self.append(&WalRecord::Events(events.to_vec()))
    }

    /// Logs a tick command and, per [`WalConfig::fsync_on_tick`], forces
    /// everything logged so far to stable storage — the group-commit
    /// boundary: commands up to here survive any later crash.
    pub fn append_tick(&mut self, now: f64) -> Result<(), WalError> {
        self.append(&WalRecord::Tick { now })?;
        if self.config.fsync_on_tick {
            self.sync()?;
        }
        Ok(())
    }

    /// Logs a banked answer.
    pub fn append_answer(
        &mut self,
        worker: WorkerId,
        contribution: Contribution,
    ) -> Result<(), WalError> {
        self.append(&WalRecord::Answer {
            worker,
            contribution,
        })
    }

    /// Logs a worker release.
    pub fn append_release(&mut self, worker: WorkerId) -> Result<(), WalError> {
        self.append(&WalRecord::Release { worker })
    }

    /// Logs a checkpoint of `state` taken at engine tick `tick`, fsyncs it,
    /// and retires every older segment — replay now restarts from this
    /// state, so the older history is dead weight. The checkpoint always
    /// opens a fresh segment (it becomes the segment's first record), which
    /// makes retirement exact: everything before its segment goes.
    pub fn append_checkpoint(
        &mut self,
        state: &PartitionState,
        tick: u64,
    ) -> Result<(), WalError> {
        if self.segment_bytes > HEADER_BYTES as u64 {
            self.sync()?;
            self.start_segment(self.seqno + 1)?;
        }
        self.append(&WalRecord::Checkpoint(state.clone()))?;
        self.sync()?;
        self.stats.checkpoints += 1;
        self.stats.last_checkpoint_tick = tick;
        for (seqno, path) in list_segments(&self.dir)? {
            if seqno < self.seqno {
                fs::remove_file(&path)?;
                self.stats.segments_retired += 1;
                self.stats.segments = self.stats.segments.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// Forces appended bytes to stable storage (no-op when clean).
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.dirty {
            self.file.sync()?;
            self.stats.fsyncs += 1;
            self.dirty = false;
        }
        Ok(())
    }

    /// Point-in-time log counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The durability knobs this log runs with.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Placeholder file used only during `open` before the first segment
/// starts; every write to it is a bug.
struct NullFile;
impl WalFile for NullFile {
    fn write_all(&mut self, _buf: &[u8]) -> io::Result<()> {
        Err(io::Error::other("wal segment not started"))
    }
    fn sync(&mut self) -> io::Result<()> {
        Err(io::Error::other("wal segment not started"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbsc_geo::Point;
    use rdbsc_model::{Task, TaskId, TimeWindow};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rdbsc-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn task_event(id: u32) -> EngineEvent {
        EngineEvent::TaskArrived(Task::new(
            TaskId(id),
            Point::new(0.5, 0.5),
            TimeWindow::new(0.0, 10.0).unwrap(),
        ))
    }

    #[test]
    fn append_and_rescan_round_trips() {
        let dir = tempdir("roundtrip");
        let (mut wal, scan) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(scan.records.is_empty());
        wal.append_events(&[task_event(0), task_event(1)]).unwrap();
        wal.append_tick(0.5).unwrap();
        wal.append_release(WorkerId(3)).unwrap();
        wal.sync().unwrap();
        let stats = wal.stats();
        assert_eq!(stats.records_appended, 3);
        assert!(stats.fsyncs >= 1);
        drop(wal);

        let rescan = scan_dir(&dir).unwrap();
        assert_eq!(rescan.records.len(), 3);
        assert_eq!(
            rescan.records[0],
            WalRecord::Events(vec![task_event(0), task_event(1)])
        );
        assert_eq!(rescan.records[1], WalRecord::Tick { now: 0.5 });
        assert_eq!(rescan.records[2], WalRecord::Release { worker: WorkerId(3) });
        assert!(!rescan.found_damage());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_reopen_continues_the_chain() {
        let dir = tempdir("rotate");
        let config = WalConfig {
            segment_bytes: 256, // force rotation every few records
            ..WalConfig::default()
        };
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for i in 0..20 {
            wal.append_events(&[task_event(i)]).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.stats().segments > 1, "{:?}", wal.stats());
        drop(wal);

        // Re-open: all 20 records survive, and new appends chain on.
        let (mut wal, scan) = Wal::open(&dir, config).unwrap();
        assert_eq!(scan.records.len(), 20);
        wal.append_events(&[task_event(99)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let rescan = scan_dir(&dir).unwrap();
        assert_eq!(rescan.records.len(), 21);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired() {
        let dir = tempdir("torn");
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..5 {
            wal.append_events(&[task_event(i)]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Tear the last record: chop 3 bytes off the segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.records.len(), 4, "torn record drops, prefix stays");
        assert!(scan.found_damage());
        assert!(scan.dropped_bytes > 0);

        // Re-open repairs and appends resume; the torn record never
        // reappears.
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append_events(&[task_event(50)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let rescan = scan_dir(&dir).unwrap();
        assert_eq!(rescan.records.len(), 5);
        assert!(!rescan.found_damage());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inspect_describes_segments_frames_and_torn_tails() {
        let dir = tempdir("inspect");
        let config = WalConfig {
            segment_bytes: 256, // force rotation
            ..WalConfig::default()
        };
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for i in 0..12 {
            wal.append_events(&[task_event(i)]).unwrap();
        }
        wal.append_tick(1.5).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Clean log: every segment readable, lsns contiguous, kinds tagged.
        let infos = inspect_dir(&dir).unwrap();
        assert!(infos.len() > 1, "rotation expected");
        let mut next_lsn = 0;
        for info in &infos {
            assert!(!info.unreadable && !info.beyond_prefix);
            assert_eq!(info.torn_bytes, 0);
            assert_eq!(info.first_lsn, Some(next_lsn));
            for frame in &info.frames {
                assert_eq!(frame.lsn, next_lsn);
                next_lsn += 1;
            }
        }
        assert_eq!(next_lsn, 13);
        let kinds: Vec<&str> = infos.iter().flat_map(|i| i.frames.iter().map(|f| f.kind)).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "events").count(), 12);
        assert_eq!(*kinds.last().unwrap(), "tick");
        let tick_frame = infos.last().unwrap().frames.last().unwrap();
        assert_eq!(tick_frame.detail, "now=1.5");

        // Tear the *first* segment's tail: later segments leave the valid
        // prefix but are still listed, flagged beyond_prefix.
        let (_, first) = list_segments(&dir).unwrap().remove(0);
        let len = fs::metadata(&first).unwrap().len();
        fs::OpenOptions::new().write(true).open(&first).unwrap().set_len(len - 3).unwrap();
        let infos = inspect_dir(&dir).unwrap();
        assert!(infos[0].torn_bytes > 0);
        assert!(!infos[0].frames.is_empty(), "clean prefix of the torn segment survives");
        assert!(infos[1..].iter().all(|i| i.beyond_prefix));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_ends_the_prefix() {
        let dir = tempdir("flip");
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..5 {
            wal.append_events(&[task_event(i)]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = HEADER_BYTES + (bytes.len() - HEADER_BYTES) / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let scan = scan_dir(&dir).unwrap();
        assert!(scan.records.len() < 5, "corruption must end the prefix");
        assert!(scan.found_damage());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_retire_older_segments() {
        use crate::engine::{AssignmentEngine, EngineConfig};
        use rdbsc_index::GridIndex;
        let dir = tempdir("retire");
        let config = WalConfig {
            segment_bytes: 200,
            ..WalConfig::default()
        };
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for i in 0..30 {
            wal.append_events(&[task_event(i)]).unwrap();
        }
        let before = wal.stats().segments;
        assert!(before > 2);

        let engine: AssignmentEngine<GridIndex> = AssignmentEngine::new(
            GridIndex::new(rdbsc_geo::Rect::unit(), 0.25),
            EngineConfig::default(),
        );
        let state = PartitionState {
            last_now: 1.0,
            events_applied: 30,
            total_assignments: 0,
            engine: engine.dump_state(),
        };
        wal.append_checkpoint(&state, 7).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.segments, 1, "only the checkpoint's segment survives");
        assert_eq!(stats.segments_retired, before, "checkpoint opens a fresh segment");
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.last_checkpoint_tick, 7);
        drop(wal);

        // Replay restarts from the checkpoint: the retired events are gone,
        // the checkpoint carries the state.
        let scan = scan_dir(&dir).unwrap();
        let (checkpoint, tail) = scan.recovery_plan();
        let recovered = checkpoint.expect("checkpoint survives");
        assert_eq!(recovered.events_applied, 30);
        assert_eq!(recovered.digest(), state.digest());
        assert!(tail.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_directory_scans_to_an_empty_prefix() {
        let dir = tempdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(segment_path(&dir, 0), b"not a wal segment at all").unwrap();
        fs::write(dir.join("configure.json"), b"{}").unwrap(); // ignored
        let scan = scan_dir(&dir).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.found_damage());
        // Opening repairs: the garbage segment is deleted, appends work.
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append_events(&[task_event(1)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(scan_dir(&dir).unwrap().records.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
