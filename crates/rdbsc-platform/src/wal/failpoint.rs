//! Fault injection for the log's write path.
//!
//! [`FailpointWriter`] wraps any [`WalFile`](super::WalFile) and applies a
//! shared, mutable [`FaultPlan`]: stop persisting after N bytes (a crash
//! that tears the tail mid-record), flip bytes at chosen stream offsets
//! (silent media corruption), fail the Nth write or the next sync
//! (`ENOSPC`, pulled disk). The proptests in `tests/proptest_wal.rs` drive
//! the appender through these faults and assert the recovery invariant:
//! whatever the fault, a re-open yields a *prefix* of the appended record
//! stream — never a corrupted state, never a panic.

use super::WalFile;
use std::io;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct FaultState {
    writes_done: u64,
    stream_offset: u64,
    error_after_writes: Option<u64>,
    persist_limit: Option<u64>,
    flips: Vec<u64>,
    fail_sync: bool,
}

/// A shared, clonable handle steering one or more [`FailpointWriter`]s.
///
/// Tests keep a clone and arm faults while the appender owns the writer;
/// all methods may be called at any time.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Arc<Mutex<FaultState>>,
}

impl FaultPlan {
    /// A plan with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault plan lock poisoned")
    }

    /// Fail every write after the next `n` write calls succeed.
    pub fn error_after_writes(&self, n: u64) {
        let mut s = self.lock();
        let base = s.writes_done;
        s.error_after_writes = Some(base + n);
    }

    /// Silently stop persisting once `bytes` bytes of the write stream have
    /// reached the file: later bytes are accepted but dropped, like page
    /// cache lost to a crash. A limit falling mid-record tears that record.
    pub fn persist_at_most(&self, bytes: u64) {
        self.lock().persist_limit = Some(bytes);
    }

    /// Flip (XOR `0xFF`) the byte at absolute write-stream `offset` as it
    /// passes through.
    pub fn flip_byte(&self, offset: u64) {
        self.lock().flips.push(offset);
    }

    /// Fail every subsequent sync.
    pub fn fail_sync(&self) {
        self.lock().fail_sync = true;
    }

    /// Disarm every fault (new writes pass through verbatim again).
    pub fn clear(&self) {
        let mut s = self.lock();
        s.error_after_writes = None;
        s.persist_limit = None;
        s.flips.clear();
        s.fail_sync = false;
    }

    /// Total bytes offered to the writer so far (persisted or dropped) —
    /// lets a test aim [`FaultPlan::persist_at_most`] at a record boundary
    /// or mid-record.
    pub fn bytes_offered(&self) -> u64 {
        self.lock().stream_offset
    }

    /// Write calls observed so far.
    pub fn writes_observed(&self) -> u64 {
        self.lock().writes_done
    }
}

/// A [`WalFile`] decorator that applies a [`FaultPlan`] to every write and
/// sync (see the module docs).
pub struct FailpointWriter<W: WalFile> {
    inner: W,
    plan: FaultPlan,
}

impl<W: WalFile> FailpointWriter<W> {
    /// Wraps `inner`, steering it by `plan`.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        Self { inner, plan }
    }
}

impl<W: WalFile> WalFile for FailpointWriter<W> {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let (persist, offset) = {
            let mut s = self.plan.lock();
            if s.error_after_writes.is_some_and(|limit| s.writes_done >= limit) {
                return Err(io::Error::other("injected write failure"));
            }
            s.writes_done += 1;
            let offset = s.stream_offset;
            s.stream_offset += buf.len() as u64;
            // How much of this chunk survives the persistence limit.
            let persist = match s.persist_limit {
                Some(limit) => (limit.saturating_sub(offset) as usize).min(buf.len()),
                None => buf.len(),
            };
            let mut chunk = buf[..persist].to_vec();
            for &flip in &s.flips {
                if flip >= offset && flip < offset + persist as u64 {
                    chunk[(flip - offset) as usize] ^= 0xFF;
                }
            }
            (chunk, offset)
        };
        let _ = offset;
        if persist.is_empty() {
            return Ok(());
        }
        self.inner.write_all(&persist)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.plan.lock().fail_sync {
            return Err(io::Error::other("injected sync failure"));
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct MemFile(Vec<u8>);
    impl WalFile for MemFile {
        fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            self.0.extend_from_slice(buf);
            Ok(())
        }
        fn sync(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn faults_apply_in_stream_order() {
        let plan = FaultPlan::new();
        let mut w = FailpointWriter::new(MemFile::default(), plan.clone());
        w.write_all(b"abcd").unwrap();
        plan.flip_byte(5); // the 'f' of the next chunk
        plan.persist_at_most(7);
        w.write_all(b"efgh").unwrap(); // persists only "e!g" with f flipped
        assert_eq!(plan.bytes_offered(), 8);
        plan.error_after_writes(0);
        assert!(w.write_all(b"ij").is_err());
        assert!(w.sync().is_ok());
        plan.fail_sync();
        assert!(w.sync().is_err());
        assert_eq!(w.inner.0.len(), 7);
        assert_eq!(&w.inner.0[..4], b"abcd");
        assert_eq!(w.inner.0[5], b'f' ^ 0xFF);
    }
}
