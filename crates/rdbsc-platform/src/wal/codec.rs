//! Canonical binary encoding for log records and checkpoint state.
//!
//! Fixed-width little-endian fields, no varints, no padding: the same state
//! always encodes to the same bytes, which is what makes the FNV digest of
//! an encoded [`PartitionState`] a usable *state identity* — two partitions
//! are in the same logical state iff their encodings match. Floats are
//! carried as raw IEEE-754 bit patterns so the round trip is exact.
//!
//! Decoding is fully checked: every read is bounds-tested and every
//! reconstructed domain value goes back through its validating constructor,
//! so arbitrary byte garbage yields a [`WalError::Corrupt`] — never a panic
//! and never a silently wrong value. Collection lengths are sanity-checked
//! against the remaining payload before any allocation.

use super::{PartitionState, WalError, WalRecord};
use crate::engine::{EngineEvent, EngineState};
use rdbsc_geo::{AngleRange, Point};
use rdbsc_model::{Confidence, Contribution, Task, TaskId, TimeWindow, Worker, WorkerId};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the segment
/// record checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    // The 256-entry table costs 1 KiB; building it lazily once is cheaper
    // than the bitwise loop per byte and keeps the function dependency-free.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a over a byte string — the digest the recovery tests compare.
/// Delegates to the canonical fold in [`rdbsc_obs::digest`] so the WAL and
/// the cross-topology benches can never drift apart constant-by-constant.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    rdbsc_obs::digest::fnv1a_bytes(bytes)
}

/// An append-only byte sink with the codec's primitive writers.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn point(&mut self, p: Point) {
        self.f64(p.x);
        self.f64(p.y);
    }

    fn task(&mut self, t: &Task) {
        self.u32(t.id.0);
        self.point(t.location);
        self.f64(t.window.start);
        self.f64(t.window.end);
        match t.beta {
            Some(beta) => {
                self.u8(1);
                self.f64(beta);
            }
            None => self.u8(0),
        }
    }

    fn worker(&mut self, w: &Worker) {
        self.u32(w.id.0);
        self.point(w.location);
        self.f64(w.speed);
        self.f64(w.heading.start());
        self.f64(w.heading.width());
        self.f64(w.confidence.value());
        self.f64(w.available_from);
    }

    fn contribution(&mut self, c: &Contribution) {
        self.f64(c.confidence.value());
        self.f64(c.angle);
        self.f64(c.arrival);
    }

    fn event(&mut self, e: &EngineEvent) {
        match e {
            EngineEvent::TaskArrived(t) => {
                self.u8(0);
                self.task(t);
            }
            EngineEvent::TaskExpired(id) => {
                self.u8(1);
                self.u32(id.0);
            }
            EngineEvent::WorkerCheckIn(w) => {
                self.u8(2);
                self.worker(w);
            }
            EngineEvent::WorkerMoved(id, to) => {
                self.u8(3);
                self.u32(id.0);
                self.point(*to);
            }
            EngineEvent::WorkerLeft(id) => {
                self.u8(4);
                self.u32(id.0);
            }
        }
    }

    fn engine_state(&mut self, s: &EngineState) {
        self.f64(s.depart_at);
        self.bool(s.allow_wait);
        self.u64(s.tick_count);
        self.u32(s.tasks.len() as u32);
        for t in &s.tasks {
            self.task(t);
        }
        self.u32(s.workers.len() as u32);
        for w in &s.workers {
            self.worker(w);
        }
        self.u32(s.pending.len() as u32);
        for e in &s.pending {
            self.event(e);
        }
        self.u32(s.committed.len() as u32);
        for (w, t, c) in &s.committed {
            self.u32(w.0);
            self.u32(t.0);
            self.contribution(c);
        }
        self.u32(s.banked.len() as u32);
        for (t, cs) in &s.banked {
            self.u32(t.0);
            self.u32(cs.len() as u32);
            for c in cs {
                self.contribution(c);
            }
        }
        self.u32(s.retired.len() as u32);
        for t in &s.retired {
            self.task(t);
        }
    }

    fn partition_state(&mut self, s: &PartitionState) {
        self.f64(s.last_now);
        self.u64(s.events_applied);
        self.u64(s.total_assignments);
        self.engine_state(&s.engine);
    }
}

/// Encodes a record as the payload of one log frame.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut e = Encoder::new();
    match record {
        WalRecord::Events(events) => {
            e.u8(1);
            e.u32(events.len() as u32);
            for event in events {
                e.event(event);
            }
        }
        WalRecord::Tick { now } => {
            e.u8(2);
            e.f64(*now);
        }
        WalRecord::Answer {
            worker,
            contribution,
        } => {
            e.u8(3);
            e.u32(worker.0);
            e.contribution(contribution);
        }
        WalRecord::Release { worker } => {
            e.u8(4);
            e.u32(worker.0);
        }
        WalRecord::Checkpoint(state) => {
            e.u8(5);
            e.partition_state(state);
        }
        WalRecord::ReplMeta { acked, sealed } => {
            e.u8(6);
            e.u64(*acked);
            e.bool(*sealed);
        }
    }
    e.into_bytes()
}

/// Encodes a partition state alone — the canonical byte identity the FNV
/// digest is taken over.
pub fn encode_partition_state(state: &PartitionState) -> Vec<u8> {
    let mut e = Encoder::new();
    e.partition_state(state);
    e.into_bytes()
}

/// A bounds-checked cursor over an encoded payload.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &'static str) -> WalError {
    WalError::Corrupt(what.to_string())
}

impl<'a> Decoder<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.remaining() < n {
            return Err(corrupt("payload truncated"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, WalError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(corrupt("invalid bool")),
        }
    }
    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WalError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn point(&mut self) -> Result<Point, WalError> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }

    /// A collection length, sanity-checked against the remaining bytes so a
    /// garbage length can never trigger a huge allocation (`min_bytes` is
    /// the smallest possible encoding of one element).
    fn len(&mut self, min_bytes: usize) -> Result<usize, WalError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes) > self.remaining() {
            return Err(corrupt("length exceeds payload"));
        }
        Ok(n)
    }

    fn task(&mut self) -> Result<Task, WalError> {
        let id = TaskId(self.u32()?);
        let location = self.point()?;
        let start = self.f64()?;
        let end = self.f64()?;
        let window = TimeWindow::new(start, end).map_err(|_| corrupt("invalid time window"))?;
        match self.u8()? {
            0 => Ok(Task::new(id, location, window)),
            1 => {
                let beta = self.f64()?;
                Task::with_beta(id, location, window, beta).map_err(|_| corrupt("invalid beta"))
            }
            _ => Err(corrupt("invalid beta tag")),
        }
    }

    fn worker(&mut self) -> Result<Worker, WalError> {
        let id = WorkerId(self.u32()?);
        let location = self.point()?;
        let speed = self.f64()?;
        let heading = AngleRange::new(self.f64()?, self.f64()?);
        let confidence =
            Confidence::new(self.f64()?).map_err(|_| corrupt("invalid confidence"))?;
        let available_from = self.f64()?;
        Worker::new(id, location, speed, heading, confidence)
            .map_err(|_| corrupt("invalid worker"))
            .map(|w| w.with_available_from(available_from))
    }

    fn contribution(&mut self) -> Result<Contribution, WalError> {
        let confidence =
            Confidence::new(self.f64()?).map_err(|_| corrupt("invalid confidence"))?;
        Ok(Contribution {
            confidence,
            angle: self.f64()?,
            arrival: self.f64()?,
        })
    }

    fn event(&mut self) -> Result<EngineEvent, WalError> {
        match self.u8()? {
            0 => Ok(EngineEvent::TaskArrived(self.task()?)),
            1 => Ok(EngineEvent::TaskExpired(TaskId(self.u32()?))),
            2 => Ok(EngineEvent::WorkerCheckIn(self.worker()?)),
            3 => Ok(EngineEvent::WorkerMoved(WorkerId(self.u32()?), self.point()?)),
            4 => Ok(EngineEvent::WorkerLeft(WorkerId(self.u32()?))),
            _ => Err(corrupt("invalid event tag")),
        }
    }

    fn engine_state(&mut self) -> Result<EngineState, WalError> {
        let depart_at = self.f64()?;
        let allow_wait = self.bool()?;
        let tick_count = self.u64()?;
        let num_tasks = self.len(37)?;
        let mut tasks = Vec::with_capacity(num_tasks);
        for _ in 0..num_tasks {
            tasks.push(self.task()?);
        }
        let num_workers = self.len(60)?;
        let mut workers = Vec::with_capacity(num_workers);
        for _ in 0..num_workers {
            workers.push(self.worker()?);
        }
        let num_pending = self.len(5)?;
        let mut pending = Vec::with_capacity(num_pending);
        for _ in 0..num_pending {
            pending.push(self.event()?);
        }
        let num_committed = self.len(32)?;
        let mut committed = Vec::with_capacity(num_committed);
        for _ in 0..num_committed {
            let w = WorkerId(self.u32()?);
            let t = TaskId(self.u32()?);
            committed.push((w, t, self.contribution()?));
        }
        let num_banked = self.len(8)?;
        let mut banked = Vec::with_capacity(num_banked);
        for _ in 0..num_banked {
            let t = TaskId(self.u32()?);
            let num_cs = self.len(24)?;
            let mut cs = Vec::with_capacity(num_cs);
            for _ in 0..num_cs {
                cs.push(self.contribution()?);
            }
            banked.push((t, cs));
        }
        let num_retired = self.len(37)?;
        let mut retired = Vec::with_capacity(num_retired);
        for _ in 0..num_retired {
            retired.push(self.task()?);
        }
        Ok(EngineState {
            depart_at,
            allow_wait,
            tasks,
            workers,
            pending,
            committed,
            banked,
            retired,
            tick_count,
        })
    }

    fn partition_state(&mut self) -> Result<PartitionState, WalError> {
        Ok(PartitionState {
            last_now: self.f64()?,
            events_applied: self.u64()?,
            total_assignments: self.u64()?,
            engine: self.engine_state()?,
        })
    }
}

/// Decodes one record payload (the inverse of [`encode_record`]); trailing
/// bytes after a well-formed record are corruption.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, WalError> {
    let mut d = Decoder::new(payload);
    let record = match d.u8()? {
        1 => {
            let num_events = d.len(5)?;
            let mut events = Vec::with_capacity(num_events);
            for _ in 0..num_events {
                events.push(d.event()?);
            }
            WalRecord::Events(events)
        }
        2 => WalRecord::Tick { now: d.f64()? },
        3 => WalRecord::Answer {
            worker: WorkerId(d.u32()?),
            contribution: d.contribution()?,
        },
        4 => WalRecord::Release {
            worker: WorkerId(d.u32()?),
        },
        5 => WalRecord::Checkpoint(d.partition_state()?),
        6 => WalRecord::ReplMeta {
            acked: d.u64()?,
            sealed: d.bool()?,
        },
        _ => return Err(corrupt("invalid record tag")),
    };
    if d.remaining() != 0 {
        return Err(corrupt("trailing bytes after record"));
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    fn sample_events() -> Vec<EngineEvent> {
        let task = Task::with_beta(
            TaskId(7),
            Point::new(0.25, 0.75),
            TimeWindow::new(1.0, 9.5).unwrap(),
            0.3,
        )
        .unwrap();
        let worker = Worker::new(
            WorkerId(3),
            Point::new(0.5, 0.5),
            0.4,
            AngleRange::new(1.0, 2.5),
            Confidence::new(0.85).unwrap(),
        )
        .unwrap()
        .with_available_from(2.5);
        vec![
            EngineEvent::TaskArrived(task),
            EngineEvent::TaskExpired(TaskId(2)),
            EngineEvent::WorkerCheckIn(worker),
            EngineEvent::WorkerMoved(WorkerId(3), Point::new(0.1, 0.9)),
            EngineEvent::WorkerLeft(WorkerId(4)),
        ]
    }

    #[test]
    fn records_round_trip() {
        let contribution = Contribution {
            confidence: Confidence::new(0.9).unwrap(),
            angle: 1.25,
            arrival: 3.5,
        };
        let records = vec![
            WalRecord::Events(sample_events()),
            WalRecord::Tick { now: 4.25 },
            WalRecord::Answer {
                worker: WorkerId(3),
                contribution,
            },
            WalRecord::Release { worker: WorkerId(9) },
            WalRecord::ReplMeta {
                acked: 412,
                sealed: false,
            },
            WalRecord::ReplMeta {
                acked: u64::MAX,
                sealed: true,
            },
        ];
        for record in records {
            let bytes = encode_record(&record);
            assert_eq!(decode_record(&bytes).unwrap(), record);
        }
    }

    #[test]
    fn garbage_payloads_error_instead_of_panicking() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let n = rng.gen_range(0..200usize);
            let bytes: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            let _ = decode_record(&bytes); // must return, never panic
        }
        // A huge claimed length must not allocate.
        let mut bytes = vec![1u8]; // Events
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_record(&bytes).is_err());
    }
}
