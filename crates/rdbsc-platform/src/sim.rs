//! The gMission-style platform simulator (Sections 8.1 and 8.4).
//!
//! The simulated deployment mirrors the paper's live experiment: a handful of
//! *sites* repeatedly ask photo tasks that stay open for a fixed duration, a
//! small population of walking *users* answers them, and the platform
//! re-assigns the available users to the open tasks every `t_interval` using
//! the incremental updating strategy (Figure 10). Users complete their
//! assigned task with their (peer-rating-derived) confidence and submit an
//! answer with angular/temporal noise; the simulator tracks the minimum task
//! reliability, the total expected diversity, the answer accuracy and the
//! coverage scores over the whole testing period — exactly the quantities the
//! paper reports in Figures 18–20.

use crate::accuracy::{task_accuracy, AnswerRecord};
use crate::coverage::{coverage_report, CoverageReport};
use rand::Rng;
use rand_distr::{Distribution as RandDistribution, Normal};
use rdbsc_algos::{IncrementalAssigner, IncrementalConfig, Solver};
use rdbsc_index::cost_model::{optimal_eta, CostModelParams};
use rdbsc_index::{GridIndex, SpatialIndex};
use rdbsc_model::{
    BipartiteCandidates, Confidence, ObjectiveValue, ProblemInstance, Task, TaskId, TimeWindow,
    ValidPair, Worker, WorkerId,
};
use rdbsc_geo::{AngleRange, Point, Rect};
use rdbsc_workloads::{PeerRatingModel, RatedUser};
use std::collections::HashMap;

/// Configuration of the platform simulation.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Number of sites asking tasks (the paper used 5).
    pub num_sites: usize,
    /// Number of users/workers (the paper hired 10).
    pub num_users: usize,
    /// How long each task stays open (the paper used 15 minutes).
    pub task_open_duration: f64,
    /// Length of the periodic update interval `t_interval` (1–4 minutes in
    /// the paper).
    pub t_interval: f64,
    /// Total simulated duration.
    pub total_duration: f64,
    /// Walking speed of users, in data-space units per minute. Sites are
    /// placed so that walking between neighbouring sites takes roughly two
    /// minutes, as in the paper.
    pub user_speed: f64,
    /// Balance weight β used by the tasks.
    pub beta: f64,
    /// Standard deviation of the angular answer noise (radians).
    pub angle_noise: f64,
    /// Standard deviation of the temporal answer noise (minutes).
    pub time_noise: f64,
    /// Field of view assumed for the coverage report.
    pub field_of_view: f64,
    /// Temporal tolerance assumed for the coverage report.
    pub time_tolerance: f64,
    /// Number of photos per user in the peer-rating warm-up.
    pub rating_photos_per_user: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            num_sites: 5,
            num_users: 10,
            task_open_duration: 15.0,
            t_interval: 1.0,
            total_duration: 60.0,
            user_speed: 0.05,
            beta: 0.5,
            angle_noise: 0.2,
            time_noise: 0.5,
            field_of_view: std::f64::consts::FRAC_PI_3,
            time_tolerance: 2.0,
            rating_photos_per_user: 12,
        }
    }
}

/// Per-round statistics.
#[derive(Debug, Clone, Copy)]
pub struct RoundStats {
    /// Simulation time at the end of the round.
    pub time: f64,
    /// Number of workers newly assigned in this round.
    pub new_assignments: usize,
    /// Number of answers received during this round.
    pub answers_received: usize,
    /// Objective value of the platform state after the round.
    pub objective: ObjectiveValue,
}

/// Final report of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// Minimum task reliability at the end of the run.
    pub min_reliability: f64,
    /// Total expected diversity at the end of the run.
    pub total_std: f64,
    /// Mean answer accuracy over all received answers (`None` when no answer
    /// was received).
    pub mean_accuracy: Option<f64>,
    /// Total number of answers received.
    pub total_answers: usize,
    /// Coverage report per task.
    pub coverage: Vec<(TaskId, CoverageReport)>,
}

impl SimulationReport {
    /// Mean combined coverage over the tasks that received answers.
    pub fn mean_coverage(&self, beta: f64) -> f64 {
        let covered: Vec<f64> = self
            .coverage
            .iter()
            .filter(|(_, c)| c.answers > 0)
            .map(|(_, c)| c.combined(beta))
            .collect();
        if covered.is_empty() {
            0.0
        } else {
            covered.iter().sum::<f64>() / covered.len() as f64
        }
    }
}

/// A travelling user within the simulation.
#[derive(Debug, Clone, Copy)]
struct UserState {
    position: Point,
    /// Latent photo quality (kept for inspection/tests; the platform itself
    /// only sees the peer-rating-derived confidence).
    #[allow(dead_code)]
    latent_quality: f64,
    confidence: Confidence,
    /// The pair the user is currently serving, if any.
    en_route: Option<ValidPair>,
}

/// The platform simulator, generic over the spatial index its per-round
/// candidate retrieval runs on (the classic grid by default).
pub struct PlatformSim<I: SpatialIndex = GridIndex> {
    config: PlatformConfig,
    tasks: Vec<Task>,
    users: Vec<UserState>,
    answers: HashMap<TaskId, Vec<(AnswerRecord, f64, f64)>>, // (record, direction, time)
    assigner: IncrementalAssigner,
    /// The live index: all of the run's tasks plus the users' current
    /// positions, maintained incrementally across rounds.
    index: I,
}

impl PlatformSim<GridIndex> {
    /// Builds a simulation: lays the sites out, creates one task per site per
    /// opening wave over the whole duration, and derives user reliabilities
    /// from the peer-rating model. Candidates are retrieved through a
    /// cost-model-sized [`GridIndex`]; use
    /// [`PlatformSim::with_index`] to run on a different backend.
    pub fn new<R: Rng + ?Sized>(config: PlatformConfig, solver: Solver, rng: &mut R) -> Self {
        // L_max: the farthest a user can walk while one task wave is open.
        let l_max = (config.user_speed * config.task_open_duration).clamp(1e-3, 1.0);
        let num_sites = config.num_sites.max(1);
        let waves = (config.total_duration / config.task_open_duration.max(1e-9)).ceil() as usize;
        let params = CostModelParams::uniform(l_max, (num_sites * waves.max(1)).max(2));
        let index = GridIndex::new(Rect::unit(), optimal_eta(&params));
        Self::with_index(config, solver, index, rng)
    }
}

impl<I: SpatialIndex> PlatformSim<I> {
    /// Builds a simulation on an explicit (empty) spatial-index backend.
    pub fn with_index<R: Rng + ?Sized>(
        config: PlatformConfig,
        solver: Solver,
        index: I,
        rng: &mut R,
    ) -> Self {
        // Sites on a circle whose neighbouring distance is walkable in about
        // two minutes at the configured speed.
        let spacing = 2.0 * config.user_speed;
        let radius = spacing / (2.0 * (std::f64::consts::PI / config.num_sites.max(1) as f64).sin());
        let center = Point::new(0.5, 0.5);
        let sites: Vec<Point> = (0..config.num_sites.max(1))
            .map(|i| {
                let angle = std::f64::consts::TAU * i as f64 / config.num_sites.max(1) as f64;
                center.translate_polar(angle, radius)
            })
            .collect();

        // One task per site per opening wave, with dense ids (the same
        // renumbering `ProblemInstance::new` applies, so the live index and
        // the per-round instances always agree on ids).
        let mut tasks = Vec::new();
        let mut wave_start = 0.0;
        while wave_start < config.total_duration {
            for site in &sites {
                let end = (wave_start + config.task_open_duration).min(config.total_duration);
                tasks.push(Task::new(
                    TaskId::from(tasks.len()),
                    *site,
                    TimeWindow::new(wave_start, end).expect("valid wave window"),
                ));
            }
            wave_start += config.task_open_duration;
        }
        let mut index = index;
        for task in &tasks {
            index.insert_task(*task);
        }

        // Users with peer-rated reliabilities, starting near the centre.
        let rating = PeerRatingModel::default();
        let users: Vec<UserState> = (0..config.num_users)
            .map(|_| {
                let latent_quality = rng.gen_range(0.6..0.98);
                let confidence = rating.user_reliability(
                    &RatedUser {
                        latent_quality,
                        num_photos: config.rating_photos_per_user,
                    },
                    rng,
                );
                let position = Point::new(rng.gen_range(0.35..0.65), rng.gen_range(0.35..0.65));
                UserState {
                    position,
                    latent_quality,
                    confidence,
                    en_route: None,
                }
            })
            .collect();

        let num_tasks = tasks.len();
        let num_users = users.len();
        Self {
            config,
            tasks,
            users,
            answers: HashMap::new(),
            assigner: IncrementalAssigner::new(
                num_tasks,
                num_users,
                IncrementalConfig { solver },
            ),
            index,
        }
    }

    /// Number of tasks generated for the whole run.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Builds the instance view of the platform at time `now`.
    fn instance_at(&self, now: f64) -> ProblemInstance {
        let workers: Vec<Worker> = self
            .users
            .iter()
            .enumerate()
            .map(|(i, u)| {
                Worker::new(
                    WorkerId::from(i),
                    u.position,
                    self.config.user_speed,
                    AngleRange::full(),
                    u.confidence,
                )
                .expect("speed is non-negative")
                .with_available_from(now)
            })
            .collect();
        let mut instance = ProblemInstance::new(self.tasks.clone(), workers, self.config.beta);
        instance.depart_at = now;
        instance
    }

    /// Valid pairs at time `now`, retrieved through the live index: expired
    /// task waves are dropped from the index, the users' fresh positions and
    /// availability are written in, and the cell-pruned retrieval produces
    /// exactly the pairs the brute-force `check_pair` scan would.
    fn candidates_at(&mut self, instance: &ProblemInstance, now: f64) -> BipartiteCandidates {
        for id in self.index.expired_tasks(now) {
            self.index.remove_task(id);
        }
        for worker in &instance.workers {
            self.index.insert_worker(*worker);
        }
        self.index.set_depart_at(now);
        self.index.set_allow_wait(instance.allow_wait);
        self.index.retrieve_valid_pairs()
    }

    /// Runs the whole simulation and returns the report.
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SimulationReport {
        let mut rounds = Vec::new();
        let mut now = 0.0;
        let mut final_instance = self.instance_at(0.0);
        while now < self.config.total_duration {
            let round_end = (now + self.config.t_interval).min(self.config.total_duration);

            // 1. Assign available users to open tasks.
            let instance = self.instance_at(now);
            let candidates = self.candidates_at(&instance, now);
            let outcome = self.assigner.assign_round(&instance, &candidates, rng);
            for pair in &outcome.new_pairs {
                self.users[pair.worker.index()].en_route = Some(*pair);
            }

            // 2. Let users travel; those whose arrival falls inside this
            //    round either complete the task (with their confidence) or
            //    give up.
            let mut answers_received = 0usize;
            for i in 0..self.users.len() {
                let Some(pair) = self.users[i].en_route else {
                    continue;
                };
                if pair.contribution.arrival > round_end {
                    continue; // still travelling
                }
                let task = &self.tasks[pair.task.index()];
                let success = rng.gen::<f64>() < self.users[i].confidence.value();
                if success {
                    // Noisy answer: facing direction and answer time deviate
                    // from the planned contribution.
                    let angle_noise: Normal<f64> =
                        Normal::new(0.0, self.config.angle_noise.max(1e-9)).expect("valid normal");
                    let time_noise: Normal<f64> =
                        Normal::new(0.0, self.config.time_noise.max(1e-9)).expect("valid normal");
                    let d_theta = angle_noise.sample(rng).abs();
                    let d_t = time_noise.sample(rng).abs();
                    let record = AnswerRecord::new(d_theta, d_t, task.window);
                    let direction = pair.contribution.angle + d_theta;
                    let answer_time = task.window.clamp(pair.contribution.arrival + d_t);
                    self.answers
                        .entry(pair.task)
                        .or_default()
                        .push((record, direction, answer_time));
                    // The answer's realised contribution is banked.
                    let realised = rdbsc_model::Contribution::new(
                        self.users[i].confidence,
                        direction,
                        answer_time,
                    );
                    self.assigner.record_answer(pair.worker, realised);
                    answers_received += 1;
                } else {
                    self.assigner.release_worker(pair.worker);
                }
                // Either way the user is now at the task location.
                self.users[i].position = task.location;
                self.users[i].en_route = None;
            }

            now = round_end;
            final_instance = instance;
            rounds.push(RoundStats {
                time: now,
                new_assignments: outcome.new_pairs.len(),
                answers_received,
                objective: self.assigner.current_objective(&final_instance),
            });
        }

        // Final aggregation.
        let objective = self.assigner.current_objective(&final_instance);
        let mut accuracies = Vec::new();
        let mut coverage = Vec::new();
        for (task_id, entries) in &self.answers {
            let task = &self.tasks[task_id.index()];
            let records: Vec<AnswerRecord> = entries.iter().map(|(r, _, _)| *r).collect();
            if let Some(acc) = task_accuracy(&records, task.window, self.config.beta) {
                accuracies.push(acc);
            }
            let answer_pairs: Vec<(f64, f64)> =
                entries.iter().map(|(_, dir, t)| (*dir, *t)).collect();
            coverage.push((
                *task_id,
                coverage_report(
                    &answer_pairs,
                    task.window,
                    self.config.field_of_view,
                    self.config.time_tolerance,
                ),
            ));
        }
        coverage.sort_by_key(|(t, _)| t.index());
        let mean_accuracy = if accuracies.is_empty() {
            None
        } else {
            Some(accuracies.iter().sum::<f64>() / accuracies.len() as f64)
        };
        let total_answers = self.answers.values().map(|v| v.len()).sum();

        SimulationReport {
            rounds,
            min_reliability: objective.min_reliability,
            total_std: objective.total_std,
            mean_accuracy,
            total_answers,
            coverage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdbsc_algos::SamplingConfig;

    fn quick_config(t_interval: f64) -> PlatformConfig {
        PlatformConfig {
            total_duration: 30.0,
            t_interval,
            ..PlatformConfig::default()
        }
    }

    fn solver() -> Solver {
        Solver::Sampling(SamplingConfig {
            min_samples: 8,
            max_samples: 64,
            ..SamplingConfig::default()
        })
    }

    #[test]
    fn simulation_produces_rounds_and_answers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = PlatformSim::new(quick_config(1.0), solver(), &mut rng);
        assert!(sim.num_tasks() >= 5);
        let report = sim.run(&mut rng);
        assert_eq!(report.rounds.len(), 30);
        assert!(report.total_answers > 0, "some answers must arrive in 30 minutes");
        assert!(report.min_reliability > 0.0);
        assert!(report.total_std > 0.0);
        let acc = report.mean_accuracy.expect("answers exist");
        assert!((0.0..=1.0).contains(&acc));
        assert!(acc > 0.5, "answers with modest noise should score well, got {acc}");
    }

    #[test]
    fn coverage_is_reported_for_answered_tasks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sim = PlatformSim::new(quick_config(1.0), solver(), &mut rng);
        let report = sim.run(&mut rng);
        let answered: Vec<_> = report.coverage.iter().filter(|(_, c)| c.answers > 0).collect();
        assert!(!answered.is_empty());
        for (_, c) in answered {
            assert!(c.angular >= 0.0 && c.angular <= 1.0);
            assert!(c.temporal >= 0.0 && c.temporal <= 1.0);
        }
        assert!(report.mean_coverage(0.5) > 0.0);
    }

    #[test]
    fn larger_update_interval_gives_fewer_rounds_and_less_diversity() {
        // The paper's Figure 18(b): total_STD decreases as t_interval grows.
        let run_with = |interval: f64| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut sim = PlatformSim::new(quick_config(interval), solver(), &mut rng);
            sim.run(&mut rng)
        };
        let fast = run_with(1.0);
        let slow = run_with(4.0);
        assert!(fast.rounds.len() > slow.rounds.len());
        assert!(
            fast.total_std >= slow.total_std * 0.8,
            "frequent updates should not collect clearly less diversity (fast {}, slow {})",
            fast.total_std,
            slow.total_std
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut sim = PlatformSim::new(quick_config(2.0), solver(), &mut rng);
            let r = sim.run(&mut rng);
            (r.total_answers, r.total_std)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-12);
    }

    #[test]
    fn users_latent_quality_field_is_used_for_rating() {
        // Smoke test that higher-quality populations end up with higher
        // confidences (exercises the latent_quality plumbing).
        let mut rng = StdRng::seed_from_u64(4);
        let sim = PlatformSim::new(quick_config(1.0), solver(), &mut rng);
        for u in &sim.users {
            assert!(u.confidence.value() > 0.3);
            assert!(u.latent_quality >= 0.6);
        }
    }
}
