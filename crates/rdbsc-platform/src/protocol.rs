//! The partition command protocol: the explicit, versioned API one spatial
//! partition serves to the router.
//!
//! PR 4 partitioned the engine by region, but the router talked to its
//! engines through hard-wired `mpsc` channel ends — an implementation, not
//! an interface, and one that pinned every partition into the router's
//! process. This module turns the per-partition surface into a first-class
//! **protocol**:
//!
//! * [`PartitionClient`] — the object-safe, `Send` trait covering the full
//!   command surface a partition serves: submit a routed event batch, run a
//!   lockstep tick (returning the tick report plus the partition's committed
//!   worker set, the router's handoff oracle), bank an answer, release a
//!   worker, list assignments, snapshot, residency probe, drain and
//!   shutdown. The router ([`crate::partition::PartitionedEngine`]) holds
//!   one `Box<dyn PartitionClient>` per region and nothing else — whether
//!   the engine lives on a thread or on another host is the backend's
//!   business.
//! * [`InProcessClient`] — the thread-per-partition backend: today's
//!   engine-on-an-OS-thread behind channels, now just one implementation of
//!   the protocol.
//! * `rdbsc-server::HttpPartitionClient` — the wire backend: the same
//!   protocol over persistent keep-alive HTTP/1.1 to an `rdbsc-partitiond`
//!   daemon hosting the partition's engine in its own process (or on its
//!   own host).
//!
//! ## Split-phase commands
//!
//! The lockstep tick is the one operation where partitions must run
//! **concurrently** — the round's wall time is the slowest partition's, not
//! the sum. A synchronous `tick()` call per client would serialise remote
//! solves, so the hot commands are split-phase: [`PartitionClient::begin_tick`]
//! dispatches the command (channel send, or HTTP request write) and
//! [`PartitionClient::finish_tick`] collects the reply (channel receive, or
//! HTTP response read). The router begins on every partition before
//! finishing any, so N daemons solve their regions at the same time. Submit
//! gets the same treatment — it is the ingestion hot path.
//!
//! ## Versioning
//!
//! [`PROTOCOL_VERSION`] names the command-surface revision. In-process
//! clients are always current; wire backends perform a handshake and refuse
//! to drive a daemon speaking a different version.
//!
//! ## Determinism
//!
//! The protocol carries exactly the information the PR 4 router used, so
//! the determinism contract is transport-independent: byte-identical event
//! streams produce byte-identical tick replies whether a partition is a
//! thread or a daemon (floats survive the wire because the JSON codec
//! prints shortest-round-trip forms). `rdbsc-bench --bin remote_scale`
//! asserts this end to end.

use crate::engine::{AssignmentEngine, EngineConfig, EngineEvent, TickReport};
use crate::handle::EngineSnapshot;
use crate::repl::{ReplError, ReplStatus, ReplicationLog, DEFAULT_MAX_RETAINED};
use crate::stats::{Counter, LatencyHistogram};
use crate::wal::{PartitionState, ScannedLog, Wal, WalConfig, WalError, WalRecord, WalStats};
use rdbsc_index::SpatialIndex;
use rdbsc_model::valid_pairs::ValidPair;
use rdbsc_model::{Contribution, WorkerId};
use std::path::Path;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// The partition command protocol revision this build speaks. Bump on any
/// incompatible change to the command surface or its wire encoding.
pub const PROTOCOL_VERSION: u32 = 1;

/// Why a partition command failed.
#[derive(Debug)]
pub enum PartitionError {
    /// The transport to the partition failed (thread gone, connection
    /// refused, read/write error).
    Transport {
        /// The partition's endpoint (thread label or network address).
        endpoint: String,
        /// What went wrong.
        detail: String,
    },
    /// The partition answered, but not with what the protocol requires
    /// (version mismatch, malformed reply, wrong request id, rejected
    /// configuration).
    Protocol {
        /// The partition's endpoint.
        endpoint: String,
        /// What went wrong.
        detail: String,
    },
    /// The partition is draining for shutdown and no longer takes commands.
    Draining {
        /// The partition's endpoint.
        endpoint: String,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Transport { endpoint, detail } => {
                write!(f, "partition transport to {endpoint} failed: {detail}")
            }
            PartitionError::Protocol { endpoint, detail } => {
                write!(f, "partition protocol error from {endpoint}: {detail}")
            }
            PartitionError::Draining { endpoint } => {
                write!(f, "partition {endpoint} is draining and refuses commands")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// One lockstep tick's reply: what the tick did, plus the partition's
/// post-tick committed worker set — the router's handoff oracle (a committed
/// worker must stay with its task's partition until the commitment clears).
#[derive(Debug, Clone)]
pub struct PartitionTick {
    /// The partition engine's tick report.
    pub report: TickReport,
    /// Workers committed (en route) in this partition after the tick, in
    /// the engine's deterministic `(task, worker)` listing order.
    pub committed: Vec<WorkerId>,
    /// The trace id the partition attributed this tick to — the echo of the
    /// router's [`PartitionClient::set_trace`], proving the id survived the
    /// transport (`0` = the tick ran untraced). Observational only.
    pub trace: u64,
}

/// Per-partition protocol counters the router keeps for each client, so
/// cross-process overhead is observable on `/metrics`: commands issued,
/// wire retries/reconnects, bytes moved, command latency percentiles.
#[derive(Debug, Default)]
pub struct ProtocolCounters {
    /// Protocol commands completed (one per logical command, both phases of
    /// a split-phase command counted once).
    pub requests: Counter,
    /// Commands re-sent after a stale-connection reconnect (wire backends).
    pub retries: Counter,
    /// Connections opened beyond the first (wire backends).
    pub reconnects: Counter,
    /// Request bytes written to the transport (0 for in-process).
    pub bytes_sent: Counter,
    /// Response bytes read from the transport (0 for in-process).
    pub bytes_received: Counter,
    /// Binary frames written (0 for in-process and HTTP backends).
    pub frames_sent: Counter,
    /// Binary frames read (0 for in-process and HTTP backends).
    pub frames_received: Counter,
    /// Per-command latency (dispatch to reply, including the engine work).
    pub command_latency: LatencyHistogram,
}

/// A point-in-time copy of one partition's [`ProtocolCounters`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolStats {
    /// Commands completed.
    pub requests: u64,
    /// Commands re-sent after a reconnect.
    pub retries: u64,
    /// Connections opened beyond the first.
    pub reconnects: u64,
    /// Request bytes written.
    pub bytes_sent: u64,
    /// Response bytes read.
    pub bytes_received: u64,
    /// Binary frames written.
    pub frames_sent: u64,
    /// Binary frames read.
    pub frames_received: u64,
    /// Median command latency (µs).
    pub latency_p50_us: f64,
    /// 99th-percentile command latency (µs).
    pub latency_p99_us: f64,
    /// Worst command latency (µs).
    pub latency_max_us: u64,
}

impl ProtocolCounters {
    /// Snapshots the counters.
    pub fn stats(&self) -> ProtocolStats {
        ProtocolStats {
            requests: self.requests.get(),
            retries: self.retries.get(),
            reconnects: self.reconnects.get(),
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            frames_sent: self.frames_sent.get(),
            frames_received: self.frames_received.get(),
            latency_p50_us: self.command_latency.percentile_us(50.0),
            latency_p99_us: self.command_latency.percentile_us(99.0),
            latency_max_us: self.command_latency.max_us(),
        }
    }
}

/// The full command surface one partition serves to the router — object-safe
/// and `Send`, so the router can hold `Box<dyn PartitionClient>` per region
/// regardless of where the engine runs. See the [module docs](self) for the
/// split-phase rules; every method is driven from the router's single
/// thread, and a `begin_*` must be paired with its `finish_*` before any
/// other command is issued on the same client.
pub trait PartitionClient: Send {
    /// The backend kind: `"in-process"`, `"http"` or `"binary"`.
    fn kind(&self) -> &'static str;

    /// Where the partition lives (thread label or network address).
    fn endpoint(&self) -> String;

    /// The client's protocol counters (shared, lock-free).
    fn counters(&self) -> Arc<ProtocolCounters>;

    /// May the router leave this client's `begin_submit` unfinished while
    /// it issues the same slot's `begin_tick`? Pipelining backends answer
    /// `true`: their transport preserves per-connection command order and
    /// pairs replies to requests by id, so the router can stream a round's
    /// submit **and** tick frames to every partition before reading any
    /// reply. The default is `false` — one split-phase command in flight
    /// at a time, the contract every pre-pipelining backend was written
    /// against.
    fn supports_pipelining(&self) -> bool {
        false
    }

    /// Sets the trace id subsequent submit/tick commands are attributed to
    /// (`0` = untraced). Purely observational — backends propagate the id
    /// to the partition so its spans correlate with the router's, and the
    /// partition echoes it in [`PartitionTick::trace`]. The default is a
    /// no-op so wrappers and test doubles without tracing keep compiling.
    fn set_trace(&mut self, _trace: u64) {}

    /// Dispatches a routed event batch for the partition's next tick.
    fn begin_submit(&mut self, events: Vec<EngineEvent>) -> Result<(), PartitionError>;

    /// Completes a [`begin_submit`](Self::begin_submit).
    fn finish_submit(&mut self) -> Result<(), PartitionError>;

    /// Dispatches one lockstep engine round at time `now`.
    fn begin_tick(&mut self, now: f64) -> Result<(), PartitionError>;

    /// Collects the tick reply of a [`begin_tick`](Self::begin_tick).
    fn finish_tick(&mut self) -> Result<PartitionTick, PartitionError>;

    /// Banks an en-route worker's answer; `Ok(false)` when it was not
    /// committed here.
    fn record_answer(
        &mut self,
        worker: WorkerId,
        contribution: Contribution,
    ) -> Result<bool, PartitionError>;

    /// Releases an en-route worker (gave up / rejected) without banking.
    fn release_worker(&mut self, worker: WorkerId) -> Result<(), PartitionError>;

    /// The partition's standing committed pairs, sorted by `(task, worker)`.
    fn assignments(&mut self) -> Result<Vec<ValidPair>, PartitionError>;

    /// A consistent snapshot of the partition's serving state.
    fn snapshot(&mut self) -> Result<EngineSnapshot, PartitionError>;

    /// Does the partition have pending events or live tasks?
    fn is_active(&mut self) -> Result<bool, PartitionError>;

    /// Does the partition's index hold the worker? (Residency probe for
    /// tests and debugging.)
    fn has_worker(&mut self, id: WorkerId) -> Result<bool, PartitionError>;

    /// Asks the partition to stop taking new commands (a daemon answers 503
    /// to commands received after this). Part of the graceful-shutdown
    /// ordering; in-process partitions, reachable only through this client,
    /// treat it as a no-op.
    fn drain(&mut self) -> Result<(), PartitionError>;

    /// Stops the partition's engine: joins the engine thread, or tells the
    /// daemon process to exit.
    fn shutdown(&mut self) -> Result<(), PartitionError>;
}

/// One partition's engine plus the serving counters its snapshots need —
/// the state machine **both** protocol backends execute: the in-process
/// client runs one on a thread, and `rdbsc-partitiond` runs one behind its
/// HTTP routes, so a command means exactly the same thing on either side of
/// the wire.
pub struct EnginePartition<I: SpatialIndex> {
    engine: AssignmentEngine<I>,
    last_now: f64,
    events_applied: u64,
    total_assignments: u64,
    /// The durable command log, when this partition runs with one. Every
    /// command is logged *before* application (write-ahead redo); a log
    /// I/O failure panics the partition — the crash-and-recover
    /// discipline: a partition that cannot persist its commands must not
    /// keep acknowledging them, and a reboot recovers exactly the logged
    /// prefix.
    wal: Option<Wal>,
    /// The replication stream, when this partition runs as a primary: a
    /// copy of every logged command record, retained until the follower
    /// acknowledges it (see [`crate::repl`]).
    repl: Option<ReplicationLog>,
    /// The trace id commands are currently attributed to (`0` = untraced).
    /// Set by [`EnginePartition::set_trace`]; purely observational.
    trace: u64,
}

impl<I: SpatialIndex> EnginePartition<I> {
    /// Wraps a freshly built engine (no durability).
    pub fn new(engine: AssignmentEngine<I>) -> Self {
        Self {
            engine,
            last_now: 0.0,
            events_applied: 0,
            total_assignments: 0,
            wal: None,
            repl: None,
            trace: 0,
        }
    }

    /// Attributes subsequent commands to `trace` (`0` = untraced). The
    /// partition's spans — WAL append/fsync, the synthesized engine stage
    /// spans — carry this id, so a router-issued trace correlates across
    /// the wire. Observational only: tracing never changes what the engine
    /// computes.
    pub fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }

    /// Opens (or creates) the durable log in `dir` and recovers the
    /// partition from it: the latest checkpoint is restored into a fresh
    /// index from `make_index`, the logged tail is replayed through the
    /// ordinary command path, and only then does the log attach — so
    /// replayed commands are not re-logged. On an empty directory this is
    /// simply a durable fresh partition.
    pub fn open_durable(
        dir: &Path,
        wal_config: WalConfig,
        engine_config: EngineConfig,
        make_index: impl FnOnce() -> I,
    ) -> Result<(Self, ScannedLog), WalError> {
        let (wal, scan) = Wal::open(dir, wal_config)?;
        let (checkpoint, tail) = scan.recovery_plan();
        let engine = match checkpoint {
            Some(state) => AssignmentEngine::restore_state(
                make_index(),
                engine_config,
                state.engine.clone(),
            ),
            None => AssignmentEngine::new(make_index(), engine_config),
        };
        let mut part = Self::new(engine);
        if let Some(state) = checkpoint {
            part.last_now = state.last_now;
            part.events_applied = state.events_applied;
            part.total_assignments = state.total_assignments;
        }
        for record in tail {
            part.replay(record.clone());
        }
        part.wal = Some(wal);
        Ok((part, scan))
    }

    /// Applies one recovered record through the ordinary command path (the
    /// log is not attached yet, so nothing is re-logged). Replayed ticks
    /// recompute their assignments deterministically — the engine's
    /// determinism contract is what makes redo recovery exact.
    fn replay(&mut self, record: WalRecord) {
        match record {
            WalRecord::Events(events) => self.submit(events),
            WalRecord::Tick { now } => {
                self.tick(now);
            }
            WalRecord::Answer {
                worker,
                contribution,
            } => {
                self.record_answer(worker, contribution);
            }
            WalRecord::Release { worker } => self.release_worker(worker),
            // recovery_plan() splits at the *latest* checkpoint; an older
            // one surviving in the tail would be a scan bug, but replay is
            // defensive: the record is self-contained state, not a command.
            WalRecord::Checkpoint(_) => {}
            // Replication watermarks are observational notes, not commands.
            WalRecord::ReplMeta { .. } => {}
        }
    }

    fn log<R>(wal: &mut Option<Wal>, write: impl FnOnce(&mut Wal) -> Result<R, WalError>) {
        if let Some(wal) = wal {
            if let Err(e) = write(wal) {
                panic!("partition wal append failed (crash-and-recover): {e}");
            }
        }
    }

    /// Queues a routed event batch for the next tick.
    pub fn submit(&mut self, events: Vec<EngineEvent>) {
        let _span = rdbsc_obs::span(self.trace, 0, "partition.submit");
        Self::log(&mut self.wal, |wal| wal.append_events(&events));
        if let Some(repl) = &mut self.repl {
            if !events.is_empty() {
                repl.publish(WalRecord::Events(events.clone()));
            }
        }
        self.engine.submit_all(events);
    }

    /// Runs one engine round and returns the report plus the post-tick
    /// committed worker set (the handoff oracle). On a durable partition
    /// the tick command is logged and the log fsynced *before* the engine
    /// runs (the group-commit boundary), and a checkpoint is written every
    /// [`WalConfig::checkpoint_every_ticks`] ticks.
    ///
    /// When a trace is set ([`EnginePartition::set_trace`]) the tick emits
    /// spans — live `wal.append`/`wal.fsync` spans around the log I/O, the
    /// engine's stage spans synthesized from [`TickReport::stages`] — under
    /// a `partition.tick` root, and the report's WAL stage timings are
    /// filled in. All observational: timings ride the report without
    /// feeding back into engine decisions.
    pub fn tick(&mut self, now: f64) -> PartitionTick {
        let trace = self.trace;
        let root = rdbsc_obs::span(trace, 0, "partition.tick");
        let mut wal_append_us = 0u64;
        let mut wal_fsync_us = 0u64;
        if self.wal.is_some() {
            // Wal::append_tick, split so append and fsync time separately.
            let started = Instant::now();
            {
                let _span = rdbsc_obs::span(trace, root.id(), "wal.append");
                Self::log(&mut self.wal, |wal| wal.append(&WalRecord::Tick { now }));
            }
            wal_append_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            if self.wal.as_ref().is_some_and(|wal| wal.config().fsync_on_tick) {
                let started = Instant::now();
                {
                    let _span = rdbsc_obs::span(trace, root.id(), "wal.fsync");
                    Self::log(&mut self.wal, Wal::sync);
                }
                wal_fsync_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            }
        }
        if let Some(repl) = &mut self.repl {
            repl.publish(WalRecord::Tick { now });
        }
        let mut report = self.engine.tick(now);
        // The engine computes its stage timings but stays tracing-free;
        // synthesize its spans here (the WAL stages were traced live above,
        // and report.stages still has them zeroed at this point).
        rdbsc_obs::record_stage_spans(trace, root.id(), &report.stages);
        report.stages.wal_append_us = wal_append_us;
        report.stages.wal_fsync_us = wal_fsync_us;
        self.last_now = now;
        self.events_applied += report.events_applied as u64;
        self.total_assignments += report.new_assignments.len() as u64;
        let committed: Vec<WorkerId> = self
            .engine
            .committed_assignments()
            .iter()
            .map(|p| p.worker)
            .collect();
        let checkpoint_due = self.wal.as_ref().is_some_and(|wal| {
            let every = wal.config().checkpoint_every_ticks;
            every > 0 && self.engine.num_ticks().is_multiple_of(every)
        });
        if checkpoint_due {
            let _span = rdbsc_obs::span(trace, root.id(), "wal.checkpoint");
            let state = self.dump_state();
            let tick = self.engine.num_ticks();
            Self::log(&mut self.wal, |wal| wal.append_checkpoint(&state, tick));
        }
        PartitionTick {
            report,
            committed,
            trace,
        }
    }

    /// Banks an answer; `false` when the worker was not en route.
    pub fn record_answer(&mut self, worker: WorkerId, contribution: Contribution) -> bool {
        Self::log(&mut self.wal, |wal| wal.append_answer(worker, contribution));
        if let Some(repl) = &mut self.repl {
            repl.publish(WalRecord::Answer {
                worker,
                contribution,
            });
        }
        self.engine.record_answer(worker, contribution)
    }

    /// Releases an en-route worker without banking.
    pub fn release_worker(&mut self, worker: WorkerId) {
        Self::log(&mut self.wal, |wal| wal.append_release(worker));
        if let Some(repl) = &mut self.repl {
            repl.publish(WalRecord::Release { worker });
        }
        self.engine.release_worker(worker);
    }

    /// The standing committed pairs, sorted by `(task, worker)`.
    pub fn assignments(&self) -> Vec<ValidPair> {
        self.engine.committed_assignments()
    }

    /// A consistent snapshot of this partition's state (durable partitions
    /// include their log counters).
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut snapshot = EngineSnapshot::capture(
            &self.engine,
            self.last_now,
            self.events_applied,
            self.total_assignments,
        );
        snapshot.wal = self.wal_stats();
        snapshot
    }

    /// The partition's full logical state in canonical form (the
    /// checkpoint payload).
    pub fn dump_state(&self) -> PartitionState {
        PartitionState {
            last_now: self.last_now,
            events_applied: self.events_applied,
            total_assignments: self.total_assignments,
            engine: self.engine.dump_state(),
        }
    }

    /// The FNV-1a digest of the canonical state encoding — equal digests ⇔
    /// equal observable partition state. The recovery tests compare a
    /// rebooted partition's digest against an offline replay of the logged
    /// prefix.
    pub fn state_digest(&self) -> u64 {
        self.dump_state().digest()
    }

    /// Log counters, when this partition is durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(Wal::stats)
    }

    /// Forces the log to stable storage (no-op without one) — used by the
    /// daemon's graceful shutdown so nothing acknowledged is lost.
    pub fn sync_wal(&mut self) {
        Self::log(&mut self.wal, Wal::sync);
    }

    /// Turns this partition into a replication primary (idempotent) and
    /// starts — or restarts — the stream: returns the bootstrap snapshot
    /// the follower restores from plus the stream lsn of the first record
    /// published after it. Re-bootstrapping rebases the stream to its
    /// head: the fresh snapshot covers everything published before it, so
    /// the retained tail is dropped wholesale. The stream therefore feeds
    /// exactly **one** follower at a time; callers serving the wire must
    /// refuse a bootstrap while another follower is live (the daemon does,
    /// via its fetch-liveness window), or two standbys would mutually
    /// invalidate each other's cursors in an endless re-bootstrap loop.
    pub fn enable_replication(&mut self) -> (PartitionState, u64) {
        let state = self.dump_state();
        let repl = self
            .repl
            .get_or_insert_with(|| ReplicationLog::new(0, DEFAULT_MAX_RETAINED));
        repl.rebase_to_head();
        (state, repl.next_lsn())
    }

    /// Serves one follower pull: advances the acknowledgement watermark to
    /// `ack` (records below it are released from retention), then returns
    /// up to `max` records from stream lsn `from`. A gap means the
    /// follower fell behind retention and must re-bootstrap.
    pub fn repl_fetch(
        &mut self,
        from: u64,
        ack: u64,
        max: usize,
    ) -> Result<Vec<(u64, WalRecord)>, ReplError> {
        let repl = self.repl.as_mut().ok_or(ReplError::NotEnabled)?;
        repl.ack(ack);
        repl.fetch(from, max)
    }

    /// The primary-side stream counters (`None` when this partition is not
    /// a replication primary).
    pub fn repl_status(&self) -> Option<ReplStatus> {
        self.repl.as_ref().map(ReplicationLog::status)
    }

    /// Notes a follower's acknowledgement watermark in this partition's
    /// own log (no-op without one). Observational — replay ignores it —
    /// but it lets `wal_dump` diagnose how far a standby's log got.
    pub fn note_repl_watermark(&mut self, acked: u64) {
        Self::log(&mut self.wal, |wal| {
            wal.append(&WalRecord::ReplMeta {
                acked,
                sealed: false,
            })
        });
    }

    /// Seals a promoted standby's incoming stream: writes the sealed
    /// marker at watermark `acked`, checkpoints the promoted state into a
    /// fresh segment (the new primary's clean log epoch) and fsyncs.
    /// Returns the promoted state digest — the value failover proofs
    /// compare against the dead primary's last acknowledged digest.
    pub fn seal_replication(&mut self, acked: u64) -> u64 {
        Self::log(&mut self.wal, |wal| {
            wal.append(&WalRecord::ReplMeta { acked, sealed: true })
        });
        let state = self.dump_state();
        let tick = self.engine.num_ticks();
        Self::log(&mut self.wal, |wal| wal.append_checkpoint(&state, tick));
        Self::log(&mut self.wal, Wal::sync);
        state.digest()
    }

    /// Rebuilds a partition from a shipped state snapshot (no durability)
    /// — the in-memory half of the follower bootstrap path.
    pub fn from_state(
        state: &PartitionState,
        engine_config: EngineConfig,
        make_index: impl FnOnce() -> I,
    ) -> Self {
        let engine =
            AssignmentEngine::restore_state(make_index(), engine_config, state.engine.clone());
        let mut part = Self::new(engine);
        part.last_now = state.last_now;
        part.events_applied = state.events_applied;
        part.total_assignments = state.total_assignments;
        part
    }

    /// [`EnginePartition::from_state`] with a durable log in `dir`: the
    /// snapshot is checkpointed immediately so the follower's log is
    /// self-contained from its first byte, then the log attaches — shipped
    /// records applied afterwards go through the ordinary log-then-apply
    /// path.
    pub fn restore_durable(
        dir: &Path,
        wal_config: WalConfig,
        engine_config: EngineConfig,
        state: &PartitionState,
        make_index: impl FnOnce() -> I,
    ) -> Result<Self, WalError> {
        let (mut wal, _scan) = Wal::open(dir, wal_config)?;
        let mut part = Self::from_state(state, engine_config, make_index);
        wal.append_checkpoint(state, part.engine.num_ticks())?;
        part.wal = Some(wal);
        Ok(part)
    }

    /// Pending events or live tasks?
    pub fn is_active(&self) -> bool {
        self.engine.num_pending_events() > 0 || self.engine.num_tasks() > 0
    }

    /// Does the index hold the worker?
    pub fn has_worker(&self, id: WorkerId) -> bool {
        self.engine.index().worker(id).is_some()
    }
}

/// A command processed by one in-process partition's engine thread.
enum Command {
    Submit {
        events: Vec<EngineEvent>,
        trace: u64,
    },
    Tick {
        now: f64,
        trace: u64,
        reply: Sender<PartitionTick>,
    },
    RecordAnswer {
        worker: WorkerId,
        contribution: Contribution,
        reply: Sender<bool>,
    },
    Release(WorkerId),
    Assignments(Sender<Vec<ValidPair>>),
    Snapshot(Sender<EngineSnapshot>),
    IsActive(Sender<bool>),
    HasWorker(WorkerId, Sender<bool>),
    Shutdown,
}

/// The per-partition engine thread: an [`EnginePartition`] drained off a
/// channel.
fn slot_loop<I: SpatialIndex>(mut part: EnginePartition<I>, commands: Receiver<Command>) {
    while let Ok(command) = commands.recv() {
        match command {
            Command::Submit { events, trace } => {
                part.set_trace(trace);
                part.submit(events);
            }
            Command::Tick { now, trace, reply } => {
                part.set_trace(trace);
                let _ = reply.send(part.tick(now));
            }
            Command::RecordAnswer {
                worker,
                contribution,
                reply,
            } => {
                let _ = reply.send(part.record_answer(worker, contribution));
            }
            Command::Release(worker) => part.release_worker(worker),
            Command::Assignments(reply) => {
                let _ = reply.send(part.assignments());
            }
            Command::Snapshot(reply) => {
                let _ = reply.send(part.snapshot());
            }
            Command::IsActive(reply) => {
                let _ = reply.send(part.is_active());
            }
            Command::HasWorker(id, reply) => {
                let _ = reply.send(part.has_worker(id));
            }
            Command::Shutdown => return,
        }
    }
}

/// The thread-per-partition protocol backend: one [`AssignmentEngine`] on
/// its own named OS thread behind an `mpsc` command channel — PR 4's
/// hard-wired router plumbing, now just one [`PartitionClient`] impl.
pub struct InProcessClient {
    label: String,
    sender: Option<Sender<Command>>,
    thread: Option<JoinHandle<()>>,
    counters: Arc<ProtocolCounters>,
    pending_tick: Option<(Receiver<PartitionTick>, Instant)>,
    submit_started: Option<Instant>,
    trace: u64,
}

impl InProcessClient {
    /// Spawns the partition's engine thread. `index` names the partition in
    /// the thread label and the endpoint string.
    pub fn spawn<I: SpatialIndex + 'static>(index: usize, engine: AssignmentEngine<I>) -> Self {
        Self::spawn_partition(index, EnginePartition::new(engine))
    }

    /// Spawns the engine thread around a prebuilt [`EnginePartition`] —
    /// e.g. a durable one recovered with [`EnginePartition::open_durable`].
    pub fn spawn_partition<I: SpatialIndex + 'static>(
        index: usize,
        part: EnginePartition<I>,
    ) -> Self {
        let label = format!("rdbsc-partition-{index}");
        let (tx, rx) = channel();
        let thread = std::thread::Builder::new()
            .name(label.clone())
            .spawn(move || slot_loop(part, rx))
            .expect("spawn partition thread");
        Self {
            label,
            sender: Some(tx),
            thread: Some(thread),
            counters: Arc::new(ProtocolCounters::default()),
            pending_tick: None,
            submit_started: None,
            trace: 0,
        }
    }

    fn send(&self, command: Command) -> Result<(), PartitionError> {
        let sender = self.sender.as_ref().ok_or_else(|| PartitionError::Transport {
            endpoint: self.label.clone(),
            detail: "partition already shut down".into(),
        })?;
        sender.send(command).map_err(|_| PartitionError::Transport {
            endpoint: self.label.clone(),
            detail: "partition thread is gone".into(),
        })
    }

    /// One synchronous round trip: send, then receive on a fresh reply
    /// channel, recording the command in the counters.
    fn round_trip<R>(
        &mut self,
        make: impl FnOnce(Sender<R>) -> Command,
    ) -> Result<R, PartitionError> {
        let started = Instant::now();
        let (tx, rx) = channel();
        self.send(make(tx))?;
        let reply = rx.recv().map_err(|_| PartitionError::Transport {
            endpoint: self.label.clone(),
            detail: "partition thread died mid-command".into(),
        })?;
        self.counters.requests.incr();
        self.counters.command_latency.record(started.elapsed());
        Ok(reply)
    }
}

impl PartitionClient for InProcessClient {
    fn kind(&self) -> &'static str {
        "in-process"
    }

    fn endpoint(&self) -> String {
        self.label.clone()
    }

    fn counters(&self) -> Arc<ProtocolCounters> {
        Arc::clone(&self.counters)
    }

    fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }

    fn begin_submit(&mut self, events: Vec<EngineEvent>) -> Result<(), PartitionError> {
        self.submit_started = Some(Instant::now());
        self.send(Command::Submit {
            events,
            trace: self.trace,
        })
    }

    fn finish_submit(&mut self) -> Result<(), PartitionError> {
        // Submits have no reply in-process: the channel preserves order, so
        // the batch lands before any later tick command.
        if let Some(started) = self.submit_started.take() {
            self.counters.requests.incr();
            self.counters.command_latency.record(started.elapsed());
        }
        Ok(())
    }

    fn begin_tick(&mut self, now: f64) -> Result<(), PartitionError> {
        let (tx, rx) = channel();
        self.send(Command::Tick {
            now,
            trace: self.trace,
            reply: tx,
        })?;
        self.pending_tick = Some((rx, Instant::now()));
        Ok(())
    }

    fn finish_tick(&mut self) -> Result<PartitionTick, PartitionError> {
        let (rx, started) = self.pending_tick.take().ok_or_else(|| PartitionError::Protocol {
            endpoint: self.label.clone(),
            detail: "finish_tick without begin_tick".into(),
        })?;
        let reply = rx.recv().map_err(|_| PartitionError::Transport {
            endpoint: self.label.clone(),
            detail: "partition thread died mid-tick".into(),
        })?;
        self.counters.requests.incr();
        self.counters.command_latency.record(started.elapsed());
        Ok(reply)
    }

    fn record_answer(
        &mut self,
        worker: WorkerId,
        contribution: Contribution,
    ) -> Result<bool, PartitionError> {
        self.round_trip(|reply| Command::RecordAnswer {
            worker,
            contribution,
            reply,
        })
    }

    fn release_worker(&mut self, worker: WorkerId) -> Result<(), PartitionError> {
        self.counters.requests.incr();
        self.send(Command::Release(worker))
    }

    fn assignments(&mut self) -> Result<Vec<ValidPair>, PartitionError> {
        self.round_trip(Command::Assignments)
    }

    fn snapshot(&mut self) -> Result<EngineSnapshot, PartitionError> {
        self.round_trip(Command::Snapshot)
    }

    fn is_active(&mut self) -> Result<bool, PartitionError> {
        self.round_trip(Command::IsActive)
    }

    fn has_worker(&mut self, id: WorkerId) -> Result<bool, PartitionError> {
        self.round_trip(|reply| Command::HasWorker(id, reply))
    }

    fn drain(&mut self) -> Result<(), PartitionError> {
        // The engine thread only hears commands through this client, so
        // there is nothing to refuse: the router has already stopped
        // sending by the time it drains.
        Ok(())
    }

    fn shutdown(&mut self) -> Result<(), PartitionError> {
        if let Some(sender) = self.sender.take() {
            let _ = sender.send(Command::Shutdown);
        }
        if let Some(thread) = self.thread.take() {
            thread.join().map_err(|_| PartitionError::Transport {
                endpoint: self.label.clone(),
                detail: "partition thread panicked".into(),
            })?;
        }
        Ok(())
    }
}

impl Drop for InProcessClient {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use rdbsc_geo::{AngleRange, Point, Rect};
    use rdbsc_index::GridIndex;
    use rdbsc_model::{Confidence, Task, TaskId, TimeWindow, Worker};

    fn client() -> InProcessClient {
        InProcessClient::spawn(
            0,
            AssignmentEngine::new(GridIndex::new(Rect::unit(), 0.2), EngineConfig::default()),
        )
    }

    fn task(id: u32, x: f64, y: f64) -> Task {
        Task::new(TaskId(id), Point::new(x, y), TimeWindow::new(0.0, 10.0).unwrap())
    }

    fn worker(id: u32, x: f64, y: f64) -> Worker {
        Worker::new(
            WorkerId(id),
            Point::new(x, y),
            0.5,
            AngleRange::full(),
            Confidence::new(0.9).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn in_process_client_speaks_the_full_protocol() {
        let mut c = client();
        assert_eq!(c.kind(), "in-process");
        assert_eq!(c.endpoint(), "rdbsc-partition-0");

        c.begin_submit(vec![
            crate::engine::EngineEvent::TaskArrived(task(0, 0.6, 0.6)),
            crate::engine::EngineEvent::WorkerCheckIn(worker(0, 0.5, 0.5)),
        ])
        .unwrap();
        c.finish_submit().unwrap();
        assert!(c.is_active().unwrap());

        c.begin_tick(0.0).unwrap();
        let tick = c.finish_tick().unwrap();
        assert_eq!(tick.report.new_assignments.len(), 1);
        assert_eq!(tick.trace, 0, "ticks run untraced unless set_trace is called");
        assert_eq!(tick.committed, vec![WorkerId(0)]);
        assert!(c.has_worker(WorkerId(0)).unwrap());
        assert!(!c.has_worker(WorkerId(9)).unwrap());

        let pair = tick.report.new_assignments[0];
        assert_eq!(c.assignments().unwrap(), vec![pair]);
        assert!(c.record_answer(pair.worker, pair.contribution).unwrap());
        assert!(!c.record_answer(pair.worker, pair.contribution).unwrap());
        let snapshot = c.snapshot().unwrap();
        assert_eq!(snapshot.banked_answers, 1);
        assert_eq!(snapshot.total_assignments, 1);

        let stats = c.counters().stats();
        assert!(stats.requests >= 8, "requests {:?}", stats.requests);
        assert_eq!(stats.bytes_sent, 0, "in-process moves no wire bytes");

        c.drain().unwrap();
        c.shutdown().unwrap();
        assert!(c.is_active().is_err(), "commands after shutdown fail");
    }

    #[test]
    fn set_trace_propagates_across_the_thread_and_echoes() {
        let mut c = client();
        let trace = rdbsc_obs::next_trace_id();
        c.set_trace(trace);
        c.begin_submit(vec![
            crate::engine::EngineEvent::TaskArrived(task(0, 0.6, 0.6)),
            crate::engine::EngineEvent::WorkerCheckIn(worker(0, 0.5, 0.5)),
        ])
        .unwrap();
        c.finish_submit().unwrap();
        c.begin_tick(0.0).unwrap();
        let tick = c.finish_tick().unwrap();
        assert_eq!(tick.trace, trace, "the partition echoes the trace id");

        // The partition thread's spans landed in its ring under this trace.
        let spans = rdbsc_obs::collect_spans(trace);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"partition.submit"), "{names:?}");
        assert!(names.contains(&"partition.tick"), "{names:?}");
        assert!(names.contains(&"stage.solve"), "{names:?}");
        let root = spans.iter().find(|s| s.name == "partition.tick").unwrap();
        assert_eq!(root.parent, 0);
        assert!(
            spans
                .iter()
                .filter(|s| s.name.starts_with("stage."))
                .all(|s| s.parent == root.span),
            "stage spans hang off the tick root: {spans:?}"
        );
        c.shutdown().unwrap();
    }

    #[test]
    fn finish_tick_requires_begin_tick() {
        let mut c = client();
        assert!(matches!(
            c.finish_tick(),
            Err(PartitionError::Protocol { .. })
        ));
    }
}
