//! # rdbsc-platform
//!
//! A discrete-event simulator of a gMission-style spatial-crowdsourcing
//! deployment (Section 8.1 and 8.4 of the paper): sites asking photo tasks
//! with fixed opening times, a small population of walking users whose
//! reliabilities come from a peer-rating model, periodic incremental
//! re-assignment every `t_interval`, Bernoulli task completion, noisy
//! answers, and the paper's answer-accuracy metric.
//!
//! The simulator stands in for the live human deployment the paper ran
//! (10 users, 5 sites, 15-minute task openings) and is what the Figure 18
//! reproduction drives; the [`coverage`] module provides the quantitative
//! stand-in for the 3-D reconstruction showcase (Figures 19–20).
//!
//! Beyond the paper-faithful simulator, the [`engine`] module scales the
//! incremental setting up: an event-driven **parallel batched assignment
//! engine** that maintains the grid index incrementally, partitions the live
//! instance into independent spatial shards and solves them concurrently
//! with a cost-model-driven per-shard strategy choice (see the module docs
//! for the architecture). The [`partition`] module scales *across* engines:
//! a [`PartitionedEngine`] runs one assignment engine per spatial region,
//! routes events by location and hands workers off across region
//! boundaries. The [`protocol`] module defines the **partition command
//! protocol** the router speaks — an object-safe [`PartitionClient`] trait
//! whose backends host a partition's engine on a local thread
//! ([`protocol::InProcessClient`]) or, via `rdbsc-server`'s HTTP backend
//! and the `rdbsc-partitiond` daemon, in another process or on another
//! host. The [`handle`] module wraps either form in a thread-safe
//! [`EngineHandle`] command API so network servers (see the `rdbsc-server`
//! crate) and other multi-threaded drivers can share one live instance.
//! The [`wal`] module makes a partition durable: an append-only segmented
//! write-ahead log that records every routed command before application,
//! with periodic checkpoints and exact (digest-verified) crash recovery.
//! The [`repl`] module stretches the same redo stream over the wire:
//! log-shipping replication from a primary partition to a standby, with
//! acknowledgement-watermark retention and digest-exact standby promotion
//! on primary failure.

#![deny(missing_docs)]

pub mod accuracy;
pub mod coverage;
pub mod engine;
pub mod handle;
pub mod par;
pub mod partition;
pub mod protocol;
pub mod repl;
pub mod sim;
pub mod stats;
pub mod wal;

pub use accuracy::{answer_accuracy, answer_error, AnswerRecord};
pub use coverage::{angular_coverage, temporal_coverage, CoverageReport};
pub use engine::{
    AdaptiveBatchSolver, AssignmentEngine, EngineConfig, EngineEvent, EngineObjective, TickReport,
};
pub use handle::{EngineHandle, EngineSnapshot};
pub use partition::{
    merge_snapshots, PartitionHealth, PartitionTransport, PartitionedEngine, PromotionRecord,
    StandbyPromoter,
};
pub use protocol::{
    EnginePartition, InProcessClient, PartitionClient, PartitionError, PartitionTick,
    ProtocolCounters, ProtocolStats, PROTOCOL_VERSION,
};
pub use repl::{ReplError, ReplStatus, ReplicationLog};
pub use sim::{PlatformConfig, PlatformSim, RoundStats, SimulationReport};
pub use stats::{Counter, LatencyHistogram};
pub use wal::{
    inspect_dir, FailpointWriter, FaultPlan, FrameInfo, PartitionState, SegmentInfo, Wal,
    WalConfig, WalError, WalRecord, WalStats,
};
