//! The answer-accuracy metric of the gMission deployment (Section 8.1).
//!
//! When a worker answers a task by taking a photo, the platform records the
//! facing direction, location and timestamp of the answer and compares them
//! with the task's required angle and time constraint. The paper defines the
//! (error) quantity
//!
//! ```text
//! Accuracy_ij = β_i · Δθ_ij / π + (1 − β_i) · Δt_ij / (e_i − s_i)
//! ```
//!
//! with `0 ≤ Δθ ≤ π` and `0 ≤ Δt < e − s`. Despite its name this is an
//! error: 0 is a perfect answer and 1 the worst possible one. This module
//! keeps the paper's formula as [`answer_error`] and exposes the more
//! intuitive [`answer_accuracy`] `= 1 − error`.

use rdbsc_model::TimeWindow;

/// One answer received by the platform, with the deviations from what the
/// assignment expected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerRecord {
    /// Angular deviation `Δθ` between the expected and actual facing
    /// direction, in radians (`[0, π]`).
    pub angle_error: f64,
    /// Temporal deviation `Δt` between the expected and actual answer time,
    /// in time units (`[0, e − s)`).
    pub time_error: f64,
}

impl AnswerRecord {
    /// Creates a record, clamping both deviations into their valid ranges.
    pub fn new(angle_error: f64, time_error: f64, window: TimeWindow) -> Self {
        let max_dt = (window.duration()).max(0.0);
        Self {
            angle_error: angle_error.abs().min(std::f64::consts::PI),
            time_error: time_error.abs().min(max_dt),
        }
    }
}

/// The paper's `Accuracy_ij` formula (an error in `[0, 1]`; 0 is best).
pub fn answer_error(record: &AnswerRecord, window: TimeWindow, beta: f64) -> f64 {
    let beta = beta.clamp(0.0, 1.0);
    let duration = window.duration();
    let time_term = if duration > 0.0 {
        (record.time_error / duration).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let angle_term = (record.angle_error / std::f64::consts::PI).clamp(0.0, 1.0);
    beta * angle_term + (1.0 - beta) * time_term
}

/// `1 − answer_error`: 1 is a perfect answer.
pub fn answer_accuracy(record: &AnswerRecord, window: TimeWindow, beta: f64) -> f64 {
    1.0 - answer_error(record, window, beta)
}

/// The accuracy of a task: the mean accuracy of all its answers (the paper
/// averages the answers' accuracy values). Returns `None` when there are no
/// answers.
pub fn task_accuracy(records: &[AnswerRecord], window: TimeWindow, beta: f64) -> Option<f64> {
    if records.is_empty() {
        return None;
    }
    Some(
        records
            .iter()
            .map(|r| answer_accuracy(r, window, beta))
            .sum::<f64>()
            / records.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn window() -> TimeWindow {
        TimeWindow::new(0.0, 10.0).unwrap()
    }

    #[test]
    fn perfect_answer_has_zero_error() {
        let r = AnswerRecord::new(0.0, 0.0, window());
        assert_eq!(answer_error(&r, window(), 0.5), 0.0);
        assert_eq!(answer_accuracy(&r, window(), 0.5), 1.0);
    }

    #[test]
    fn worst_answer_has_error_one() {
        let r = AnswerRecord::new(PI, 10.0, window());
        assert!((answer_error(&r, window(), 0.5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beta_weights_the_two_components() {
        let r = AnswerRecord::new(PI, 0.0, window());
        assert!((answer_error(&r, window(), 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(answer_error(&r, window(), 0.0), 0.0);
        assert!((answer_error(&r, window(), 0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn record_clamps_out_of_range_inputs() {
        let r = AnswerRecord::new(10.0, 100.0, window());
        assert!(r.angle_error <= PI);
        assert!(r.time_error <= 10.0);
        let e = answer_error(&r, window(), 0.5);
        assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn degenerate_window_ignores_the_time_term() {
        let w = TimeWindow::new(5.0, 5.0).unwrap();
        let r = AnswerRecord::new(0.0, 3.0, w);
        assert_eq!(answer_error(&r, w, 0.0), 0.0);
    }

    #[test]
    fn task_accuracy_averages_answers() {
        let w = window();
        let perfect = AnswerRecord::new(0.0, 0.0, w);
        let poor = AnswerRecord::new(PI, 10.0, w);
        let avg = task_accuracy(&[perfect, poor], w, 0.5).unwrap();
        assert!((avg - 0.5).abs() < 1e-9);
        assert_eq!(task_accuracy(&[], w, 0.5), None);
    }
}
