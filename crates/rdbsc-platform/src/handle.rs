//! A thread-safe command facade over the assignment engine — single or
//! region-partitioned.
//!
//! The engine itself is a plain `&mut self` state machine, which is right
//! for the simulation driver but useless to a network server whose request
//! handlers, micro-batch flusher and metrics scrapers all live on different
//! threads. [`EngineHandle`] wraps one engine behind an `Arc<Mutex<_>>` and
//! exposes a *command API* — submit a task, move a worker, expire a task,
//! run a tick, query the standing assignments or a consistent snapshot —
//! so any number of threads can drive the same live instance.
//!
//! The handle is **partition-aware**: it drives either a single
//! [`AssignmentEngine`] ([`EngineHandle::new`]) or a
//! [`PartitionedEngine`] running one
//! engine per spatial region ([`EngineHandle::new_partitioned`]) behind the
//! same command surface. Partition-specific introspection
//! ([`EngineHandle::num_partitions`], [`EngineHandle::partition_snapshots`],
//! [`EngineHandle::handoffs`]) degrades gracefully on a single engine.
//!
//! Design notes:
//!
//! * **Short critical sections.** Every command except [`EngineHandle::tick`]
//!   holds the lock for `O(1)`-ish work (event submissions only push onto the
//!   engine's pending queue). The tick holds it for the sharded solve, which
//!   is the intended serialisation point: the engine's determinism contract
//!   (per-`(tick, shard)` seeding) requires ticks to be totally ordered. On a
//!   partitioned core the tick broadcast fans the solve out to the partition
//!   threads, which run concurrently while the handle lock is held.
//! * **Cumulative serving stats.** The handle counts events, ticks and
//!   assignments across the engine's lifetime so a `/metrics` endpoint can
//!   report totals without replaying tick reports.
//! * **Cloning is sharing.** `EngineHandle::clone` hands out another handle
//!   to the *same* engine, like `Arc`.

use crate::engine::{AssignmentEngine, EngineObjective, TickReport};
use crate::partition::PartitionedEngine;
use rdbsc_geo::Point;
use rdbsc_index::{GridIndex, MaintenanceCounters, SpatialIndex};
use rdbsc_model::valid_pairs::ValidPair;
use rdbsc_model::{Contribution, Task, TaskId, Worker, WorkerId};
use std::sync::{Arc, Mutex};

use crate::engine::EngineEvent;

/// A consistent point-in-time view of the engine's serving state, cheap to
/// take (no per-task work beyond the objective fold) and safe to expose on a
/// metrics endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// The time passed to the most recent tick (0 before the first).
    pub now: f64,
    /// Ticks run so far.
    pub ticks: u64,
    /// Events applied by ticks so far (excludes still-pending ones).
    pub events_applied: u64,
    /// Events submitted but not yet applied by a tick.
    pub pending_events: usize,
    /// Live tasks in the index.
    pub live_tasks: usize,
    /// Live workers in the index.
    pub live_workers: usize,
    /// Workers currently en route under the standing assignment.
    pub committed_workers: usize,
    /// Answers banked so far (live and retired tasks).
    pub banked_answers: usize,
    /// Assignments committed across the engine's lifetime.
    pub total_assignments: u64,
    /// The online objective over the standing state.
    pub objective: EngineObjective,
    /// The active spatial-index backend (`"grid"` / `"flat-grid"`).
    pub backend: &'static str,
    /// The index's cumulative maintenance counters.
    pub index_counters: MaintenanceCounters,
    /// Durable-log counters when the engine runs with a write-ahead log
    /// (`None` on non-durable engines; a merged snapshot sums over the
    /// durable partitions).
    pub wal: Option<crate::wal::WalStats>,
}

/// What the handle drives: one engine over the whole space, or one engine
/// per region behind the partitioned router.
// Both variants boxed: each holds hundreds of bytes of engine/router
// state, and the enum sits inside every handle's mutex.
enum Core<I: SpatialIndex> {
    Single(Box<AssignmentEngine<I>>),
    Partitioned(Box<PartitionedEngine>),
}

impl<I: SpatialIndex> Core<I> {
    fn submit(&mut self, event: EngineEvent) {
        match self {
            Core::Single(engine) => engine.submit(event),
            Core::Partitioned(engine) => engine.submit(event),
        }
    }

    fn submit_all<E: IntoIterator<Item = EngineEvent>>(&mut self, events: E) {
        match self {
            Core::Single(engine) => engine.submit_all(events),
            Core::Partitioned(engine) => engine.submit_all(events),
        }
    }

    /// Runs one round and returns the report plus the trace id it ran
    /// under. A partitioned core generates the id itself (it must reach the
    /// partitions before their spans record); the single core gets one here
    /// and synthesizes its stage spans from the report — the engine itself
    /// stays tracing-free.
    fn tick(&mut self, now: f64) -> (TickReport, u64) {
        match self {
            Core::Single(engine) => {
                let trace = rdbsc_obs::next_trace_id();
                let root = rdbsc_obs::span(trace, 0, "router.tick");
                let report = engine.tick(now);
                rdbsc_obs::record_stage_spans(trace, root.id(), &report.stages);
                (report, trace)
            }
            Core::Partitioned(engine) => {
                let report = engine.tick(now);
                (report, engine.last_trace())
            }
        }
    }

    fn is_active(&mut self) -> bool {
        match self {
            Core::Single(engine) => {
                engine.num_pending_events() > 0 || engine.num_tasks() > 0
            }
            Core::Partitioned(engine) => engine.is_active(),
        }
    }

    fn record_answer(&mut self, worker: WorkerId, contribution: Contribution) -> bool {
        match self {
            Core::Single(engine) => engine.record_answer(worker, contribution),
            Core::Partitioned(engine) => engine.record_answer(worker, contribution),
        }
    }

    fn release_worker(&mut self, worker: WorkerId) {
        match self {
            Core::Single(engine) => engine.release_worker(worker),
            Core::Partitioned(engine) => engine.release_worker(worker),
        }
    }

    fn is_committed(&self, worker: WorkerId) -> bool {
        match self {
            Core::Single(engine) => engine.is_committed(worker),
            Core::Partitioned(engine) => engine.is_committed(worker),
        }
    }

    fn committed_assignments(&mut self) -> Vec<ValidPair> {
        match self {
            Core::Single(engine) => engine.committed_assignments(),
            Core::Partitioned(engine) => engine.committed_assignments(),
        }
    }
}

impl EngineSnapshot {
    /// Captures an engine's serving state alongside the lifetime counters
    /// its driver keeps (the handle for a single engine, each partition
    /// thread for a partitioned one) — the one place the field wiring
    /// lives, so the single and partitioned views cannot drift.
    pub(crate) fn capture<I: SpatialIndex>(
        engine: &AssignmentEngine<I>,
        now: f64,
        events_applied: u64,
        total_assignments: u64,
    ) -> Self {
        Self {
            now,
            ticks: engine.num_ticks(),
            events_applied,
            pending_events: engine.num_pending_events(),
            live_tasks: engine.num_tasks(),
            live_workers: engine.num_workers(),
            committed_workers: engine.num_committed(),
            banked_answers: engine.num_banked_answers(),
            total_assignments,
            objective: engine.current_objective(),
            backend: engine.index().backend_name(),
            index_counters: engine.index().maintenance_counters(),
            wal: None,
        }
    }
}

struct Shared<I: SpatialIndex> {
    core: Core<I>,
    last_now: f64,
    events_applied: u64,
    total_assignments: u64,
    /// Trace id of the most recent tick (0 before the first) — what
    /// `/debug/spans` resolves by default.
    last_trace: u64,
}

/// A clonable, thread-safe handle to a shared [`AssignmentEngine`].
///
/// ```
/// use rdbsc_geo::{AngleRange, Point, Rect};
/// use rdbsc_index::GridIndex;
/// use rdbsc_model::{Confidence, Task, TaskId, TimeWindow, Worker, WorkerId};
/// use rdbsc_platform::engine::{AssignmentEngine, EngineConfig};
/// use rdbsc_platform::handle::EngineHandle;
///
/// let handle = EngineHandle::new(AssignmentEngine::new(
///     GridIndex::new(Rect::unit(), 0.25),
///     EngineConfig::default(),
/// ));
/// handle.submit_task(Task::new(
///     TaskId(0),
///     Point::new(0.6, 0.6),
///     TimeWindow::new(0.0, 10.0).unwrap(),
/// ));
/// handle.check_in(
///     Worker::new(
///         WorkerId(0),
///         Point::new(0.5, 0.5),
///         0.5,
///         AngleRange::full(),
///         Confidence::new(0.9).unwrap(),
///     )
///     .unwrap(),
/// );
/// let report = handle.tick(0.0);
/// assert_eq!(report.new_assignments.len(), 1);
/// assert_eq!(handle.assignments().len(), 1);
/// assert_eq!(handle.snapshot().total_assignments, 1);
/// ```
pub struct EngineHandle<I: SpatialIndex = GridIndex> {
    shared: Arc<Mutex<Shared<I>>>,
}

impl<I: SpatialIndex> Clone for EngineHandle<I> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<I: SpatialIndex> EngineHandle<I> {
    /// Wraps an engine (typically freshly constructed) in a shared handle.
    pub fn new(engine: AssignmentEngine<I>) -> Self {
        Self::with_core(Core::Single(Box::new(engine)))
    }

    /// Wraps a region-partitioned multi-engine
    /// ([`PartitionedEngine`]) in a shared handle. The command API is
    /// identical; events are routed by location, ticks run lockstep across
    /// every partition, and queries return merged views.
    pub fn new_partitioned(engine: PartitionedEngine) -> Self {
        Self::with_core(Core::Partitioned(Box::new(engine)))
    }

    fn with_core(core: Core<I>) -> Self {
        Self {
            shared: Arc::new(Mutex::new(Shared {
                core,
                last_now: 0.0,
                events_applied: 0,
                total_assignments: 0,
                last_trace: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Shared<I>> {
        // A poisoned engine lock means a solver thread panicked mid-tick;
        // the state may be mid-merge, so serving must stop rather than hand
        // out corrupt assignments.
        self.shared.lock().expect("engine lock poisoned")
    }

    /// Queues a raw engine event for the next tick.
    pub fn submit(&self, event: EngineEvent) {
        self.lock().core.submit(event);
    }

    /// Queues many events (in order) for the next tick.
    pub fn submit_all<E: IntoIterator<Item = EngineEvent>>(&self, events: E) {
        self.lock().core.submit_all(events);
    }

    /// Command: a new task was posted.
    pub fn submit_task(&self, task: Task) {
        self.submit(EngineEvent::TaskArrived(task));
    }

    /// Command: a task was withdrawn or expired server-side.
    pub fn expire_task(&self, id: TaskId) {
        self.submit(EngineEvent::TaskExpired(id));
    }

    /// Command: a worker checked in (or re-registered).
    pub fn check_in(&self, worker: Worker) {
        self.submit(EngineEvent::WorkerCheckIn(worker));
    }

    /// Command: a worker heartbeat reported a new position.
    pub fn move_worker(&self, id: WorkerId, to: Point) {
        self.submit(EngineEvent::WorkerMoved(id, to));
    }

    /// Command: a worker checked out.
    pub fn worker_left(&self, id: WorkerId) {
        self.submit(EngineEvent::WorkerLeft(id));
    }

    /// Command: an en-route worker delivered its answer. Returns `false`
    /// (and banks nothing) when the worker was not committed.
    pub fn record_answer(&self, worker: WorkerId, contribution: Contribution) -> bool {
        self.lock().core.record_answer(worker, contribution)
    }

    /// Command: an en-route worker gave up; it becomes available again.
    pub fn release_worker(&self, worker: WorkerId) {
        self.lock().core.release_worker(worker);
    }

    /// Runs one engine round at time `now` (see [`AssignmentEngine::tick`]).
    ///
    /// Ticks are serialised: concurrent callers run one after another, which
    /// is what the engine's per-`(tick, shard)` seeding needs.
    pub fn tick(&self, now: f64) -> TickReport {
        let mut shared = self.lock();
        let (report, trace) = shared.core.tick(now);
        shared.last_now = now;
        shared.last_trace = trace;
        shared.events_applied += report.events_applied as u64;
        shared.total_assignments += report.new_assignments.len() as u64;
        report
    }

    /// Like [`EngineHandle::tick`], but skips (returning `None`) when the
    /// engine has nothing to do — no pending events and no live tasks. This
    /// keeps an idle serving loop from burning ticks (and advancing the
    /// deterministic tick counter) while the platform is quiet. On a
    /// partitioned core one active partition ticks all of them (ticks are
    /// lockstep).
    pub fn tick_if_active(&self, now: f64) -> Option<TickReport> {
        let mut shared = self.lock();
        if !shared.core.is_active() {
            return None;
        }
        let (report, trace) = shared.core.tick(now);
        shared.last_now = now;
        shared.last_trace = trace;
        shared.events_applied += report.events_applied as u64;
        shared.total_assignments += report.new_assignments.len() as u64;
        Some(report)
    }

    /// Query: the trace id of the most recent tick (`0` before the first).
    /// [`rdbsc_obs::collect_spans`] on it returns that round's span tree —
    /// on a partitioned core, including every in-process partition's spans.
    pub fn last_trace(&self) -> u64 {
        self.lock().last_trace
    }

    /// Query: is the worker currently en route?
    pub fn is_committed(&self, worker: WorkerId) -> bool {
        self.lock().core.is_committed(worker)
    }

    /// Query: the standing committed pairs — sorted by `(task, worker)` on
    /// a single engine, by `(partition, task, worker)` on a partitioned one.
    pub fn assignments(&self) -> Vec<ValidPair> {
        self.lock().core.committed_assignments()
    }

    /// Query: a consistent snapshot of the serving state (the merged
    /// platform-wide view when partitioned).
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut shared = self.lock();
        let shared = &mut *shared;
        match &mut shared.core {
            Core::Single(engine) => EngineSnapshot::capture(
                engine,
                shared.last_now,
                shared.events_applied,
                shared.total_assignments,
            ),
            Core::Partitioned(engine) => engine.snapshot(),
        }
    }

    /// Query: the number of partitions behind this handle (1 for a plain
    /// single-engine handle).
    pub fn num_partitions(&self) -> usize {
        match &self.lock().core {
            Core::Single(_) => 1,
            Core::Partitioned(engine) => engine.num_partitions(),
        }
    }

    /// Query: one snapshot per partition, in partition order (a single
    /// engine reports itself as its only partition).
    pub fn partition_snapshots(&self) -> Vec<EngineSnapshot> {
        {
            let mut shared = self.lock();
            if let Core::Partitioned(engine) = &mut shared.core {
                return engine.partition_snapshots();
            }
        } // release the lock before snapshot() re-takes it
        vec![self.snapshot()]
    }

    /// Query: cross-partition worker handoffs performed so far (0 on a
    /// single engine).
    pub fn handoffs(&self) -> u64 {
        match &self.lock().core {
            Core::Single(_) => 0,
            Core::Partitioned(engine) => engine.handoffs(),
        }
    }

    /// Query: each partition's transport identity (backend kind, endpoint)
    /// plus its protocol counters — empty on a single engine, which has no
    /// partition protocol in the path.
    pub fn partition_transports(&self) -> Vec<crate::partition::PartitionTransport> {
        match &self.lock().core {
            Core::Single(_) => Vec::new(),
            Core::Partitioned(engine) => engine.transport_stats(),
        }
    }

    /// Query: the partitions the router has marked lost (empty on a single
    /// engine and on a fully healthy topology) — see the failure model in
    /// [`crate::partition`].
    pub fn unhealthy_partitions(&self) -> Vec<crate::partition::PartitionHealth> {
        match &self.lock().core {
            Core::Single(_) => Vec::new(),
            Core::Partitioned(engine) => engine.unhealthy_partitions(),
        }
    }

    /// Query: events routed to a lost partition and dropped (always 0 on a
    /// single engine).
    pub fn events_dropped(&self) -> u64 {
        match &self.lock().core {
            Core::Single(_) => 0,
            Core::Partitioned(engine) => engine.events_dropped(),
        }
    }

    /// Arms a standby promoter on a partitioned slot: the first transport
    /// failure there fails over to the standby instead of degrading — see
    /// the failure model in [`crate::partition`].
    ///
    /// # Panics
    ///
    /// On a single-engine handle or an out-of-range slot.
    pub fn set_standby_promoter(
        &self,
        slot: usize,
        promoter: Box<dyn crate::partition::StandbyPromoter>,
    ) {
        match &mut self.lock().core {
            Core::Single(_) => {
                panic!("standby promotion is only available on a partitioned handle")
            }
            Core::Partitioned(engine) => engine.set_standby_promoter(slot, promoter),
        }
    }

    /// Query: completed standby promotions, in the order they happened
    /// (empty on a single engine) — what `/metrics` renders under
    /// `partitions_promoted`.
    pub fn promotions(&self) -> Vec<crate::partition::PromotionRecord> {
        match &self.lock().core {
            Core::Single(_) => Vec::new(),
            Core::Partitioned(engine) => engine.promotions().to_vec(),
        }
    }

    /// Query: slots with a standby currently armed (0 on a single engine).
    pub fn standbys_armed(&self) -> usize {
        match &self.lock().core {
            Core::Single(_) => 0,
            Core::Partitioned(engine) => engine.standbys_armed(),
        }
    }

    /// Gracefully shuts down a partitioned core: ships buffered routed
    /// events, runs one final drain tick (so nothing queued is dropped and
    /// deferred handoffs resolve), then drains and stops every partition —
    /// including remote daemons, which exit on their shutdown command.
    /// Returns the final merged snapshot, or `None` on a single-engine
    /// handle (whose engine needs no teardown). Commands issued after this
    /// panic; it is the last call on a serving topology.
    pub fn shutdown_partitions(&self) -> Option<EngineSnapshot> {
        match &mut self.lock().core {
            Core::Single(_) => None,
            Core::Partitioned(engine) => Some(engine.shutdown()),
        }
    }

    /// Runs a closure with the locked engine, for callers that need an
    /// operation the command API does not cover (tests, admin endpoints).
    ///
    /// # Panics
    ///
    /// On a partitioned handle — the engines live on their own threads and
    /// cannot be borrowed; use the command API instead.
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut AssignmentEngine<I>) -> R) -> R {
        match &mut self.lock().core {
            Core::Single(engine) => f(engine),
            Core::Partitioned(_) => {
                panic!("with_engine is only available on a single-engine handle")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use rdbsc_geo::{AngleRange, Rect};
    use rdbsc_index::GridIndex;
    use rdbsc_model::{Confidence, TimeWindow};

    fn handle() -> EngineHandle {
        EngineHandle::new(AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.2),
            EngineConfig::default(),
        ))
    }

    fn task(id: u32, x: f64, y: f64) -> Task {
        Task::new(TaskId(id), Point::new(x, y), TimeWindow::new(0.0, 10.0).unwrap())
    }

    fn worker(id: u32, x: f64, y: f64) -> Worker {
        Worker::new(
            WorkerId(id),
            Point::new(x, y),
            0.5,
            AngleRange::full(),
            Confidence::new(0.9).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn commands_flow_through_to_the_engine() {
        let h = handle();
        h.submit_task(task(0, 0.6, 0.6));
        h.check_in(worker(0, 0.5, 0.5));
        let report = h.tick(0.0);
        assert_eq!(report.new_assignments.len(), 1);
        let pair = report.new_assignments[0];
        assert!(h.is_committed(pair.worker));
        assert_eq!(h.assignments(), vec![pair]);

        assert!(h.record_answer(pair.worker, pair.contribution));
        assert!(!h.is_committed(pair.worker));
        assert!(!h.record_answer(pair.worker, pair.contribution));

        let snap = h.snapshot();
        assert_eq!(snap.ticks, 1);
        assert_eq!(snap.events_applied, 2);
        assert_eq!(snap.total_assignments, 1);
        assert_eq!(snap.banked_answers, 1);
        assert!(snap.objective.min_reliability > 0.0);
        assert_eq!(snap.backend, "grid");
        assert!(snap.index_counters.tcell_rebuilds > 0);
    }

    #[test]
    fn handle_is_backend_generic() {
        use rdbsc_index::{DynSpatialIndex, FlatGridIndex};
        // A flat-backed handle and a boxed (runtime-chosen) handle both
        // drive the same command API.
        let flat = EngineHandle::new(AssignmentEngine::new(
            FlatGridIndex::new(Rect::unit(), 0.2),
            EngineConfig::default(),
        ));
        flat.submit_task(task(0, 0.6, 0.6));
        flat.check_in(worker(0, 0.5, 0.5));
        assert_eq!(flat.tick(0.0).new_assignments.len(), 1);
        assert_eq!(flat.snapshot().backend, "flat-grid");

        let boxed: DynSpatialIndex = Box::new(FlatGridIndex::new(Rect::unit(), 0.2));
        let handle = EngineHandle::new(AssignmentEngine::new(boxed, EngineConfig::default()));
        handle.submit_task(task(0, 0.6, 0.6));
        handle.check_in(worker(0, 0.5, 0.5));
        assert_eq!(handle.tick(0.0).new_assignments.len(), 1);
        assert_eq!(handle.snapshot().backend, "flat-grid");
    }

    #[test]
    fn idle_engine_skips_ticks() {
        let h = handle();
        assert!(h.tick_if_active(0.0).is_none());
        assert_eq!(h.snapshot().ticks, 0);
        h.submit_task(task(0, 0.5, 0.5));
        assert!(h.tick_if_active(0.1).is_some());
        // Live task keeps the loop active even with no new events.
        assert!(h.tick_if_active(0.2).is_some());
        h.expire_task(TaskId(0));
        assert!(h.tick_if_active(0.3).is_some()); // applies the expiration
        assert!(h.tick_if_active(0.4).is_none()); // now truly idle
    }

    #[test]
    fn concurrent_submissions_are_all_applied() {
        let h = handle();
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..25u32 {
                        h.check_in(worker(t * 25 + i, 0.5, 0.5));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        h.tick(0.0);
        assert_eq!(h.snapshot().live_workers, 100);
    }
}
