//! Angular and temporal coverage of a task's accepted answers.
//!
//! The paper's 3-D reconstruction showcase (Figures 19–20) demonstrates that
//! diverse assignments produce photos covering the landmark from many sides,
//! which is what makes the reconstructed model complete. A full
//! structure-from-motion pipeline is out of scope for this reproduction;
//! instead this module quantifies the same effect: how much of the full
//! circle the photo directions cover (given each camera's field of view) and
//! how much of the task's valid period the answer times cover (given a
//! temporal tolerance). Higher-diversity assignments score strictly higher
//! here, which is the property the showcase illustrates.

use rdbsc_geo::{normalize_angle, FULL_TURN};
use rdbsc_model::TimeWindow;

/// Coverage summary of one task's accepted answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageReport {
    /// Fraction of the full circle covered by the photo directions
    /// (each widened by the field of view).
    pub angular: f64,
    /// Fraction of the valid period covered by the answer times (each
    /// widened by the temporal tolerance).
    pub temporal: f64,
    /// Number of answers.
    pub answers: usize,
}

impl CoverageReport {
    /// A combined score `β·angular + (1−β)·temporal`.
    pub fn combined(&self, beta: f64) -> f64 {
        let beta = beta.clamp(0.0, 1.0);
        beta * self.angular + (1.0 - beta) * self.temporal
    }
}

/// Measures what fraction of intervals `[c − half, c + half]` (for the given
/// centres, on a circle of circumference `total`) is covered. Shared by the
/// angular and temporal coverage computations (the temporal one simply clamps
/// instead of wrapping).
fn covered_fraction_linear(mut intervals: Vec<(f64, f64)>, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    if span <= 0.0 || intervals.is_empty() {
        return 0.0;
    }
    for iv in &mut intervals {
        iv.0 = iv.0.max(lo);
        iv.1 = iv.1.min(hi);
    }
    intervals.retain(|iv| iv.1 > iv.0);
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite bounds"));
    let mut covered = 0.0;
    let mut current: Option<(f64, f64)> = None;
    for iv in intervals {
        match current {
            None => current = Some(iv),
            Some((s, e)) if iv.0 <= e => current = Some((s, e.max(iv.1))),
            Some((s, e)) => {
                covered += e - s;
                current = Some(iv);
            }
        }
    }
    if let Some((s, e)) = current {
        covered += e - s;
    }
    (covered / span).clamp(0.0, 1.0)
}

/// Fraction of the full circle covered by photo directions, each spanning
/// `field_of_view` radians.
pub fn angular_coverage(directions: &[f64], field_of_view: f64) -> f64 {
    if directions.is_empty() || field_of_view <= 0.0 {
        return 0.0;
    }
    if field_of_view >= FULL_TURN {
        return 1.0;
    }
    // Measure on [0, 2π): every arc is added three times (shifted by −2π, 0
    // and +2π) so that arcs wrapping around either end of the interval still
    // cover the right portion after clamping.
    let half = field_of_view / 2.0;
    let mut intervals = Vec::with_capacity(directions.len() * 3);
    for &d in directions {
        let c = normalize_angle(d);
        for shift in [-FULL_TURN, 0.0, FULL_TURN] {
            intervals.push((c - half + shift, c + half + shift));
        }
    }
    covered_fraction_linear(intervals, 0.0, FULL_TURN)
}

/// Fraction of the valid period covered by answer times, each spanning
/// `tolerance` time units.
pub fn temporal_coverage(times: &[f64], window: TimeWindow, tolerance: f64) -> f64 {
    if times.is_empty() || tolerance <= 0.0 || window.duration() <= 0.0 {
        return 0.0;
    }
    let half = tolerance / 2.0;
    let intervals = times
        .iter()
        .map(|&t| {
            let c = window.clamp(t);
            (c - half, c + half)
        })
        .collect();
    covered_fraction_linear(intervals, window.start, window.end)
}

/// Builds a coverage report from `(direction, time)` answer pairs.
pub fn coverage_report(
    answers: &[(f64, f64)],
    window: TimeWindow,
    field_of_view: f64,
    time_tolerance: f64,
) -> CoverageReport {
    let directions: Vec<f64> = answers.iter().map(|a| a.0).collect();
    let times: Vec<f64> = answers.iter().map(|a| a.1).collect();
    CoverageReport {
        angular: angular_coverage(&directions, field_of_view),
        temporal: temporal_coverage(&times, window, time_tolerance),
        answers: answers.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn window() -> TimeWindow {
        TimeWindow::new(0.0, 10.0).unwrap()
    }

    #[test]
    fn no_answers_no_coverage() {
        assert_eq!(angular_coverage(&[], 1.0), 0.0);
        assert_eq!(temporal_coverage(&[], window(), 1.0), 0.0);
    }

    #[test]
    fn single_photo_covers_its_field_of_view() {
        let c = angular_coverage(&[1.0], FRAC_PI_2);
        assert!((c - 0.25).abs() < 1e-9, "π/2 of 2π is 25 %, got {c}");
    }

    #[test]
    fn four_orthogonal_photos_cover_the_circle() {
        let dirs = [0.0, FRAC_PI_2, PI, 1.5 * PI];
        let c = angular_coverage(&dirs, FRAC_PI_2);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_photos_do_not_double_count() {
        let c = angular_coverage(&[0.0, 0.01, 0.02], FRAC_PI_2);
        assert!(c < 0.27, "clustered photos cover barely more than one, got {c}");
    }

    #[test]
    fn wrapping_arcs_are_handled() {
        // A photo pointing at 0 covers both sides of the wrap point.
        let c = angular_coverage(&[0.0], 1.0);
        assert!((c - 1.0 / FULL_TURN).abs() < 1e-9);
        // Two photos straddling the wrap point merge correctly.
        let c2 = angular_coverage(&[0.1, FULL_TURN - 0.1], 0.4);
        assert!(c2 < 0.8 / FULL_TURN + 1e-9, "wrap-adjacent arcs overlap, got {c2}");
        assert!(c2 > 0.5 / FULL_TURN);
    }

    #[test]
    fn diverse_directions_cover_more_than_clustered_ones() {
        let clustered = angular_coverage(&[0.0, 0.05, 0.1], 0.5);
        let diverse = angular_coverage(&[0.0, 2.0, 4.0], 0.5);
        assert!(diverse > clustered);
    }

    #[test]
    fn temporal_coverage_spreads_over_the_window() {
        let w = window();
        let spread = temporal_coverage(&[1.0, 5.0, 9.0], w, 2.0);
        let clustered = temporal_coverage(&[4.9, 5.0, 5.1], w, 2.0);
        assert!(spread > clustered);
        assert!((spread - 0.6).abs() < 1e-9);
    }

    #[test]
    fn temporal_coverage_clamps_at_the_window_edges() {
        let w = window();
        let c = temporal_coverage(&[0.0], w, 4.0);
        assert!((c - 0.2).abs() < 1e-9, "half the tolerance falls outside the window");
    }

    #[test]
    fn combined_report() {
        let w = window();
        let report = coverage_report(&[(0.0, 1.0), (PI, 9.0)], w, FRAC_PI_2, 2.0);
        assert_eq!(report.answers, 2);
        assert!((report.angular - 0.5).abs() < 1e-9);
        assert!((report.temporal - 0.4).abs() < 1e-9);
        assert!((report.combined(0.5) - 0.45).abs() < 1e-9);
        assert!((report.combined(1.0) - report.angular).abs() < 1e-12);
    }
}
