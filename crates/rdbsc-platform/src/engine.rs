//! The parallel batched online assignment engine.
//!
//! The platform simulator in [`crate::sim`] re-solves the whole instance
//! single-threadedly every `t_interval`. That is faithful to the paper's
//! Figure 10 but nowhere near "heavy traffic" territory: with thousands of
//! live workers the monolithic re-solve dominates the interval. This module
//! replaces it with an **event-driven, sharded, parallel** loop:
//!
//! 1. Worker moves, task arrivals and task expirations arrive as
//!    [`EngineEvent`]s and are applied to the grid index *incrementally*
//!    (`O(1)` cell updates, dirty-cell tracking — no rebuilds).
//! 2. At every [`AssignmentEngine::tick`], the live instance is partitioned
//!    into independent spatial shards — the connected components of the
//!    index's cell-reachability relation — which by construction share no
//!    valid pair, so solving them separately loses nothing.
//! 3. Shards are solved **in parallel** on scoped OS threads (see
//!    [`crate::par`]); the per-shard solver is chosen by the cost-model-based
//!    [`AdaptiveBatchSolver`] (greedy for small shards, sampling under tight
//!    deadlines, divide-and-conquer for large clustered shards).
//! 4. Per-shard assignments are merged back into the engine's standing
//!    state: newly assigned workers become *en route* and stay unavailable
//!    until the platform reports an answer or a give-up, mirroring the
//!    incremental strategy's `S_c`.
//!
//! Determinism: shard extraction is deterministic, every shard gets its own
//! seed derived from `(engine seed, tick, shard index)`, and results are
//! merged in shard order — so a run's output does not depend on thread
//! scheduling or the number of threads.

use crate::par::{default_parallelism, parallel_map};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdbsc_algos::solver::{BatchSolver, SolveRequest};
use rdbsc_algos::{DncConfig, GreedyConfig, SamplingConfig, Solver};
use rdbsc_index::cost_model::estimate_fractal_dimension;
use rdbsc_index::{GridIndex, MaintenanceCounters, ProblemShard, SpatialIndex};
use rdbsc_model::objective::TaskPriors;
use rdbsc_model::valid_pairs::{BipartiteCandidates, ValidPair};
use rdbsc_model::{
    expected_std, reliability, Assignment, Contribution, Task, TaskId, Worker, WorkerId,
};
use rdbsc_geo::{Point, Rect};
use std::collections::HashMap;
use std::time::Instant;

/// Microseconds elapsed since a stage stopwatch was started (saturating;
/// purely observational — see [`TickReport::stages`]).
fn stage_us(started: Instant) -> u64 {
    started.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// An update to the live instance, applied incrementally at the next tick.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A new task was posted (or an existing one re-posted with new data).
    TaskArrived(Task),
    /// A task was withdrawn or expired server-side.
    TaskExpired(TaskId),
    /// A worker checked in (or re-registered with new speed/heading).
    WorkerCheckIn(Worker),
    /// A worker reported a new position.
    WorkerMoved(WorkerId, Point),
    /// A worker checked out; if en route, its assignment is released.
    WorkerLeft(WorkerId),
}

/// Configuration of the engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Diversity balance weight `β` used when building shard instances.
    pub beta: f64,
    /// Worker threads for the sharded solve; `0` means "use all cores".
    pub parallelism: usize,
    /// Base seed; every `(tick, shard)` derives its own generator from it.
    pub seed: u64,
    /// Remove tasks whose valid period has ended at the start of each tick
    /// (releasing any worker still travelling towards them).
    pub auto_expire: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            beta: 0.5,
            parallelism: 0,
            seed: 42,
            auto_expire: true,
        }
    }
}

/// The cost-model-driven per-shard strategy selector.
///
/// The choice mirrors the paper's evaluation (Section 8.2/8.3: greedy has
/// the best quality but the steepest running-time curve; sampling is the
/// cheapest; divide-and-conquer sits in between and shines when the task set
/// partitions cleanly) plus the correlation fractal dimension `D₂` from the
/// index's cost model (Appendix I) as the clusteredness signal:
///
/// * shards whose pair count is below [`greedy_max_pairs`] are solved with
///   **GREEDY** — at that size its superlinear cost is irrelevant and its
///   quality is the best available;
/// * larger shards whose tightest deadline is closer than [`urgent_slack`]
///   use **SAMPLING** — the cheapest solver, guaranteeing the round finishes
///   while the answers still matter;
/// * remaining large shards estimate `D₂` of their task locations:
///   clustered shards (`D₂ ≤` [`clustered_d2`]) with at least
///   [`dnc_min_tasks`] tasks go to **D&C**, whose 2-means partitioning
///   exploits exactly that structure; the rest use **SAMPLING**.
///
/// [`greedy_max_pairs`]: AdaptiveBatchSolver::greedy_max_pairs
/// [`urgent_slack`]: AdaptiveBatchSolver::urgent_slack
/// [`clustered_d2`]: AdaptiveBatchSolver::clustered_d2
/// [`dnc_min_tasks`]: AdaptiveBatchSolver::dnc_min_tasks
#[derive(Debug, Clone)]
pub struct AdaptiveBatchSolver {
    /// Shards with at most this many valid pairs are solved greedily.
    pub greedy_max_pairs: usize,
    /// Slack threshold (time units between departure and the shard's
    /// tightest deadline) below which large shards fall back to sampling.
    pub urgent_slack: f64,
    /// Minimum task count for divide-and-conquer to be worth its
    /// partition/merge overhead.
    pub dnc_min_tasks: usize,
    /// Fractal-dimension threshold under which a shard counts as clustered.
    pub clustered_d2: f64,
    /// Configuration for the greedy solver.
    pub greedy: GreedyConfig,
    /// Configuration for the sampling solver.
    pub sampling: SamplingConfig,
    /// Configuration for the divide-and-conquer solver.
    pub dnc: DncConfig,
}

impl Default for AdaptiveBatchSolver {
    fn default() -> Self {
        Self {
            greedy_max_pairs: 1_500,
            urgent_slack: 0.5,
            dnc_min_tasks: 64,
            clustered_d2: 1.6,
            greedy: GreedyConfig::default(),
            sampling: SamplingConfig::default(),
            dnc: DncConfig::default(),
        }
    }
}

impl AdaptiveBatchSolver {
    /// Picks the solver for a shard (see the type-level docs for the rules).
    pub fn choose(&self, request: &SolveRequest<'_>) -> Solver {
        let instance = request.instance;
        let pairs = request.candidates.num_pairs();
        if pairs <= self.greedy_max_pairs {
            return Solver::Greedy(self.greedy);
        }
        let min_slack = instance
            .tasks
            .iter()
            .map(|t| t.window.end - instance.depart_at)
            .fold(f64::INFINITY, f64::min);
        if min_slack < self.urgent_slack {
            return Solver::Sampling(self.sampling);
        }
        if instance.num_tasks() >= self.dnc_min_tasks {
            let locations: Vec<Point> = instance.tasks.iter().map(|t| t.location).collect();
            let d2 = estimate_fractal_dimension(&locations, Rect::unit());
            if d2 <= self.clustered_d2 {
                return Solver::DivideAndConquer(self.dnc);
            }
        }
        Solver::Sampling(self.sampling)
    }
}

impl BatchSolver for AdaptiveBatchSolver {
    fn solve_shard(&self, request: &SolveRequest<'_>, rng: &mut StdRng) -> Assignment {
        self.choose(request).solve(request, rng)
    }

    fn strategy_name(&self, request: &SolveRequest<'_>) -> &'static str {
        self.choose(request).name()
    }

    fn solve_shard_named(
        &self,
        request: &SolveRequest<'_>,
        rng: &mut StdRng,
    ) -> (&'static str, Assignment) {
        // One decision per shard: the slack scan and fractal-dimension
        // estimate are not repeated for the name.
        let solver = self.choose(request);
        (solver.name(), solver.solve(request, rng))
    }
}

/// What one engine tick did.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// The tick's time (workers depart no earlier).
    pub now: f64,
    /// Events drained from the queue this tick.
    pub events_applied: usize,
    /// Tasks auto-expired at the start of the tick.
    pub tasks_expired: usize,
    /// Number of independent shards solved.
    pub num_shards: usize,
    /// Valid pairs in the largest shard (the parallel critical path).
    pub largest_shard_pairs: usize,
    /// Solver picked per shard, in shard order.
    pub strategies: Vec<&'static str>,
    /// The pairs newly committed this tick, in live ids.
    pub new_assignments: Vec<ValidPair>,
    /// Wall-clock seconds spent in the sharded solve (excludes event
    /// application and shard extraction).
    pub solve_seconds: f64,
    /// Per-shard solve seconds, in shard order. Their maximum is the
    /// parallel critical path: with enough cores the sharded solve takes
    /// `max` instead of `sum` seconds.
    pub shard_solve_seconds: Vec<f64>,
    /// Index maintenance performed during this tick (event application plus
    /// the refresh inside shard extraction): cross-cell relocations, cells
    /// repaired and `tcell_list` rebuilds.
    pub index_maintenance: MaintenanceCounters,
    /// Wall-clock microseconds per tick stage (apply / extract / solve /
    /// merge here; the WAL stages are filled in by a durable
    /// `EnginePartition`). Observational only — never fed back into engine
    /// decisions — and merged across partitions by per-stage max, like
    /// [`TickReport::solve_seconds`].
    pub stages: rdbsc_obs::StageTimings,
}

impl TickReport {
    /// The parallel critical path: the slowest single shard's solve time.
    pub fn critical_path_seconds(&self) -> f64 {
        self.shard_solve_seconds
            .iter()
            .fold(0.0f64, |acc, s| acc.max(*s))
    }
}

/// Aggregate quality of the engine's standing state (banked answers plus
/// en-route workers), mirroring [`rdbsc_model::ObjectiveValue`] for the
/// online setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineObjective {
    /// Minimum reliability over tasks with at least one contribution.
    /// `1.0` when no task has any.
    pub min_reliability: f64,
    /// Total expected spatial/temporal diversity over all tasks (live and
    /// retired) with contributions.
    pub total_std: f64,
    /// Number of tasks with at least one contribution.
    pub covered_tasks: usize,
}

/// The event-driven parallel assignment engine.
///
/// See the [module docs](self) for the architecture. Typical driving loop:
///
/// ```
/// use rdbsc_geo::{AngleRange, Point, Rect};
/// use rdbsc_index::GridIndex;
/// use rdbsc_model::{Confidence, Task, TaskId, TimeWindow, Worker, WorkerId};
/// use rdbsc_platform::engine::{AssignmentEngine, EngineConfig, EngineEvent};
///
/// let mut engine = AssignmentEngine::new(
///     GridIndex::new(Rect::unit(), 0.25),
///     EngineConfig::default(),
/// );
/// engine.submit(EngineEvent::TaskArrived(Task::new(
///     TaskId(0),
///     Point::new(0.6, 0.6),
///     TimeWindow::new(0.0, 10.0).unwrap(),
/// )));
/// engine.submit(EngineEvent::WorkerCheckIn(
///     Worker::new(
///         WorkerId(0),
///         Point::new(0.5, 0.5),
///         0.5,
///         AngleRange::full(),
///         Confidence::new(0.9).unwrap(),
///     )
///     .unwrap(),
/// ));
/// let report = engine.tick(0.0);
/// assert_eq!(report.new_assignments.len(), 1);
///
/// // The worker arrives and answers; its contribution is banked and the
/// // worker becomes available again.
/// let pair = report.new_assignments[0];
/// engine.record_answer(pair.worker, pair.contribution);
/// assert!(engine.current_objective().min_reliability > 0.0);
/// ```
pub struct AssignmentEngine<I: SpatialIndex = GridIndex> {
    index: I,
    config: EngineConfig,
    solver: Box<dyn BatchSolver + Send>,
    pending: Vec<EngineEvent>,
    /// Workers currently travelling under the standing assignment.
    committed: HashMap<WorkerId, (TaskId, Contribution)>,
    /// Answers received, per task (live or retired).
    banked: HashMap<TaskId, Vec<Contribution>>,
    /// Tasks that expired or were withdrawn, kept for objective accounting.
    retired: HashMap<TaskId, Task>,
    /// Running total of banked answers, so the count is O(1) (the banked
    /// map grows for the engine's lifetime; summing it on every metrics
    /// scrape would hold the engine lock for O(answers)).
    banked_total: usize,
    tick_count: u64,
}

impl<I: SpatialIndex> AssignmentEngine<I> {
    /// Creates an engine over an index (usually empty) with the
    /// cost-model-driven [`AdaptiveBatchSolver`].
    pub fn new(index: I, config: EngineConfig) -> Self {
        Self::with_solver(index, config, Box::new(AdaptiveBatchSolver::default()))
    }

    /// Creates an engine with an explicit per-shard solver (e.g. a fixed
    /// [`Solver`] for apples-to-apples comparisons).
    pub fn with_solver(
        index: I,
        config: EngineConfig,
        solver: Box<dyn BatchSolver + Send>,
    ) -> Self {
        Self {
            index,
            config,
            solver,
            pending: Vec::new(),
            committed: HashMap::new(),
            banked: HashMap::new(),
            retired: HashMap::new(),
            banked_total: 0,
            tick_count: 0,
        }
    }

    /// Queues an event for the next tick.
    pub fn submit(&mut self, event: EngineEvent) {
        self.pending.push(event);
    }

    /// Queues many events for the next tick.
    pub fn submit_all<E: IntoIterator<Item = EngineEvent>>(&mut self, events: E) {
        self.pending.extend(events);
    }

    /// Number of events queued and not yet applied by a tick.
    pub fn num_pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Number of live tasks.
    pub fn num_tasks(&self) -> usize {
        self.index.num_tasks()
    }

    /// Number of live workers.
    pub fn num_workers(&self) -> usize {
        self.index.num_workers()
    }

    /// Is the worker currently travelling under the standing assignment?
    pub fn is_committed(&self, worker: WorkerId) -> bool {
        self.committed.contains_key(&worker)
    }

    /// Number of workers currently travelling under the standing assignment.
    pub fn num_committed(&self) -> usize {
        self.committed.len()
    }

    /// Number of answers banked so far (over live and retired tasks).
    pub fn num_banked_answers(&self) -> usize {
        debug_assert_eq!(
            self.banked_total,
            // lint:allow(D001): integer length sum — order-insensitive
            self.banked.values().map(Vec::len).sum::<usize>()
        );
        self.banked_total
    }

    /// Number of ticks run so far.
    pub fn num_ticks(&self) -> u64 {
        self.tick_count
    }

    /// The standing committed pairs (workers currently en route), sorted by
    /// `(task, worker)` so the listing is deterministic.
    pub fn committed_assignments(&self) -> Vec<ValidPair> {
        let mut pairs: Vec<ValidPair> = self
            // lint:allow(D001): collected here, sorted before returning
            .committed
            .iter()
            .map(|(worker, (task, contribution))| ValidPair {
                task: *task,
                worker: *worker,
                contribution: *contribution,
            })
            .collect();
        pairs.sort_by_key(|p| (p.task, p.worker));
        pairs
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The live index (read-only).
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The worker completed its task: its contribution is banked and the
    /// worker becomes available for the next tick. Returns `false` (banking
    /// nothing) when the worker was not en route.
    pub fn record_answer(&mut self, worker: WorkerId, contribution: Contribution) -> bool {
        if let Some((task, _)) = self.committed.remove(&worker) {
            self.banked.entry(task).or_default().push(contribution);
            self.banked_total += 1;
            true
        } else {
            false
        }
    }

    /// The worker gave up (rejection, missed deadline, …): it becomes
    /// available again and nothing is banked.
    pub fn release_worker(&mut self, worker: WorkerId) {
        self.committed.remove(&worker);
    }

    /// Runs one engine round at time `now`: drains the event queue, expires
    /// stale tasks, shards the live instance and solves the shards in
    /// parallel, committing the newly assigned workers.
    pub fn tick(&mut self, now: f64) -> TickReport {
        let stage_started = Instant::now(); // lint:allow(D002): stage stopwatch — observational timing only, reported but never read by a decision
        let counters_before = self.index.maintenance_counters();
        let events: Vec<EngineEvent> = std::mem::take(&mut self.pending);
        let events_applied = events.len();
        for event in events {
            self.apply(event);
        }

        let mut tasks_expired = 0usize;
        if self.config.auto_expire {
            for id in self.index.expired_tasks(now) {
                self.retire_task(id);
                tasks_expired += 1;
            }
        }
        let apply_us = stage_us(stage_started);

        let stage_started = Instant::now(); // lint:allow(D002): stage stopwatch — observational timing only, reported but never read by a decision
        self.index.set_depart_at(now);
        let shards = self.index.extract_shards(self.config.beta);
        let index_maintenance = self
            .index
            .maintenance_counters()
            .delta_since(&counters_before);

        // Restrict every shard to available (non-committed) workers and
        // carry the banked + en-route contributions in as priors (see
        // `shard_priors` for the append-order contract).
        let prepared: Vec<(ProblemShard, BipartiteCandidates, TaskPriors)> = shards
            .into_iter()
            .filter_map(|shard| {
                let mut available = BipartiteCandidates::with_capacity(
                    shard.instance.num_tasks(),
                    shard.instance.num_workers(),
                );
                for pair in &shard.candidates.pairs {
                    let live_worker = shard.mapping.worker(pair.worker);
                    if !self.committed.contains_key(&live_worker) {
                        available.push(*pair);
                    }
                }
                if available.pairs.is_empty() {
                    return None;
                }
                let live_to_local: HashMap<TaskId, TaskId> = shard
                    .mapping
                    .tasks
                    .iter()
                    .enumerate()
                    .map(|(local, live)| (*live, TaskId::from(local)))
                    .collect();
                let priors = self.shard_priors(&live_to_local, shard.instance.num_tasks());
                Some((shard, available, priors))
            })
            .collect();

        let num_shards = prepared.len();
        let largest_shard_pairs = prepared
            .iter()
            .map(|(_, available, _)| available.num_pairs())
            .max()
            .unwrap_or(0);
        let extract_us = stage_us(stage_started);

        let threads = if self.config.parallelism == 0 {
            default_parallelism()
        } else {
            self.config.parallelism
        };
        let base_seed = mix_seed(self.config.seed, self.tick_count);
        let solver = self.solver.as_ref();

        let started = Instant::now(); // lint:allow(D002): stage stopwatch — observational timing only, reported but never read by a decision
        let solved: Vec<(ProblemShard, Assignment, &'static str, f64)> = parallel_map(
            prepared,
            threads,
            |shard_idx, (shard, available, priors)| {
                let shard_started = Instant::now(); // lint:allow(D002): stage stopwatch — observational timing only, reported but never read by a decision
                let request =
                    SolveRequest::new(&shard.instance, &available).with_priors(&priors);
                let mut rng = StdRng::seed_from_u64(mix_seed(base_seed, shard_idx as u64));
                let (strategy, assignment) = solver.solve_shard_named(&request, &mut rng);
                (
                    shard,
                    assignment,
                    strategy,
                    shard_started.elapsed().as_secs_f64(),
                )
            },
        );
        let solve_seconds = started.elapsed().as_secs_f64();

        let stage_started = Instant::now(); // lint:allow(D002): stage stopwatch — observational timing only, reported but never read by a decision
        let mut new_assignments = Vec::new();
        let mut strategies = Vec::with_capacity(solved.len());
        let mut shard_solve_seconds = Vec::with_capacity(solved.len());
        for (shard, assignment, strategy, seconds) in solved {
            strategies.push(strategy);
            shard_solve_seconds.push(seconds);
            for (local_task, local_worker, contribution) in assignment.iter() {
                let task = shard.mapping.task(local_task);
                let worker = shard.mapping.worker(local_worker);
                debug_assert!(!self.committed.contains_key(&worker));
                self.committed.insert(worker, (task, contribution));
                new_assignments.push(ValidPair {
                    task,
                    worker,
                    contribution,
                });
            }
        }

        let merge_us = stage_us(stage_started);

        self.tick_count += 1;
        TickReport {
            now,
            events_applied,
            tasks_expired,
            num_shards,
            largest_shard_pairs,
            strategies,
            new_assignments,
            solve_seconds,
            shard_solve_seconds,
            index_maintenance,
            stages: rdbsc_obs::StageTimings {
                apply_us,
                extract_us,
                solve_us: (solve_seconds * 1e6) as u64,
                merge_us,
                wal_append_us: 0,
                wal_fsync_us: 0,
            },
        }
    }

    /// Builds one shard's priors: the banked and en-route (committed)
    /// contributions of the shard's live tasks, remapped to local ids.
    ///
    /// The **append order is part of the determinism contract**: priors
    /// land in per-task float buckets whose downstream statistics fold in
    /// bucket order, so the order must be identical in every process. Two
    /// workers en route to the same task would otherwise append in
    /// `HashMap` iteration order, which differs between replicas (and
    /// between a live engine and one rebuilt by `restore_state`). This
    /// method therefore iterates sorted snapshots — banked first in
    /// ascending task order, then commitments in ascending worker order —
    /// and the regression test compares its output across engines restored
    /// from permuted state vectors.
    fn shard_priors(
        &self,
        live_to_local: &HashMap<TaskId, TaskId>,
        num_tasks: usize,
    ) -> TaskPriors {
        let mut priors = TaskPriors::empty(num_tasks);
        // lint:allow(D001): collected here, sorted on the next line
        let mut banked_sorted: Vec<(&TaskId, &Vec<Contribution>)> = self.banked.iter().collect();
        banked_sorted.sort_unstable_by_key(|(task, _)| **task);
        let mut committed_sorted: Vec<(&WorkerId, &(TaskId, Contribution))> =
            // lint:allow(D001): collected here, sorted on the next line
            self.committed.iter().collect();
        committed_sorted.sort_unstable_by_key(|(worker, _)| **worker);
        for (live, contributions) in banked_sorted {
            if let Some(local) = live_to_local.get(live) {
                for c in contributions {
                    priors.add(*local, *c);
                }
            }
        }
        for (_, (task, contribution)) in committed_sorted {
            if let Some(local) = live_to_local.get(task) {
                priors.add(*local, *contribution);
            }
        }
        priors
    }

    /// The quality of the standing state: banked answers plus en-route
    /// workers, over live and retired tasks.
    pub fn current_objective(&self) -> EngineObjective {
        // Overlay the (small) en-route set on the banked answers without
        // cloning the whole banked map: only tasks with an en-route worker
        // need a merged contribution vector.
        // Built in ascending worker order (not HashMap order) so each
        // task's contribution vector — and therefore the float fold inside
        // expected_std — is identical on every engine with the same state.
        let mut committed: Vec<(WorkerId, (TaskId, Contribution))> = self
            // lint:allow(D001): collected here, sorted two lines down
            .committed
            .iter()
            .map(|(w, tc)| (*w, *tc))
            .collect();
        committed.sort_unstable_by_key(|(worker, _)| *worker);
        let mut en_route: HashMap<TaskId, Vec<Contribution>> = HashMap::new();
        for (_, (worker_task, contribution)) in committed {
            en_route
                .entry(worker_task)
                .or_default()
                .push(contribution);
        }

        let mut min_reliability = f64::INFINITY;
        let mut total_std = 0.0;
        let mut covered_tasks = 0usize;
        let mut merged = Vec::new();
        let mut score = |task_id: &TaskId, contributions: &[Contribution]| {
            if contributions.is_empty() {
                return;
            }
            let Some(task) = self
                .index
                .task(*task_id)
                .or_else(|| self.retired.get(task_id))
            else {
                return;
            };
            covered_tasks += 1;
            let confidences: Vec<_> = contributions.iter().map(|c| c.confidence).collect();
            min_reliability = min_reliability.min(reliability(&confidences));
            total_std += expected_std(
                contributions,
                task.window,
                task.effective_beta(self.config.beta),
            );
        };
        // Fold in ascending task order: float addition is not associative,
        // so a HashMap-order fold would make total_std differ in the last
        // ulp between identically-stated engines — breaking the protocol's
        // byte-identical snapshot contract across processes.
        // lint:allow(D001): collected here, sorted on the next line
        let mut banked_ids: Vec<TaskId> = self.banked.keys().copied().collect();
        banked_ids.sort_unstable();
        for task_id in &banked_ids {
            let banked = &self.banked[task_id];
            match en_route.remove(task_id) {
                Some(extra) => {
                    merged.clear();
                    merged.extend_from_slice(banked);
                    merged.extend_from_slice(&extra);
                    score(task_id, &merged);
                }
                None => score(task_id, banked),
            }
        }
        // lint:allow(D001): collected here, sorted on the next line
        let mut en_route_ids: Vec<TaskId> = en_route.keys().copied().collect();
        en_route_ids.sort_unstable();
        for task_id in &en_route_ids {
            score(task_id, &en_route[task_id]);
        }

        if min_reliability == f64::INFINITY {
            min_reliability = 1.0;
        }
        EngineObjective {
            min_reliability,
            total_std,
            covered_tasks,
        }
    }

    fn apply(&mut self, event: EngineEvent) {
        match event {
            EngineEvent::TaskArrived(task) => {
                self.retired.remove(&task.id);
                // Re-posting a *live* task id with different data (moved
                // location, new window, new β) invalidates the standing
                // commitments: an en-route worker's contribution (approach
                // angle, arrival, deadline fit) was computed against the old
                // definition, and leaving it committed would either bank a
                // stale answer or orphan the traveller. Release those
                // workers so the next tick re-solves them against the new
                // definition. An *identical* re-post (an at-least-once wire
                // retry) is idempotent and keeps commitments.
                if let Some(old) = self.index.task(task.id) {
                    if *old != task {
                        self.committed.retain(|_, (t, _)| *t != task.id);
                    }
                }
                self.index.insert_task(task);
            }
            EngineEvent::TaskExpired(id) => self.retire_task(id),
            EngineEvent::WorkerCheckIn(worker) => self.index.insert_worker(worker),
            EngineEvent::WorkerMoved(id, to) => self.index.relocate_worker(id, to),
            EngineEvent::WorkerLeft(id) => {
                self.committed.remove(&id);
                self.index.remove_worker(id);
            }
        }
    }

    /// Removes a task from the live index, releasing workers still
    /// travelling towards it, and keeps it around for objective accounting.
    fn retire_task(&mut self, id: TaskId) {
        if let Some(task) = self.index.task(id).copied() {
            self.retired.insert(id, task);
            self.index.remove_task(id);
        }
        self.committed.retain(|_, (task, _)| *task != id);
    }

    /// Captures the engine's full logical state in the canonical (sorted)
    /// order, for checkpointing. Restoring the result with
    /// [`AssignmentEngine::restore_state`] into an empty index of any
    /// backend yields an engine whose observable behaviour — tick outputs,
    /// objective, snapshots — is byte-identical to this one's (the index
    /// determinism contract is content-based, so rebuilding by re-insertion
    /// loses nothing; only maintenance counters differ).
    pub fn dump_state(&self) -> EngineState {
        let mut committed: Vec<(WorkerId, TaskId, Contribution)> = self
            // lint:allow(D001): collected here, sorted two lines down
            .committed
            .iter()
            .map(|(w, (t, c))| (*w, *t, *c))
            .collect();
        committed.sort_unstable_by_key(|(w, _, _)| *w);
        // Banked contribution vectors keep their arrival order: the float
        // folds in `current_objective` are order-sensitive, so the inner
        // order is part of the state.
        let mut banked: Vec<(TaskId, Vec<Contribution>)> = self
            // lint:allow(D001): collected here, sorted two lines down
            .banked
            .iter()
            .map(|(t, cs)| (*t, cs.clone()))
            .collect();
        banked.sort_unstable_by_key(|(t, _)| *t);
        // lint:allow(D001): collected here, sorted on the next line
        let mut retired: Vec<Task> = self.retired.values().copied().collect();
        retired.sort_unstable_by_key(|t| t.id);
        EngineState {
            depart_at: self.index.depart_at(),
            allow_wait: self.index.allow_wait(),
            tasks: self.index.live_tasks(),
            workers: self.index.live_workers(),
            pending: self.pending.clone(),
            committed,
            banked,
            retired,
            tick_count: self.tick_count,
        }
    }

    /// Rebuilds an engine from a [`dump_state`](AssignmentEngine::dump_state)
    /// checkpoint: `index` must be empty and spatially compatible with the
    /// one that produced the state (same space and cell size — recovery uses
    /// the persisted serving configuration to guarantee this).
    pub fn restore_state(mut index: I, config: EngineConfig, state: EngineState) -> Self {
        for task in &state.tasks {
            index.insert_task(*task);
        }
        for worker in &state.workers {
            index.insert_worker(*worker);
        }
        index.set_depart_at(state.depart_at);
        index.set_allow_wait(state.allow_wait);
        let mut engine = Self::new(index, config);
        engine.pending = state.pending;
        engine.committed = state
            .committed
            .into_iter()
            .map(|(w, t, c)| (w, (t, c)))
            .collect();
        engine.banked_total = state.banked.iter().map(|(_, cs)| cs.len()).sum();
        engine.banked = state.banked.into_iter().collect();
        engine.retired = state.retired.into_iter().map(|t| (t.id, t)).collect();
        engine.tick_count = state.tick_count;
        engine
    }
}

/// The engine's full logical state in canonical order — everything a
/// checkpoint must carry to reconstruct an [`AssignmentEngine`] exactly
/// (index content, queued events, standing commitments, banked answers,
/// retired tasks and the tick counter; the solver and config are supplied
/// by the restoring side from its serving configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// The index's departure time.
    pub depart_at: f64,
    /// The index's waiting policy.
    pub allow_wait: bool,
    /// Live tasks, ascending id.
    pub tasks: Vec<Task>,
    /// Live workers, ascending id.
    pub workers: Vec<Worker>,
    /// Events queued and not yet applied, in submission order.
    pub pending: Vec<EngineEvent>,
    /// Standing commitments, ascending worker id.
    pub committed: Vec<(WorkerId, TaskId, Contribution)>,
    /// Banked answers per task, ascending task id; each task's vector keeps
    /// arrival order (the objective's float folds depend on it).
    pub banked: Vec<(TaskId, Vec<Contribution>)>,
    /// Retired tasks kept for objective accounting, ascending id.
    pub retired: Vec<Task>,
    /// Ticks run so far (drives per-tick solver seeding).
    pub tick_count: u64,
}

// Per-tick / per-shard seed derivation: the shared SplitMix64-style mixer
// (also used by the region partitioner's per-split k-means seeding).
use rdbsc_cluster::mix_seed;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rdbsc_geo::AngleRange;
    use rdbsc_model::valid_pairs::compute_valid_pairs;
    use rdbsc_model::{evaluate, Confidence, ProblemInstance, TimeWindow};

    fn task(id: u32, x: f64, y: f64, start: f64, end: f64) -> Task {
        Task::new(
            TaskId(id),
            Point::new(x, y),
            TimeWindow::new(start, end).unwrap(),
        )
    }

    fn worker(id: u32, x: f64, y: f64, speed: f64) -> Worker {
        Worker::new(
            WorkerId(id),
            Point::new(x, y),
            speed,
            AngleRange::full(),
            Confidence::new(0.9).unwrap(),
        )
        .unwrap()
    }

    /// A clustered world: `clusters` groups of co-located tasks and workers,
    /// too slow to cross between groups before the deadlines.
    fn clustered_events(clusters: usize, per_cluster: usize) -> Vec<EngineEvent> {
        let mut events = Vec::new();
        let mut rng = StdRng::seed_from_u64(99);
        let mut next_task = 0u32;
        let mut next_worker = 0u32;
        for c in 0..clusters {
            let cx = 0.15 + 0.7 * (c % 3) as f64 / 2.0;
            let cy = 0.15 + 0.7 * (c / 3) as f64 / 2.0;
            for _ in 0..per_cluster {
                let dx: f64 = rng.gen_range(-0.04..0.04);
                let dy: f64 = rng.gen_range(-0.04..0.04);
                events.push(EngineEvent::TaskArrived(task(
                    next_task,
                    cx + dx,
                    cy + dy,
                    0.0,
                    2.0,
                )));
                next_task += 1;
                let dx: f64 = rng.gen_range(-0.04..0.04);
                let dy: f64 = rng.gen_range(-0.04..0.04);
                events.push(EngineEvent::WorkerCheckIn(worker(
                    next_worker,
                    cx + dx,
                    cy + dy,
                    0.08,
                )));
                next_worker += 1;
            }
        }
        events
    }

    fn engine_with(events: Vec<EngineEvent>, parallelism: usize) -> AssignmentEngine {
        let mut engine = AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.1),
            EngineConfig {
                parallelism,
                ..EngineConfig::default()
            },
        );
        engine.submit_all(events);
        engine
    }

    /// The priors bucket order must not depend on the insertion order of
    /// the `committed`/`banked` hash maps. Before `shard_priors` iterated
    /// sorted snapshots it walked `self.committed.values()` directly, so
    /// engines restored from permuted state vectors appended a task's
    /// en-route contributions in different orders — caught here by
    /// `TaskPriors`'s order-sensitive equality, independently of whether
    /// the divergence survives downstream float rounding.
    #[test]
    fn shard_priors_are_insertion_order_independent() {
        fn contribution(seed: u64) -> Contribution {
            Contribution::new(
                Confidence::new(0.5 + 0.4 * ((seed * 2_654_435_761) % 100) as f64 / 100.0)
                    .unwrap(),
                0.1 + seed as f64,
                0.05 * seed as f64 + 0.01,
            )
        }
        fn restore(rotation: usize) -> AssignmentEngine {
            let mut committed: Vec<(WorkerId, TaskId, Contribution)> = vec![
                (WorkerId(10), TaskId(2), contribution(1)),
                (WorkerId(11), TaskId(2), contribution(2)),
                (WorkerId(12), TaskId(2), contribution(3)),
                (WorkerId(13), TaskId(0), contribution(4)),
                (WorkerId(14), TaskId(1), contribution(5)),
            ];
            let mut banked: Vec<(TaskId, Vec<Contribution>)> = vec![
                (TaskId(0), vec![contribution(6), contribution(7)]),
                (TaskId(2), vec![contribution(8)]),
            ];
            let committed_rot = rotation % committed.len();
            committed.rotate_left(committed_rot);
            let banked_rot = rotation % banked.len();
            banked.rotate_left(banked_rot);
            if rotation % 2 == 1 {
                committed.reverse();
                banked.reverse();
            }
            let state = EngineState {
                depart_at: 0.0,
                allow_wait: true,
                tasks: (0..3)
                    .map(|i| task(i, 0.2 + 0.2 * i as f64, 0.5, 0.0, 4.0))
                    .collect(),
                workers: (10..15)
                    .map(|i| worker(i, 0.1 * (i - 10) as f64, 0.9, 0.2))
                    .collect(),
                pending: Vec::new(),
                committed,
                banked,
                retired: Vec::new(),
                tick_count: 0,
            };
            AssignmentEngine::restore_state(
                GridIndex::new(Rect::unit(), 0.1),
                EngineConfig::default(),
                state,
            )
        }
        let live_to_local: HashMap<TaskId, TaskId> =
            (0..3).map(|i| (TaskId(i), TaskId(i))).collect();
        let reference = restore(0).shard_priors(&live_to_local, 3);
        assert!(!reference.is_empty());
        for rotation in 1..5 {
            assert_eq!(
                restore(rotation).shard_priors(&live_to_local, 3),
                reference,
                "priors bucket order diverged at rotation {rotation}"
            );
        }
    }

    #[test]
    fn tick_assigns_and_commits_workers() {
        let mut engine = engine_with(clustered_events(4, 6), 1);
        let report = engine.tick(0.0);
        assert!(report.num_shards >= 2, "clusters must shard: {}", report.num_shards);
        assert!(!report.new_assignments.is_empty());
        for pair in &report.new_assignments {
            assert!(engine.is_committed(pair.worker));
        }
        // A second tick with no completions assigns nothing new.
        let second = engine.tick(0.1);
        assert!(second.new_assignments.is_empty());
    }

    #[test]
    fn engine_result_is_byte_identical_across_backends() {
        use rdbsc_index::FlatGridIndex;
        // Drive a grid-backed and a flat-backed engine through the identical
        // multi-tick script (arrivals, answers, a wave of worker movement)
        // and require *element-wise identical* tick outputs — the
        // cross-backend determinism contract the pluggable index layer
        // guarantees.
        fn drive<I: SpatialIndex>(index: I) -> Vec<Vec<ValidPair>> {
            let mut engine = AssignmentEngine::new(
                index,
                EngineConfig {
                    parallelism: 2,
                    ..EngineConfig::default()
                },
            );
            engine.submit_all(clustered_events(5, 6));
            let mut outputs = Vec::new();
            let first = engine.tick(0.0);
            // Complete a few assignments so workers free up and move.
            for pair in first.new_assignments.iter().take(5) {
                engine.record_answer(pair.worker, pair.contribution);
            }
            outputs.push(first.new_assignments);
            for (i, id) in (0..30u32).enumerate() {
                engine.submit(EngineEvent::WorkerMoved(
                    WorkerId(id),
                    Point::new(0.1 + 0.027 * i as f64, 0.8 - 0.021 * i as f64),
                ));
            }
            outputs.push(engine.tick(0.5).new_assignments);
            outputs.push(engine.tick(1.0).new_assignments);
            outputs
        }
        let grid = drive(GridIndex::new(Rect::unit(), 0.1));
        let flat = drive(FlatGridIndex::new(Rect::unit(), 0.1));
        assert_eq!(grid, flat, "backends must produce identical assignments");
        assert!(grid.iter().map(Vec::len).sum::<usize>() > 0);
    }

    #[test]
    fn tick_reports_index_maintenance_deltas() {
        let mut engine = engine_with(clustered_events(3, 5), 1);
        let first = engine.tick(0.0);
        assert!(
            first.index_maintenance.tcell_rebuilds > 0,
            "first tick builds the reachability lists"
        );
        // A wave of cross-cell movement shows up as relocations.
        for id in 0..10u32 {
            engine.submit(EngineEvent::WorkerMoved(WorkerId(id), Point::new(0.95, 0.05)));
        }
        let second = engine.tick(0.1);
        assert!(second.index_maintenance.relocations > 0);
        // An idle tick performs no maintenance.
        let idle = engine.tick(0.2);
        assert_eq!(idle.index_maintenance, MaintenanceCounters::default());
    }

    #[test]
    fn engine_result_is_independent_of_parallelism() {
        let run = |threads: usize| {
            let mut engine = engine_with(clustered_events(5, 8), threads);
            let report = engine.tick(0.0);
            let mut pairs: Vec<(TaskId, WorkerId)> = report
                .new_assignments
                .iter()
                .map(|p| (p.task, p.worker))
                .collect();
            pairs.sort();
            pairs
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential, parallel, "thread count must not change the result");
    }

    #[test]
    fn engine_quality_matches_monolithic_solve() {
        // The shards share no valid pair, so the sharded solve must reach the
        // same objective as one monolithic greedy solve over the full
        // instance (both end up greedy here: shards are small).
        let events = clustered_events(4, 6);
        let mut engine = engine_with(events.clone(), 2);
        let report = engine.tick(0.0);

        // Monolithic baseline over the identical instance.
        let tasks: Vec<Task> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::TaskArrived(t) => Some(*t),
                _ => None,
            })
            .collect();
        let workers: Vec<Worker> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::WorkerCheckIn(w) => Some(*w),
                _ => None,
            })
            .collect();
        let instance = ProblemInstance::new(tasks, workers, 0.5);
        let candidates = compute_valid_pairs(&instance);
        let request = SolveRequest::new(&instance, &candidates);
        let baseline = rdbsc_algos::greedy(&request, &GreedyConfig::default());
        let baseline_value = evaluate(&instance, &baseline);

        // Compare: engine committed pairs vs the baseline assignment.
        let mut engine_assignment = Assignment::for_instance(&instance);
        for pair in &report.new_assignments {
            engine_assignment
                .assign(pair.task, pair.worker, pair.contribution)
                .unwrap();
        }
        let engine_value = evaluate(&instance, &engine_assignment);

        assert_eq!(engine_value.assigned_workers, baseline_value.assigned_workers);
        assert!(
            (engine_value.total_std - baseline_value.total_std).abs()
                <= 0.05 * baseline_value.total_std.max(1e-9),
            "sharded {} vs monolithic {}",
            engine_value.total_std,
            baseline_value.total_std
        );
        assert!(
            (engine_value.min_reliability - baseline_value.min_reliability).abs() < 1e-9,
            "sharded {} vs monolithic {}",
            engine_value.min_reliability,
            baseline_value.min_reliability
        );
    }

    #[test]
    fn answers_release_workers_and_bank_contributions() {
        let mut engine = engine_with(clustered_events(2, 4), 1);
        let report = engine.tick(0.0);
        let done = report.new_assignments[0];
        engine.record_answer(done.worker, done.contribution);
        assert!(!engine.is_committed(done.worker));
        let objective = engine.current_objective();
        assert!(objective.min_reliability > 0.0);
        assert!(objective.covered_tasks >= 1);
        // The freed worker can serve again.
        let next = engine.tick(0.1);
        assert!(next.new_assignments.iter().any(|p| p.worker == done.worker));
    }

    #[test]
    fn expiration_retires_tasks_and_releases_travellers() {
        let mut engine = AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.2),
            EngineConfig::default(),
        );
        engine.submit(EngineEvent::TaskArrived(task(0, 0.5, 0.5, 0.0, 1.0)));
        engine.submit(EngineEvent::WorkerCheckIn(worker(0, 0.4, 0.4, 0.5)));
        let report = engine.tick(0.0);
        assert_eq!(report.new_assignments.len(), 1);
        assert!(engine.is_committed(WorkerId(0)));

        // Time passes beyond the deadline without an answer.
        let late = engine.tick(2.0);
        assert_eq!(late.tasks_expired, 1);
        assert_eq!(engine.num_tasks(), 0);
        assert!(!engine.is_committed(WorkerId(0)), "traveller must be released");
    }

    #[test]
    fn worker_events_update_the_live_state() {
        let mut engine = AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.2),
            EngineConfig::default(),
        );
        engine.submit(EngineEvent::TaskArrived(task(0, 0.9, 0.9, 0.0, 2.0)));
        engine.submit(EngineEvent::WorkerCheckIn(worker(0, 0.1, 0.1, 0.05)));
        let report = engine.tick(0.0);
        assert!(report.new_assignments.is_empty(), "too slow from afar");

        // The worker wanders close to the task and becomes assignable.
        engine.submit(EngineEvent::WorkerMoved(WorkerId(0), Point::new(0.85, 0.85)));
        let report = engine.tick(0.1);
        assert_eq!(report.new_assignments.len(), 1);

        // It leaves: the commitment disappears with it.
        engine.submit(EngineEvent::WorkerLeft(WorkerId(0)));
        engine.tick(0.2);
        assert_eq!(engine.num_workers(), 0);
        assert!(!engine.is_committed(WorkerId(0)));
    }

    #[test]
    fn identical_task_repost_keeps_the_en_route_worker() {
        // At-least-once delivery: a wire retry of the same task post must
        // not tear down the standing assignment.
        let mut engine = AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.2),
            EngineConfig::default(),
        );
        let posted = task(0, 0.5, 0.5, 0.0, 5.0);
        engine.submit(EngineEvent::TaskArrived(posted));
        engine.submit(EngineEvent::WorkerCheckIn(worker(0, 0.4, 0.4, 0.5)));
        let report = engine.tick(0.0);
        assert_eq!(report.new_assignments.len(), 1);

        engine.submit(EngineEvent::TaskArrived(posted)); // identical retry
        let retry = engine.tick(0.1);
        assert!(engine.is_committed(WorkerId(0)), "retry must keep the commitment");
        assert!(
            retry.new_assignments.is_empty(),
            "no double-commit on an idempotent re-post"
        );
    }

    #[test]
    fn changed_task_repost_releases_the_en_route_worker() {
        // The task moved: the worker's committed contribution (angle,
        // arrival) was computed against the old location, so the engine
        // releases it and re-solves against the new definition.
        let mut engine = AssignmentEngine::new(
            GridIndex::new(Rect::unit(), 0.2),
            EngineConfig::default(),
        );
        engine.submit(EngineEvent::TaskArrived(task(0, 0.5, 0.5, 0.0, 5.0)));
        engine.submit(EngineEvent::WorkerCheckIn(worker(0, 0.4, 0.4, 0.5)));
        let first = engine.tick(0.0);
        assert_eq!(first.new_assignments.len(), 1);
        let old_contribution = first.new_assignments[0].contribution;

        engine.submit(EngineEvent::TaskArrived(task(0, 0.7, 0.7, 0.0, 5.0)));
        let second = engine.tick(0.1);
        assert_eq!(
            second.new_assignments.len(),
            1,
            "released worker re-solves against the new definition"
        );
        let new_pair = second.new_assignments[0];
        assert_eq!(new_pair.worker, WorkerId(0));
        assert_ne!(
            new_pair.contribution.arrival, old_contribution.arrival,
            "the commitment must be recomputed, not carried over"
        );
        assert!(engine.is_committed(WorkerId(0)));
        assert_eq!(engine.num_committed(), 1, "exactly one commitment stands");
    }

    #[test]
    fn adaptive_solver_picks_greedy_for_small_shards() {
        let solver = AdaptiveBatchSolver::default();
        let instance = ProblemInstance::new(
            vec![task(0, 0.5, 0.5, 0.0, 10.0)],
            vec![worker(0, 0.4, 0.4, 0.5)],
            0.5,
        );
        let candidates = compute_valid_pairs(&instance);
        let request = SolveRequest::new(&instance, &candidates);
        assert_eq!(solver.strategy_name(&request), "GREEDY");
    }

    #[test]
    fn adaptive_solver_prefers_sampling_under_tight_deadlines() {
        let solver = AdaptiveBatchSolver {
            greedy_max_pairs: 0, // force the large-shard path
            ..AdaptiveBatchSolver::default()
        };
        let tight = ProblemInstance::new(
            vec![task(0, 0.5, 0.5, 0.0, 0.2)],
            vec![worker(0, 0.45, 0.45, 0.5)],
            0.5,
        );
        let candidates = compute_valid_pairs(&tight);
        let request = SolveRequest::new(&tight, &candidates);
        assert_eq!(solver.strategy_name(&request), "SAMPLING");
    }

    #[test]
    fn adaptive_solver_uses_dnc_for_large_clustered_shards() {
        let solver = AdaptiveBatchSolver {
            greedy_max_pairs: 0,
            dnc_min_tasks: 32,
            ..AdaptiveBatchSolver::default()
        };
        // Two tight clusters of tasks -> low fractal dimension.
        let mut tasks = Vec::new();
        for i in 0..64u32 {
            let (cx, cy) = if i % 2 == 0 { (0.2, 0.2) } else { (0.8, 0.8) };
            tasks.push(task(
                i,
                cx + 0.01 * ((i / 2) % 4) as f64,
                cy + 0.01 * ((i / 8) % 4) as f64,
                0.0,
                10.0,
            ));
        }
        let workers = (0..8).map(|j| worker(j, 0.5, 0.5, 2.0)).collect();
        let clustered = ProblemInstance::new(tasks, workers, 0.5);
        let candidates = compute_valid_pairs(&clustered);
        let request = SolveRequest::new(&clustered, &candidates);
        assert_eq!(solver.strategy_name(&request), "D&C");
    }
}
