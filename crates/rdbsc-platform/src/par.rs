//! Minimal scoped-thread parallel map.
//!
//! The build environment cannot add crates.io dependencies, so instead of
//! `rayon` the engine uses a small work-stealing-free pool built on
//! `std::thread::scope`: items are pulled from a shared queue, results are
//! re-ordered by item index, so the output is deterministic regardless of
//! thread scheduling.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The number of worker threads to use by default: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, using up to `threads` OS threads, and returns
/// the results in item order. With `threads <= 1` (or one item) the map runs
/// inline, paying no thread overhead.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop_front();
                let Some((i, item)) = next else {
                    break;
                };
                let out = f(i, item);
                results.lock().expect("results lock").push((i, out));
            });
        }
    });
    let mut results = results.into_inner().expect("results lock");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(items.clone(), 4, |_, x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn inline_path_matches_threaded_path() {
        let items: Vec<u64> = (0..37).collect();
        let inline = parallel_map(items.clone(), 1, |i, x| (i as u64) * 1000 + x);
        let threaded = parallel_map(items, 8, |i, x| (i as u64) * 1000 + x);
        assert_eq!(inline, threaded);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(empty, 4, |_, x: u8| x).is_empty());
        assert_eq!(parallel_map(vec![7u8], 4, |_, x| x + 1), vec![8]);
    }
}
