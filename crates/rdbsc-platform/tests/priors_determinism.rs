//! Regression test for the shard-prep priors fold order.
//!
//! Two workers en route to the *same* task used to append their
//! contributions into that task's priors bucket in the order
//! `self.committed.values()` happened to yield — `HashMap` iteration
//! order, which differs between processes and between two maps built by
//! inserting the same entries in different orders. The bucket feeds
//! order-sensitive float folds in the solver's scoring, so the last-ulp
//! divergence could escape into assignment decisions and break the
//! byte-identity contract between a live engine and one rebuilt by
//! `restore_state` (exactly the replica pair WAL recovery produces).
//!
//! The fix iterates sorted snapshots of `committed` and `banked` during
//! shard prep. This test rebuilds the same logical state with the
//! `committed` and `banked` vectors in several permutations — each
//! permutation populates the engine's hash maps in a different insertion
//! order — and requires the subsequent tick and dumped state to be
//! **exactly equal** (every float compared by value, so any reordering of
//! a fold shows up).

use rdbsc_geo::{AngleRange, Point, Rect};
use rdbsc_index::GridIndex;
use rdbsc_model::{Confidence, Contribution, Task, TaskId, TimeWindow, Worker, WorkerId};
use rdbsc_platform::engine::EngineState;
use rdbsc_platform::{AssignmentEngine, EngineConfig};

fn task(id: u32, x: f64, y: f64, end: f64) -> Task {
    Task::new(
        TaskId(id),
        Point::new(x, y),
        TimeWindow::new(0.0, end).unwrap(),
    )
}

fn worker(id: u32, x: f64, y: f64) -> Worker {
    Worker::new(
        WorkerId(id),
        Point::new(x, y),
        0.2,
        AngleRange::full(),
        Confidence::new(0.62 + 0.03 * (id % 7) as f64).unwrap(),
    )
    .unwrap()
}

fn contribution(seed: u32) -> Contribution {
    // Varied magnitudes so float folds over these are order-sensitive:
    // summing them in a different order genuinely changes the last ulp.
    let seed = seed as u64;
    Contribution::new(
        Confidence::new(0.5 + 0.37 * ((seed * 2_654_435_761) % 1000) as f64 / 1000.0).unwrap(),
        0.001 + 6.0 * ((seed * 40_503) % 997) as f64 / 997.0,
        0.05 + 1.7 * ((seed * 9_973) % 991) as f64 / 991.0,
    )
}

/// The shared logical state: five tasks, five free workers near them, and
/// six committed workers — four of them en route to the *same* task so its
/// priors bucket holds a multi-element float fold.
fn base_state() -> EngineState {
    let tasks: Vec<Task> = (0..5)
        .map(|i| task(i, 0.1 + 0.2 * i as f64, 0.5, 4.0))
        .collect();
    let mut workers: Vec<Worker> = (0..5)
        .map(|i| worker(i, 0.1 + 0.2 * i as f64, 0.45))
        .collect();
    // The committed (en-route) workers are live too.
    for i in 10..16 {
        workers.push(worker(i, 0.05 * (i - 10) as f64, 0.9));
    }
    let committed: Vec<(WorkerId, TaskId, Contribution)> = vec![
        (WorkerId(10), TaskId(2), contribution(1)),
        (WorkerId(11), TaskId(2), contribution(2)),
        (WorkerId(12), TaskId(2), contribution(3)),
        (WorkerId(13), TaskId(2), contribution(4)),
        (WorkerId(14), TaskId(0), contribution(5)),
        (WorkerId(15), TaskId(4), contribution(6)),
    ];
    let banked: Vec<(TaskId, Vec<Contribution>)> = vec![
        (TaskId(1), vec![contribution(7), contribution(8)]),
        (TaskId(2), vec![contribution(9)]),
        (TaskId(3), vec![contribution(10), contribution(11), contribution(12)]),
    ];
    EngineState {
        depart_at: 0.0,
        allow_wait: true,
        tasks,
        workers,
        pending: Vec::new(),
        committed,
        banked,
        retired: Vec::new(),
        tick_count: 3,
    }
}

/// Restores an engine from `state` with its `committed`/`banked` vectors
/// permuted by `rotation` — same logical state, different hash-map
/// insertion order.
fn restore_permuted(rotation: usize) -> AssignmentEngine {
    let mut state = base_state();
    let committed_rot = rotation % state.committed.len();
    state.committed.rotate_left(committed_rot);
    let banked_rot = rotation % state.banked.len();
    state.banked.rotate_left(banked_rot);
    if rotation % 2 == 1 {
        state.committed.reverse();
        state.banked.reverse();
    }
    AssignmentEngine::restore_state(
        GridIndex::new(Rect::unit(), 0.1),
        EngineConfig {
            parallelism: 1,
            ..EngineConfig::default()
        },
        state,
    )
}

#[test]
fn priors_fold_is_insertion_order_independent() {
    let mut reference = restore_permuted(0);
    let reference_report = reference.tick(0.5);
    let reference_objective = reference.current_objective();
    let reference_dump = reference.dump_state();
    assert!(
        !reference_report.new_assignments.is_empty(),
        "the scenario must exercise the solver for the test to mean anything"
    );

    for rotation in 1..6 {
        let mut engine = restore_permuted(rotation);
        let report = engine.tick(0.5);
        assert_eq!(
            report.new_assignments, reference_report.new_assignments,
            "tick output diverged at rotation {rotation}"
        );
        assert_eq!(
            engine.current_objective(),
            reference_objective,
            "objective diverged at rotation {rotation}"
        );
        assert_eq!(
            engine.dump_state(),
            reference_dump,
            "dumped state diverged at rotation {rotation}"
        );
    }
}

/// The dump/restore round trip itself must be insensitive to the insertion
/// order of the maps it serializes: dumping any permutation yields the one
/// canonical (sorted) state.
#[test]
fn dump_state_is_canonical_across_insertion_orders() {
    let reference = restore_permuted(0).dump_state();
    for rotation in 1..6 {
        assert_eq!(restore_permuted(rotation).dump_state(), reference);
    }
}
