//! A crate root carrying the attribute — M001 stays silent.

#![deny(missing_docs)]

/// Documented.
pub fn item() {}
