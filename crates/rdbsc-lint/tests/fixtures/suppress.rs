//! Suppression fixture: reasoned allows cover their own line and the next;
//! bare allows and unknown rules are S001 findings; doc comments never
//! suppress.
use std::collections::HashMap;

pub fn covered_above(m: &HashMap<u32, u32>) -> usize {
    // lint:allow(D001): fixture — the count is order-independent
    m.keys().count()
}

pub fn covered_trailing(m: &HashMap<u32, u32>) -> usize {
    m.values().count() // lint:allow(D001): fixture — the count is order-independent
}

pub fn bare_allow(m: &HashMap<u32, u32>) -> usize {
    // lint:allow(D001) //~ S001
    m.iter().count() //~ D001
}

pub fn unknown_rule(m: &HashMap<u32, u32>) -> usize {
    // lint:allow(Z999): no such rule //~ S001
    m.keys().count() //~ D001
}

/// Doc comments document the syntax without suppressing: lint:allow(D001): x
pub fn doc_comment_is_not_a_suppression(m: &HashMap<u32, u32>) -> usize {
    m.keys().count() //~ D001
}
