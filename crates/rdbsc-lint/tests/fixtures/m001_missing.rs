//! A crate root without `#![deny(missing_docs)]` — M001 fires on line 1.

pub fn item() {}
