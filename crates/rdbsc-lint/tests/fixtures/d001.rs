//! D001 fixture: hash iteration in shipped code fires; slices, sorted
//! copies and `#[cfg(test)]` code do not. Tilde markers flag the expected
//! finding lines.
use std::collections::{HashMap, HashSet};

pub struct State {
    committed: HashMap<u32, u32>,
}

impl State {
    pub fn bad_field(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for v in self.committed.values() { //~ D001
            out.push(*v);
        }
        out
    }
}

pub fn bad_local(map: HashMap<u32, u32>) -> Vec<u32> {
    map.keys().copied().collect() //~ D001
}

pub fn bad_for(set: &HashSet<u32>) {
    for _x in set { //~ D001
    }
}

pub fn fine(items: &[u32]) -> u32 {
    let mut total = 0;
    for x in items.iter() {
        total += x;
    }
    total
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_iteration_is_fine_in_tests() {
        let m: HashMap<u32, u32> = HashMap::new();
        for _ in m.iter() {}
    }
}
