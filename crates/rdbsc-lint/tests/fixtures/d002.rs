//! D002 fixture: wall-clock and thread-identity reads fire outside tests.
use std::time::{Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now() //~ D002
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now() //~ D002
}

pub fn bad_thread_id() -> std::thread::ThreadId {
    std::thread::current().id() //~ D002
}

pub fn fine(tick_now: f64) -> f64 {
    tick_now + 1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn stopwatches_are_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
