//! W001 fixture: a deliberately broken frame-tag table.
//!
//! `DUPE` duplicates `QUERY`'s value and has no routing arm in the paired
//! partitiond fixture; `NO_REPLY` lacks a reply mapping; `BAD_RANGE` sits
//! outside 0x01..=0x7E. The replication block is broken twice: `INTERLOPER`
//! sits inside the `REPL_*` range, and `REPL_STATUS` leaves a hole at 0x0E.

pub mod tag {
    pub const SUBMIT: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const DUPE: u8 = 0x02; //~ W001 W001
    pub const NO_REPLY: u8 = 0x03; //~ W001
    pub const BAD_RANGE: u8 = 0x7F; //~ W001
    pub const REPL_BOOTSTRAP: u8 = 0x0B;
    pub const INTERLOPER: u8 = 0x0C; //~ W001
    pub const REPL_FETCH: u8 = 0x0D;
    pub const REPL_STATUS: u8 = 0x0F; //~ W001
    pub const REPLY: u8 = 0x80;
    pub const ERROR: u8 = 0xFF;
}

pub fn decode(t: u8) {
    match t {
        tag::SUBMIT => {}
        tag::QUERY => {}
        tag::DUPE => {}
        tag::NO_REPLY => {}
        tag::BAD_RANGE => {}
        tag::REPL_BOOTSTRAP => {}
        tag::INTERLOPER => {}
        tag::REPL_FETCH => {}
        tag::REPL_STATUS => {}
        _ => {}
    }
}

pub fn reply_tags() -> [u8; 8] {
    [
        tag::SUBMIT | tag::REPLY,
        tag::QUERY | tag::REPLY,
        tag::DUPE | tag::REPLY,
        tag::BAD_RANGE | tag::REPLY,
        tag::REPL_BOOTSTRAP | tag::REPLY,
        tag::INTERLOPER | tag::REPLY,
        tag::REPL_FETCH | tag::REPLY,
        tag::REPL_STATUS | tag::REPLY,
    ]
}
