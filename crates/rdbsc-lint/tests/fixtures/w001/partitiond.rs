//! W001 fixture: routing arms for every request tag except `DUPE`.

pub enum RequestFrame {
    Submit,
    Query,
    NoReply,
    BadRange,
    ReplBootstrap,
    Interloper,
    ReplFetch,
    ReplStatus,
}

pub fn route(f: &RequestFrame) -> u8 {
    match f {
        RequestFrame::Submit => 1,
        RequestFrame::Query => 2,
        RequestFrame::NoReply => 3,
        RequestFrame::BadRange => 4,
        RequestFrame::ReplBootstrap => 5,
        RequestFrame::Interloper => 6,
        RequestFrame::ReplFetch => 7,
        RequestFrame::ReplStatus => 8,
    }
}
