//! D003 fixture: float folds over hash containers fire (alongside the
//! D001 on the same iteration); integer sums and sorted copies do not.
use std::collections::{HashMap, HashSet};

pub fn bad_sum(weights: &HashSet<u64>) -> f64 {
    weights.iter().map(|w| *w as f64).sum::<f64>() //~ D001 D003
}

pub fn bad_fold(m: &HashMap<u32, f64>) -> f64 {
    m.values().fold(0.0, |acc, v| acc + v) //~ D001 D003
}

pub fn bad_loop_accumulation(m: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for v in m { //~ D001
        total += v.1; //~ D003
    }
    total
}

pub fn integer_sum_is_order_independent(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum::<u32>() //~ D001
}

pub fn sorted_copy_is_fine(m: &HashMap<u32, f64>) -> f64 {
    // lint:allow(D001): collected here, sorted on the next line
    let mut vals: Vec<f64> = m.values().copied().collect();
    vals.sort_by(f64::total_cmp);
    vals.iter().sum()
}
