//! Golden tests: every rule driven over a fixture under `tests/fixtures/`
//! (a directory the workspace walker skips), with the expected findings
//! embedded in the fixture itself as `//~ RULE` markers on the lines the
//! findings must anchor to. A marker line may list several rules (or the
//! same rule twice) when several findings anchor there.
//!
//! Fixtures go through [`engine::run_on`] with a workspace-relative path
//! chosen to put them in the right rule scope, so the golden comparison
//! also exercises path scoping and the suppression filter — exactly the
//! pipeline the CI gate runs.

use rdbsc_lint::engine;
use rdbsc_lint::{Finding, SourceFile};
use std::path::Path;

fn fixture(name: &str, rel: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let bytes = std::fs::read(&path).unwrap();
    SourceFile::new(path, rel.to_string(), &bytes)
}

/// `(line, rule)` pairs declared by the fixture's `//~` markers.
fn expected(f: &SourceFile) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in f.text.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split_whitespace() {
                out.push((i as u32 + 1, rule.to_string()));
            }
        }
    }
    out.sort();
    out
}

fn reported(findings: &[Finding]) -> Vec<(u32, String)> {
    let mut out: Vec<(u32, String)> = findings
        .iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    out.sort();
    out
}

fn rendered(findings: &[Finding]) -> Vec<String> {
    findings.iter().map(Finding::render).collect()
}

#[test]
fn d001_golden() {
    let f = fixture("d001.rs", "crates/rdbsc-model/src/d001_fixture.rs");
    let exp = expected(&f);
    assert!(!exp.is_empty(), "fixture lost its markers");
    let findings = engine::run_on(&[f]);
    assert_eq!(reported(&findings), exp, "{:#?}", rendered(&findings));
}

#[test]
fn d002_golden() {
    let f = fixture("d002.rs", "crates/rdbsc-platform/src/wal/d002_fixture.rs");
    let exp = expected(&f);
    assert!(!exp.is_empty(), "fixture lost its markers");
    let findings = engine::run_on(&[f]);
    assert_eq!(reported(&findings), exp, "{:#?}", rendered(&findings));
}

#[test]
fn d003_golden() {
    let f = fixture("d003.rs", "crates/rdbsc-model/src/d003_fixture.rs");
    let exp = expected(&f);
    assert!(!exp.is_empty(), "fixture lost its markers");
    let findings = engine::run_on(&[f]);
    assert_eq!(reported(&findings), exp, "{:#?}", rendered(&findings));
}

#[test]
fn m001_golden() {
    let missing = fixture("m001_missing.rs", "crates/rdbsc-fixture/src/lib.rs");
    let findings = engine::run_on(&[missing]);
    assert_eq!(reported(&findings), vec![(1, "M001".to_string())]);

    let ok = fixture("m001_ok.rs", "crates/rdbsc-fixture/src/lib.rs");
    let findings = engine::run_on(&[ok]);
    assert!(findings.is_empty(), "{:#?}", rendered(&findings));

    // Scoping: the same file outside a crate root is not checked.
    let not_root = fixture("m001_missing.rs", "crates/rdbsc-fixture/src/other.rs");
    assert!(engine::run_on(&[not_root]).is_empty());
}

#[test]
fn w001_golden() {
    let frame = fixture("w001/frame.rs", "crates/rdbsc-server/src/frame.rs");
    let partitiond = fixture(
        "w001/partitiond.rs",
        "crates/rdbsc-server/src/partitiond.rs",
    );
    let exp = expected(&frame);
    assert!(!exp.is_empty(), "fixture lost its markers");
    let findings = engine::run_on(&[frame, partitiond]);
    assert_eq!(reported(&findings), exp, "{:#?}", rendered(&findings));
    // The six defect classes, by message.
    let all = rendered(&findings).join("\n");
    assert!(all.contains("duplicates `QUERY`"), "{all}");
    assert!(all.contains("no reply mapping"), "{all}");
    assert!(all.contains("routing arm"), "{all}");
    assert!(all.contains("0x01..=0x7E"), "{all}");
    assert!(all.contains("inside the replication block"), "{all}");
    assert!(all.contains("has a hole at 0x0E"), "{all}");
}

#[test]
fn suppress_golden() {
    let f = fixture("suppress.rs", "crates/rdbsc-model/src/suppress_fixture.rs");
    let exp = expected(&f);
    assert!(!exp.is_empty(), "fixture lost its markers");
    let findings = engine::run_on(&[f]);
    assert_eq!(reported(&findings), exp, "{:#?}", rendered(&findings));
}

/// The hard gate, as a test: the workspace itself must be finding-free.
/// (CI also runs the binary, which exits 1 on findings — this keeps a plain
/// `cargo test` honest about the same invariant.)
#[test]
fn workspace_is_clean() {
    let root = engine::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let findings = engine::run(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean:\n{}",
        rendered(&findings).join("\n")
    );
}
