//! Property tests for the lint analyzer.
//!
//! The analyzer runs unconditionally over every source file in CI, so its
//! own robustness contract is total: the lexer must classify *any* byte
//! sequence without panicking, rules must never fire on hazards that only
//! appear inside string literals or comments, and the suppression syntax
//! must round-trip through the parser exactly.

use proptest::prelude::*;
use rdbsc_lint::engine;
use rdbsc_lint::lexer::lex;
use rdbsc_lint::{SourceFile, ALL_RULES};
use std::path::PathBuf;

fn file(rel: &str, text: String) -> SourceFile {
    SourceFile::from_text(PathBuf::from(rel), rel.to_string(), text)
}

/// Snippets that fire D001/D002/D003/F001 in code position (given the
/// `committed` binding the template provides). Quarantined into string
/// literals and comments, no rule may fire on them.
const HAZARDS: &[&str] = &[
    "for x in committed.iter() { total += x; }",
    "committed.values().sum::<f64>()",
    "committed.keys().fold(0.0, |a, b| a + b)",
    "Instant::now()",
    "SystemTime::now()",
    "std::thread::current().id()",
    "0xcbf29ce484222325",
    "0x100000001b3",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total: arbitrary byte soup produces a token stream with
    /// ordered, in-bounds, char-boundary-respecting spans — never a panic.
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..=256),
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&text);
        let mut prev_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start <= t.end, "inverted span {}..{}", t.start, t.end);
            prop_assert!(t.end <= text.len(), "span past the end");
            prop_assert!(prev_end <= t.start, "overlapping tokens");
            prop_assert!(
                text.get(t.start..t.end).is_some(),
                "span {}..{} splits a char",
                t.start,
                t.end
            );
            prev_end = t.end;
        }
    }

    /// The whole pipeline — lexing, binding analysis, every rule, the
    /// suppression filter — survives arbitrary bytes under every path
    /// scope, including the frame-tag audit's cross-file path.
    #[test]
    fn full_pipeline_is_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..=200),
        which in 0usize..3,
    ) {
        let rel = [
            "crates/rdbsc-model/src/x.rs",
            "crates/rdbsc-platform/src/wal/x.rs",
            "crates/rdbsc-server/src/frame.rs",
        ][which];
        let f = SourceFile::new(PathBuf::from(rel), rel.to_string(), &bytes);
        let _ = engine::run_on(&[f]);
    }

    /// Hazards confined to a string literal, a line comment and a block
    /// comment never produce findings, under the strictest path scope.
    #[test]
    fn rules_never_fire_inside_strings_or_comments(
        which in 0usize..HAZARDS.len(),
        pad in 0usize..=4,
    ) {
        let hazard = HAZARDS[which];
        let mut text = String::new();
        for i in 0..pad {
            text.push_str(&format!("// filler {i}\n"));
        }
        text.push_str(
            "pub fn f(committed: &std::collections::HashMap<u32, u32>) -> usize {\n",
        );
        text.push_str(&format!("    let s = \"{hazard}\";\n"));
        text.push_str(&format!("    // {hazard}\n"));
        text.push_str(&format!("    /* {hazard} */\n"));
        text.push_str("    s.len() + committed.len()\n}\n");
        let f = file("crates/rdbsc-platform/src/wal/x.rs", text);
        let findings = engine::run_on(&[f]);
        prop_assert!(findings.is_empty(), "hazard escaped quarantine: {findings:?}");
    }

    /// `// lint:allow(RULE): reason` round-trips through the parser: rule,
    /// reason and line come back exactly, the coverage window is the
    /// comment's own line plus the next, and a reasoned allow of a known
    /// rule raises no S001.
    #[test]
    fn suppression_round_trips(
        which in 0usize..ALL_RULES.len(),
        reason_bytes in proptest::collection::vec(b'a'..=b'z', 1..=24),
        pad in 0usize..=4,
    ) {
        let rule = ALL_RULES[which].id;
        let reason = String::from_utf8(reason_bytes).unwrap();
        let mut text = String::new();
        for i in 0..pad {
            text.push_str(&format!("// filler {i}\n"));
        }
        text.push_str(&format!("// lint:allow({rule}): {reason}\n"));
        text.push_str("pub fn f() {}\n");
        let f = file("crates/rdbsc-model/src/x.rs", text);
        let parsed = f.suppressions();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].rule.as_str(), rule);
        prop_assert_eq!(parsed[0].reason.as_deref(), Some(reason.as_str()));
        let line = (pad + 1) as u32;
        prop_assert_eq!(parsed[0].line, line);
        prop_assert!(parsed[0].covers(rule, line));
        prop_assert!(parsed[0].covers(rule, line + 1));
        prop_assert!(!parsed[0].covers(rule, line + 2));
        prop_assert!(engine::suppression_findings(&f).is_empty());
    }

    /// A reasoned allow swallows the finding it covers; stripping the
    /// reason makes the allow itself a finding *and* lets the original
    /// finding through — whatever the reason text was.
    #[test]
    fn reasoned_allow_suppresses_and_bare_allow_reports(
        reason_bytes in proptest::collection::vec(b'a'..=b'z', 1..=24),
        bare in 0usize..2,
    ) {
        let reason = String::from_utf8(reason_bytes).unwrap();
        let marker = if bare == 1 {
            "    // lint:allow(D001)\n".to_string()
        } else {
            format!("    // lint:allow(D001): {reason}\n")
        };
        let text = format!(
            "pub fn f(committed: &std::collections::HashMap<u32, u32>) -> usize {{\n\
             {marker}    committed.keys().count()\n}}\n"
        );
        let f = file("crates/rdbsc-model/src/x.rs", text);
        let findings = engine::run_on(&[f]);
        if bare == 1 {
            let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
            rules.sort_unstable();
            prop_assert_eq!(rules, vec!["D001", "S001"]);
        } else {
            prop_assert!(findings.is_empty(), "{findings:?}");
        }
    }
}
