//! The driver: walks the workspace, applies each rule under its path scope,
//! filters findings through inline suppressions, and reports what is left.

use crate::rules::{self, Finding};
use crate::source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures"];

/// Crates whose sources sit on the deterministic path: everything the
/// digest-identity contract covers. D001/D003 apply to every file here.
fn determinism_scope(rel: &str) -> bool {
    rel.starts_with("crates/rdbsc-model/src/")
        || rel.starts_with("crates/rdbsc-algos/src/")
        || rel.starts_with("crates/rdbsc-index/src/")
        || rel == "crates/rdbsc-platform/src/engine.rs"
        || rel == "crates/rdbsc-platform/src/partition.rs"
        || rel.starts_with("crates/rdbsc-platform/src/wal/")
}

/// Engine/solver/WAL code where wall-clock reads are banned (D002): time
/// must enter through the tick timestamp.
fn wall_clock_scope(rel: &str) -> bool {
    rel.starts_with("crates/rdbsc-algos/src/")
        || rel == "crates/rdbsc-platform/src/engine.rs"
        || rel.starts_with("crates/rdbsc-platform/src/wal/")
}

/// The frame-tag table and the daemon routing file (W001).
const FRAME_RS: &str = "crates/rdbsc-server/src/frame.rs";
const PARTITIOND_RS: &str = "crates/rdbsc-server/src/partitiond.rs";

/// Runs the full rule set over the workspace rooted at `root`.
///
/// Returns the surviving findings, sorted by (file, line, rule). An empty
/// vector is the green state the CI gate requires.
pub fn run(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = collect_sources(root)?;
    Ok(run_on(&files))
}

/// Runs the rule set on an already-collected file set (used by tests).
pub fn run_on(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        findings.extend(check_file(f));
    }
    // W001 needs two specific files together.
    let frame = files.iter().find(|f| f.rel == FRAME_RS);
    let partitiond = files.iter().find(|f| f.rel == PARTITIOND_RS);
    if let Some(frame) = frame {
        let raw = rules::w001::check(frame, partitiond);
        findings.extend(filter_suppressed(frame, raw));
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Per-file rules under their path scopes, suppressions applied.
fn check_file(f: &SourceFile) -> Vec<Finding> {
    let mut raw = Vec::new();
    if determinism_scope(&f.rel) {
        raw.extend(rules::d001::check(f));
        raw.extend(rules::d003::check(f));
    }
    if wall_clock_scope(&f.rel) {
        raw.extend(rules::d002::check(f));
    }
    raw.extend(rules::f001::check(f));
    if rules::m001::is_crate_root(&f.rel) {
        raw.extend(rules::m001::check(f));
    }
    let mut out = filter_suppressed(f, raw);
    out.extend(suppression_findings(f));
    out
}

/// Drops findings covered by a reasoned suppression on the same or the
/// preceding line.
pub fn filter_suppressed(f: &SourceFile, findings: Vec<Finding>) -> Vec<Finding> {
    let suppressions = f.suppressions();
    findings
        .into_iter()
        .filter(|finding| {
            !suppressions
                .iter()
                .any(|s| s.covers(finding.rule, finding.line))
        })
        .collect()
}

/// Suppression hygiene (S001): every `lint:allow` must carry a reason and
/// name a rule that exists.
pub fn suppression_findings(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for s in f.suppressions() {
        if !rules::is_known_rule(&s.rule) {
            out.push(Finding {
                file: f.rel.clone(),
                line: s.line,
                rule: rules::S001,
                message: format!(
                    "`lint:allow({})` names an unknown rule — see --list-rules",
                    s.rule
                ),
            });
        } else if s.reason.is_none() {
            out.push(Finding {
                file: f.rel.clone(),
                line: s.line,
                rule: rules::S001,
                message: format!(
                    "`lint:allow({})` without a reason — a suppression must \
                     say *why* the site is safe (`lint:allow({}): <reason>`)",
                    s.rule, s.rule
                ),
            });
        }
    }
    out
}

/// Collects every `.rs` file under `root`, excluding vendored code, build
/// output and lint fixtures. Deterministic order (sorted paths).
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let bytes = fs::read(&path)?;
        files.push(SourceFile::new(path, rel, &bytes));
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
