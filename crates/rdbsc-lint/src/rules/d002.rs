//! D002 — wall-clock or thread-identity reads in engine/solver/WAL code.
//!
//! The engine's contract is that *time enters through the tick*: every
//! decision is a function of the submitted events and the tick timestamp,
//! never of when the code happens to run. `Instant::now` for observational
//! stopwatches is tolerated only behind an explicit suppression with a
//! reason, so each site is audited once and the audit lives in the source.

use crate::analysis;
use crate::rules::Finding;
use crate::source::SourceFile;

/// Runs D002 on one file.
pub fn check(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let test_spans = analysis::test_spans(f);
    let n = f.code.len();
    for i in 0..n {
        let text = f.code_text(i);
        let (line, byte) = match f.code_token(i) {
            Some(t) => (t.line, t.start),
            None => continue,
        };
        if analysis::in_spans(&test_spans, byte) {
            continue;
        }
        // `Instant::now(` / `SystemTime::now(`.
        if text == "now"
            && f.code_text(i + 1) == "("
            && i >= 3
            && f.code_text(i - 1) == ":"
            && f.code_text(i - 2) == ":"
        {
            let ty = f.code_text(i - 3);
            if ty == "Instant" || ty == "SystemTime" {
                out.push(Finding {
                    file: f.rel.clone(),
                    line,
                    rule: "D002",
                    message: format!(
                        "`{ty}::now()` in deterministic-path code — wall-clock \
                         values must never reach an engine decision; time \
                         enters through the tick timestamp"
                    ),
                });
            }
        }
        // `thread::current().id()`.
        if text == "current"
            && i >= 3
            && f.code_text(i - 1) == ":"
            && f.code_text(i - 2) == ":"
            && f.code_text(i - 3) == "thread"
            && f.code_text(i + 1) == "("
            && f.code_text(i + 2) == ")"
            && f.code_text(i + 3) == "."
            && f.code_text(i + 4) == "id"
        {
            out.push(Finding {
                file: f.rel.clone(),
                line,
                rule: "D002",
                message: "`thread::current().id()` in deterministic-path code — \
                          thread identity differs run to run and across hosts"
                    .to_string(),
            });
        }
    }
    out
}
