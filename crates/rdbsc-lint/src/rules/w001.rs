//! W001 — partition frame-tag audit.
//!
//! The binary wire protocol's correctness rests on a table of `u8` tag
//! constants in `rdbsc-server::frame` and two conventions around it: a
//! reply's tag is its request's tag with the high bit set (`tag | 0x80`),
//! and `0xFF` is the error reply. Three files have to agree (the tag table,
//! the frame decoder, and the daemon's `route_frame`), and nothing but
//! convention ties them together — exactly the kind of cross-file invariant
//! a reviewer misses. This rule parses the table and mechanically checks:
//!
//! * every tag value is unique;
//! * `REPLY == 0x80`, `ERROR == 0xFF`;
//! * request tags sit in `0x01..=0x7E` so `tag | 0x80` neither collides
//!   with a request tag nor with the error tag;
//! * every request tag has a decoder arm (`tag::NAME =>`) and a reply
//!   mapping (`tag::NAME | tag::REPLY`) in `frame.rs`;
//! * every request tag has a `RequestFrame::<Variant>` routing arm in
//!   `partitiond.rs`;
//! * the replication commands (`REPL_*`) occupy one contiguous tag range
//!   with no unrelated command interleaved — the module doc advertises
//!   them as a block, and the daemon's standby/draining refusal sets are
//!   reasoned about against that block.

use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::source::SourceFile;

/// One parsed tag constant.
#[derive(Debug)]
struct TagConst {
    name: String,
    value: u32,
    line: u32,
}

/// Runs W001 against the frame-tag table and (optionally) the daemon
/// routing file.
pub fn check(frame: &SourceFile, partitiond: Option<&SourceFile>) -> Vec<Finding> {
    let mut out = Vec::new();
    let tags = parse_tag_consts(frame);
    if tags.is_empty() {
        out.push(Finding {
            file: frame.rel.clone(),
            line: 1,
            rule: "W001",
            message: "no `mod tag { const … }` table found — the frame-tag \
                      audit has nothing to check"
                .to_string(),
        });
        return out;
    }
    let finding = |line: u32, message: String| Finding {
        file: frame.rel.clone(),
        line,
        rule: "W001",
        message,
    };

    // Uniqueness.
    for (i, a) in tags.iter().enumerate() {
        for b in &tags[..i] {
            if a.value == b.value {
                out.push(finding(
                    a.line,
                    format!(
                        "tag `{}` (0x{:02X}) duplicates `{}` — every frame tag \
                         must be unique",
                        a.name, a.value, b.name
                    ),
                ));
            }
        }
    }

    // The two structural tags.
    match tags.iter().find(|t| t.name == "REPLY") {
        Some(t) if t.value == 0x80 => {}
        Some(t) => out.push(finding(
            t.line,
            format!(
                "REPLY must be 0x80 (the high bit), found 0x{:02X} — the \
                 `tag | 0x80` reply mapping depends on it",
                t.value
            ),
        )),
        None => out.push(finding(1, "missing `REPLY` tag constant".to_string())),
    }
    match tags.iter().find(|t| t.name == "ERROR") {
        Some(t) if t.value == 0xFF => {}
        Some(t) => out.push(finding(
            t.line,
            format!("ERROR must be 0xFF, found 0x{:02X}", t.value),
        )),
        None => out.push(finding(1, "missing `ERROR` tag constant".to_string())),
    }

    let requests: Vec<&TagConst> = tags
        .iter()
        .filter(|t| t.name != "REPLY" && t.name != "ERROR")
        .collect();
    for t in &requests {
        if t.value == 0 || t.value > 0x7E {
            out.push(finding(
                t.line,
                format!(
                    "request tag `{}` is 0x{:02X} — request tags must sit in \
                     0x01..=0x7E so `tag | 0x80` is a distinct non-error reply",
                    t.name, t.value
                ),
            ));
        }
        if !has_decode_arm(frame, &t.name) {
            out.push(finding(
                t.line,
                format!(
                    "request tag `{}` has no decoder arm (`tag::{} =>`) in the \
                     frame parser",
                    t.name, t.name
                ),
            ));
        }
        if !has_reply_mapping(frame, &t.name) {
            out.push(finding(
                t.line,
                format!(
                    "request tag `{}` has no reply mapping \
                     (`tag::{} | tag::REPLY`)",
                    t.name, t.name
                ),
            ));
        }
        if let Some(p) = partitiond {
            let variant = camel_case(&t.name);
            if !has_route_arm(p, &variant) {
                out.push(finding(
                    t.line,
                    format!(
                        "request tag `{}` has no `RequestFrame::{variant}` \
                         routing arm in {}",
                        t.name, p.rel
                    ),
                ));
            }
        }
    }

    // Replication block: `REPL_*` tags are documented (and routed) as one
    // contiguous range. Audit every value between the lowest and highest
    // replication tag: a non-replication tag inside the range is an
    // interloper, an unoccupied value is a hole someone will later fill
    // with an unrelated command.
    let mut repl: Vec<&TagConst> = requests
        .iter()
        .copied()
        .filter(|t| t.name.starts_with("REPL_"))
        .collect();
    repl.sort_by_key(|t| t.value);
    if let (Some(first), Some(last)) = (repl.first(), repl.last()) {
        for value in first.value..=last.value {
            if repl.iter().any(|t| t.value == value) {
                continue;
            }
            if let Some(other) = requests
                .iter()
                .find(|t| t.value == value && !t.name.starts_with("REPL_"))
            {
                out.push(finding(
                    other.line,
                    format!(
                        "tag `{}` (0x{:02X}) sits inside the replication \
                         block 0x{:02X}..=0x{:02X} — `REPL_*` tags must form \
                         one contiguous range with nothing interleaved",
                        other.name, other.value, first.value, last.value
                    ),
                ));
            } else {
                let next = repl.iter().find(|t| t.value > value).unwrap_or(last);
                out.push(finding(
                    next.line,
                    format!(
                        "replication tag block 0x{:02X}..=0x{:02X} has a hole \
                         at 0x{:02X} — keep `REPL_*` tags contiguous so the \
                         block stays auditable as a range",
                        first.value, last.value, value
                    ),
                ));
            }
        }
    }
    out
}

/// Parses `const NAME: u8 = <number>;` items inside `mod tag { … }`.
fn parse_tag_consts(f: &SourceFile) -> Vec<TagConst> {
    let n = f.code.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    // Find `mod tag {`.
    let mut body_at = None;
    while i + 2 < n {
        if f.code_text(i) == "mod" && f.code_text(i + 1) == "tag" && f.code_text(i + 2) == "{" {
            body_at = Some(i + 3);
            break;
        }
        i += 1;
    }
    let Some(start) = body_at else {
        return out;
    };
    let mut depth = 1i32;
    let mut j = start;
    while j < n && depth > 0 {
        match f.code_text(j) {
            "{" => depth += 1,
            "}" => depth -= 1,
            "const" => {
                // const NAME : u8 = VALUE ;
                let name = f.code_text(j + 1).to_string();
                if f.code_text(j + 2) == ":"
                    && f.code_text(j + 4) == "="
                    && f.code_token(j + 5).map(|t| t.kind) == Some(TokenKind::Num)
                {
                    if let Some(value) = parse_u32(f.code_text(j + 5)) {
                        let line = f.code_token(j + 1).map(|t| t.line).unwrap_or(1);
                        out.push(TagConst { name, value, line });
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    out
}

fn parse_u32(text: &str) -> Option<u32> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let lower = cleaned.to_ascii_lowercase();
    if let Some(hex) = lower.strip_prefix("0x") {
        u32::from_str_radix(hex.trim_end_matches("u8"), 16).ok()
    } else {
        lower.trim_end_matches("u8").parse().ok()
    }
}

/// Looks for `tag :: NAME =>` outside the tag module (a decoder match arm).
fn has_decode_arm(f: &SourceFile, name: &str) -> bool {
    let n = f.code.len();
    for i in 0..n {
        if f.code_text(i) == "tag"
            && f.code_text(i + 1) == ":"
            && f.code_text(i + 2) == ":"
            && f.code_text(i + 3) == name
            && f.code_text(i + 4) == "="
            && f.code_text(i + 5) == ">"
        {
            return true;
        }
    }
    false
}

/// Looks for `tag :: NAME | tag :: REPLY` (the reply-tag construction).
fn has_reply_mapping(f: &SourceFile, name: &str) -> bool {
    let n = f.code.len();
    for i in 0..n {
        if f.code_text(i) == "tag"
            && f.code_text(i + 1) == ":"
            && f.code_text(i + 2) == ":"
            && f.code_text(i + 3) == name
            && f.code_text(i + 4) == "|"
            && f.code_text(i + 5) == "tag"
            && f.code_text(i + 6) == ":"
            && f.code_text(i + 7) == ":"
            && f.code_text(i + 8) == "REPLY"
        {
            return true;
        }
    }
    false
}

/// Looks for `RequestFrame :: Variant` anywhere in the routing file.
fn has_route_arm(f: &SourceFile, variant: &str) -> bool {
    let n = f.code.len();
    for i in 0..n {
        if f.code_text(i) == "RequestFrame"
            && f.code_text(i + 1) == ":"
            && f.code_text(i + 2) == ":"
            && f.code_text(i + 3) == variant
        {
            return true;
        }
    }
    false
}

/// `IS_ACTIVE` → `IsActive`.
fn camel_case(const_name: &str) -> String {
    const_name
        .split('_')
        .map(|part| {
            let mut chars = part.chars();
            match chars.next() {
                Some(first) => {
                    first.to_ascii_uppercase().to_string() + &chars.as_str().to_ascii_lowercase()
                }
                None => String::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::camel_case;

    #[test]
    fn camel_case_variants() {
        assert_eq!(camel_case("SUBMIT"), "Submit");
        assert_eq!(camel_case("IS_ACTIVE"), "IsActive");
        assert_eq!(camel_case("HAS_WORKER"), "HasWorker");
    }
}
