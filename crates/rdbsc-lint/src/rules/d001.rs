//! D001 — `HashMap`/`HashSet` iteration in deterministic-path code.
//!
//! Hash iteration order depends on the per-process `RandomState` seed, so
//! any value that escapes such a loop (a float fold, a serialized sequence,
//! an assignment choice) can differ between byte-identical engines running
//! in different processes — the exact bug class behind the
//! `current_objective` last-ulp divergence fixed in the transport PR.

use crate::analysis::{self, SiteKind};
use crate::rules::Finding;
use crate::source::SourceFile;

/// Runs D001 on one file.
pub fn check(f: &SourceFile) -> Vec<Finding> {
    let bindings = analysis::hash_bindings(f);
    if bindings.is_empty() {
        return Vec::new();
    }
    let test_spans = analysis::test_spans(f);
    analysis::iteration_sites(f, &bindings)
        .into_iter()
        .filter(|s| !analysis::in_spans(&test_spans, s.byte))
        .map(|s| {
            let how = match &s.kind {
                SiteKind::Method { method, .. } => format!(".{method}()"),
                SiteKind::ForLoop { .. } => "a `for` loop".to_string(),
            };
            Finding {
                file: f.rel.clone(),
                line: s.line,
                rule: "D001",
                message: format!(
                    "iteration over hash container `{}` via {how} — hash order \
                     is not deterministic across processes; iterate a sorted \
                     copy or switch to BTreeMap/BTreeSet",
                    s.name
                ),
            }
        })
        .collect()
}
