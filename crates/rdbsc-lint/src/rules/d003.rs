//! D003 — float accumulation over an unordered container.
//!
//! Float addition is not associative: folding the same set of values in two
//! different orders can differ in the last ulp. When the fold ranges over a
//! hash container the order is the process-local hash seed's choice, so two
//! identical engines disagree — the summary-recomputation bug the index PR
//! fixed by folding in ascending order. D003 fires on the three
//! accumulation shapes (`+=` in a hash loop body, `.sum()`, `.fold(0.0…)`)
//! whenever the stream originates from a hash container.

use crate::analysis::{self, SiteKind};
use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::source::SourceFile;

/// Runs D003 on one file.
pub fn check(f: &SourceFile) -> Vec<Finding> {
    let bindings = analysis::hash_bindings(f);
    if bindings.is_empty() {
        return Vec::new();
    }
    let test_spans = analysis::test_spans(f);
    let mut out = Vec::new();
    for site in analysis::iteration_sites(f, &bindings) {
        if analysis::in_spans(&test_spans, site.byte) {
            continue;
        }
        match site.kind {
            SiteKind::Method { after_call, .. } => {
                if let Some((line, what)) = chain_accumulates(f, after_call) {
                    out.push(finding(f, line, &site.name, &what));
                }
            }
            SiteKind::ForLoop { body } => {
                // `total += …` anywhere in the loop body accumulates across
                // iterations whose order is the hash seed's choice.
                let mut i = body.start;
                while i < body.end {
                    if f.code_text(i) == "+"
                        && f.code_text(i + 1) == "="
                        && f.code_token(i)
                            .zip(f.code_token(i + 1))
                            .is_some_and(|(a, b)| a.end == b.start)
                    {
                        let line = f.code_token(i).map(|t| t.line).unwrap_or(site.line);
                        out.push(finding(f, line, &site.name, "`+=` in the loop body"));
                    }
                    i += 1;
                }
            }
        }
    }
    out
}

fn finding(f: &SourceFile, line: u32, name: &str, what: &str) -> Finding {
    Finding {
        file: f.rel.clone(),
        line,
        rule: "D003",
        message: format!(
            "possible float accumulation via {what} over hash container \
             `{name}` — float addition is order-sensitive and hash order is \
             per-process; fold over a sorted sequence"
        ),
    }
}

/// Walks a method chain starting at `at` (just past a call's `)`), looking
/// for `.sum()` (not integer-turbofished) or `.fold(<float literal>, …)`.
fn chain_accumulates(f: &SourceFile, mut at: usize) -> Option<(u32, String)> {
    let n = f.code.len();
    while at < n && f.code_text(at) == "." {
        let m = f.code_text(at + 1);
        let line = f.code_token(at + 1).map(|t| t.line).unwrap_or(1);
        let mut j = at + 2;
        // Optional turbofish `::<…>`; remember the type for `.sum()`.
        let mut turbofish = None;
        if f.code_text(j) == ":" && f.code_text(j + 1) == ":" && f.code_text(j + 2) == "<" {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < n {
                match f.code_text(k) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    t if turbofish.is_none()
                        && f.code_token(k).map(|t| t.kind) == Some(TokenKind::Ident) =>
                    {
                        turbofish = Some(t.to_string());
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        if f.code_text(j) != "(" {
            return None;
        }
        // Find the matching close paren; peek the first argument token.
        let first_arg = f.code_text(j + 1).to_string();
        let first_arg_is_float = f.code_token(j + 1).map(|t| t.kind) == Some(TokenKind::Num)
            && (first_arg.contains('.') || first_arg.ends_with("f32") || first_arg.ends_with("f64"));
        let mut depth = 0i32;
        let mut k = j;
        while k < n {
            match f.code_text(k) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        match m {
            "sum" | "product" => {
                let integer = matches!(
                    turbofish.as_deref(),
                    Some(
                        "u8" | "u16"
                            | "u32"
                            | "u64"
                            | "u128"
                            | "usize"
                            | "i8"
                            | "i16"
                            | "i32"
                            | "i64"
                            | "i128"
                            | "isize"
                    )
                );
                if integer {
                    return None; // integer addition is order-independent
                }
                return Some((line, format!(".{m}()")));
            }
            "fold" => {
                if first_arg_is_float {
                    return Some((line, ".fold(<float>, …)".to_string()));
                }
                return None;
            }
            _ => at = k + 1, // continue down the chain (.map(…).filter(…)…)
        }
    }
    None
}
