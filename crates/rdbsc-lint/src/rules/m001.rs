//! M001 — crate roots must carry `#![deny(missing_docs)]`.
//!
//! Every public item in this workspace is documented; the attribute is what
//! keeps that true as crates grow. The rule checks each crate root
//! (`src/lib.rs` of every member) for an inner `deny` attribute naming
//! `missing_docs`.

use crate::rules::Finding;
use crate::source::SourceFile;

/// Is this file a crate root the rule applies to?
pub fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

/// Runs M001 on one file (the caller scopes it to crate roots).
pub fn check(f: &SourceFile) -> Vec<Finding> {
    // Look for `# ! [ … deny ( … missing_docs … ) … ]` anywhere.
    let n = f.code.len();
    for i in 0..n {
        if f.code_text(i) != "#" || f.code_text(i + 1) != "!" || f.code_text(i + 2) != "[" {
            continue;
        }
        let mut j = i + 3;
        let mut depth = 1i32; // the `[`
        let mut saw_deny = false;
        while j < n && depth > 0 {
            match f.code_text(j) {
                "[" => depth += 1,
                "]" => depth -= 1,
                "deny" => saw_deny = true,
                "missing_docs" if saw_deny => return Vec::new(),
                _ => {}
            }
            j += 1;
        }
    }
    vec![Finding {
        file: f.rel.clone(),
        line: 1,
        rule: "M001",
        message: "crate root lacks `#![deny(missing_docs)]` — every public \
                  item in this workspace is documented, and the attribute is \
                  what keeps that true"
            .to_string(),
    }]
}
