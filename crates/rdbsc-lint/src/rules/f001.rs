//! F001 — re-rolled FNV-1a constants.
//!
//! The FNV-1a offset basis / prime used for every digest identity check in
//! this workspace live in `rdbsc_obs::digest`, together with the streaming
//! folder. History: the fold was copy-pasted into three bench binaries and
//! the WAL codec before being centralized; this rule keeps it centralized.
//! Any number literal equal to either constant outside the canonical module
//! is a finding.

use crate::analysis;
use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::source::SourceFile;

/// FNV-1a 64-bit offset basis.
// lint:allow(F001): the rule's own definition of the constant it hunts
const FNV_OFFSET: u128 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
// lint:allow(F001): the rule's own definition of the constant it hunts
const FNV_PRIME: u128 = 0x0000_0100_0000_01b3;

/// The one module allowed to spell the constants out.
pub fn is_canonical_home(rel: &str) -> bool {
    rel.ends_with("rdbsc-obs/src/digest.rs")
}

/// Runs F001 on one file.
pub fn check(f: &SourceFile) -> Vec<Finding> {
    if is_canonical_home(&f.rel) {
        return Vec::new();
    }
    let test_spans = analysis::test_spans(f);
    let mut out = Vec::new();
    for &i in &f.code {
        let Some(t) = f.tokens.get(i) else { continue };
        if t.kind != TokenKind::Num || analysis::in_spans(&test_spans, t.start) {
            continue;
        }
        let Some(value) = parse_number(f.text_of(t)) else {
            continue;
        };
        if value == FNV_OFFSET || value == FNV_PRIME {
            let which = if value == FNV_OFFSET {
                "offset basis"
            } else {
                "prime"
            };
            out.push(Finding {
                file: f.rel.clone(),
                line: t.line,
                rule: "F001",
                message: format!(
                    "FNV-1a {which} literal — use `rdbsc_obs::digest` \
                     (Fnv1a / fnv1a_bytes) instead of re-rolling the fold"
                ),
            });
        }
    }
    out
}

/// Parses a Rust number literal (underscores, radix prefixes, and type
/// suffixes accepted). `None` for floats or malformed text.
fn parse_number(text: &str) -> Option<u128> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let lower = cleaned.to_ascii_lowercase();
    if lower.contains('.') {
        return None;
    }
    let strip = |s: &str| -> String {
        for suffix in [
            "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        ] {
            if let Some(p) = s.strip_suffix(suffix) {
                return p.to_string();
            }
        }
        s.to_string()
    };
    if let Some(hex) = lower.strip_prefix("0x") {
        u128::from_str_radix(&strip(hex), 16).ok()
    } else if let Some(oct) = lower.strip_prefix("0o") {
        u128::from_str_radix(&strip(oct), 8).ok()
    } else if let Some(bin) = lower.strip_prefix("0b") {
        u128::from_str_radix(&strip(bin), 2).ok()
    } else {
        strip(&lower).parse().ok()
    }
}
