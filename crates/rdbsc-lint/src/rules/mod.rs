//! The rule set: each rule is a pure function from lexed source to
//! [`Finding`]s, so golden tests can drive any rule on a fixture file
//! without touching the workspace walker.
//!
//! | Rule | Guards against |
//! |------|----------------|
//! | D001 | `HashMap`/`HashSet` iteration on deterministic paths |
//! | D002 | wall-clock / thread-id reads in engine, solver, WAL code |
//! | D003 | float accumulation over unordered containers |
//! | F001 | re-rolled FNV-1a constants outside `rdbsc-obs::digest` |
//! | W001 | frame-tag table drift (duplicates, reply mapping, routing) |
//! | M001 | crate roots without `#![deny(missing_docs)]` |
//! | S001 | suppressions without a reason, or naming unknown rules |
//!
//! Every D/F rule skips `#[cfg(test)]` items: the determinism contract is
//! about shipped code, and tests legitimately iterate hash maps where order
//! cannot escape.

pub mod d001;
pub mod d002;
pub mod d003;
pub mod f001;
pub mod m001;
pub mod w001;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D001`, …).
    pub rule: &'static str,
    /// Human explanation, specific to the site.
    pub message: String,
}

impl Finding {
    /// Renders the canonical `file:line: RULE message` form.
    pub fn render(&self) -> String {
        format!("{}:{}: {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// Static description of a rule, for `--list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Rule id for suppression-hygiene findings (emitted by the engine).
pub const S001: &str = "S001";

/// Every rule the analyzer knows, in report order.
pub const ALL_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "HashMap/HashSet iteration in deterministic-path code \
                  (hash order differs across processes; sort or use BTreeMap)",
    },
    RuleInfo {
        id: "D002",
        summary: "Instant::now/SystemTime::now/thread id in engine, solver \
                  or WAL code (time must enter through the tick)",
    },
    RuleInfo {
        id: "D003",
        summary: "float accumulation (+=, .sum(), fold) over an unordered \
                  container (float addition is order-sensitive)",
    },
    RuleInfo {
        id: "F001",
        summary: "re-rolled FNV-1a constants — use rdbsc_obs::digest \
                  instead of copy-pasting the fold",
    },
    RuleInfo {
        id: "W001",
        summary: "partition frame-tag audit: unique tags, tag|0x80 reply \
                  mapping, every request tag decoded and routed",
    },
    RuleInfo {
        id: "M001",
        summary: "crate root missing #![deny(missing_docs)]",
    },
    RuleInfo {
        id: S001,
        summary: "lint:allow(...) without a reason, or naming an unknown rule",
    },
];

/// Is `id` a known rule id?
pub fn is_known_rule(id: &str) -> bool {
    ALL_RULES.iter().any(|r| r.id == id)
}
