//! The `rdbsc-lint` binary — the CI gate.
//!
//! ```text
//! rdbsc-lint [--root PATH] [--json] [--list-rules]
//! ```
//!
//! Exit status 0 when the workspace is clean, 1 when there are findings,
//! 2 on usage or I/O errors.

use rdbsc_lint::{engine, rules};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "rdbsc-lint: workspace determinism & wire-invariant analyzer\n\
                     \n\
                     usage: rdbsc-lint [--root PATH] [--json] [--list-rules]\n\
                     \n\
                     Suppress a finding inline with a mandatory reason:\n\
                     \x20   // lint:allow(D001): <why this site is safe>\n\
                     \n\
                     exit status: 0 clean, 1 findings, 2 usage/io error"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in rules::ALL_RULES {
            println!("{}  {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| engine::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root (no Cargo.toml with [workspace]); pass --root");
            return ExitCode::from(2);
        }
    };

    let findings = match engine::run(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("rdbsc-lint: walking {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", render_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("rdbsc-lint: clean");
        } else {
            eprintln!("rdbsc-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON (the crate is dependency-free by design).
fn render_json(findings: &[rules::Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape(&f.file),
            f.line,
            f.rule,
            escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}\n", findings.len()));
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
