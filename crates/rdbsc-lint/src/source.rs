//! A lexed source file plus the inline-suppression model.
//!
//! Suppression syntax (checked by the engine, parsed here):
//!
//! ```text
//! // lint:allow(D001): keys are sorted two lines down before the fold
//! ```
//!
//! A suppression applies to findings of that rule on its own line (trailing
//! comment) and on the following line (comment-above style). The reason is
//! **mandatory**: a bare `lint:allow(D001)` is itself reported (rule
//! [`S001`](crate::rules::S001)), so every intentional exception in the tree
//! carries its justification next to the code.

use crate::lexer::{lex, Token, TokenKind};
use std::path::PathBuf;

/// One source file: original text, token stream, and the code-only view.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute (or fixture-relative) path on disk.
    pub path: PathBuf,
    /// Workspace-relative path used in findings.
    pub rel: String,
    /// File contents (lossily decoded if not valid UTF-8).
    pub text: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into [`tokens`](Self::tokens) of non-comment tokens — the
    /// view rules walk so they can never fire inside a comment.
    pub code: Vec<usize>,
}

impl SourceFile {
    /// Lexes `bytes` (decoded lossily) into a [`SourceFile`].
    pub fn new(path: PathBuf, rel: String, bytes: &[u8]) -> Self {
        let text = String::from_utf8_lossy(bytes).into_owned();
        Self::from_text(path, rel, text)
    }

    /// Lexes already-decoded text.
    pub fn from_text(path: PathBuf, rel: String, text: String) -> Self {
        let tokens = lex(&text);
        let code = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            })
            .map(|(i, _)| i)
            .collect();
        Self {
            path,
            rel,
            text,
            tokens,
            code,
        }
    }

    /// The text of a token (empty if the span is somehow invalid —
    /// never panics).
    pub fn text_of(&self, t: &Token) -> &str {
        self.text.get(t.start..t.end).unwrap_or("")
    }

    /// The text of the `idx`-th token of the code-only view.
    pub fn code_text(&self, code_idx: usize) -> &str {
        self.code
            .get(code_idx)
            .and_then(|&i| self.tokens.get(i))
            .map(|t| self.text_of(t))
            .unwrap_or("")
    }

    /// The `idx`-th token of the code-only view.
    pub fn code_token(&self, code_idx: usize) -> Option<&Token> {
        self.code.get(code_idx).and_then(|&i| self.tokens.get(i))
    }

    /// All suppressions declared in this file's comments.
    pub fn suppressions(&self) -> Vec<Suppression> {
        let mut out = Vec::new();
        for t in &self.tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = self.text_of(t);
            // Doc comments *document* the syntax without suppressing —
            // only working comments carry live markers.
            if text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!")
            {
                continue;
            }
            let mut line = t.line;
            let mut rest = text;
            // A block comment can span lines and hold several allows.
            while let Some(pos) = rest.find("lint:allow(") {
                line += rest[..pos].matches('\n').count() as u32;
                let after = &rest[pos + "lint:allow(".len()..];
                let Some(close) = after.find(')') else { break };
                let rule = after[..close].trim().to_string();
                let tail = &after[close + 1..];
                let reason = parse_reason(tail);
                out.push(Suppression {
                    line,
                    rule,
                    reason: reason.map(str::to_string),
                });
                line += after[..close].matches('\n').count() as u32;
                rest = tail;
            }
        }
        out
    }
}

/// Extracts the mandatory reason after `lint:allow(RULE)`: a `:` followed
/// by non-empty text on the same line. Returns `None` when absent/empty.
fn parse_reason(tail: &str) -> Option<&str> {
    let tail = tail.strip_prefix(':')?;
    let line_end = tail.find('\n').unwrap_or(tail.len());
    let reason = tail[..line_end].trim().trim_end_matches("*/").trim();
    if reason.is_empty() {
        None
    } else {
        Some(reason)
    }
}

/// One parsed `lint:allow(...)` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the marker sits on (1-based).
    pub line: u32,
    /// The rule id inside the parentheses, as written.
    pub rule: String,
    /// The reason after the colon — `None` when missing (a finding).
    pub reason: Option<String>,
}

impl Suppression {
    /// Does this suppression cover a finding of `rule` at `line`?
    ///
    /// Trailing comments cover their own line; a comment above covers the
    /// next line.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.reason.is_some() && self.rule == rule && (self.line == line || self.line + 1 == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::from_text(PathBuf::from("x.rs"), "x.rs".into(), text.to_string())
    }

    #[test]
    fn parses_allow_with_reason() {
        let f = file("let x = 1; // lint:allow(D001): keys sorted below\n");
        let s = f.suppressions();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rule, "D001");
        assert_eq!(s[0].reason.as_deref(), Some("keys sorted below"));
        assert_eq!(s[0].line, 1);
        assert!(s[0].covers("D001", 1));
        assert!(s[0].covers("D001", 2));
        assert!(!s[0].covers("D001", 3));
        assert!(!s[0].covers("D002", 1));
    }

    #[test]
    fn bare_allow_has_no_reason() {
        let f = file("// lint:allow(D001)\nfor x in m.iter() {}\n");
        let s = f.suppressions();
        assert_eq!(s[0].reason, None);
        assert!(!s[0].covers("D001", 2));
    }

    #[test]
    fn empty_reason_counts_as_missing() {
        let f = file("// lint:allow(D001):   \n");
        assert_eq!(file("// lint:allow(D001):").suppressions()[0].reason, None);
        assert_eq!(f.suppressions()[0].reason, None);
    }

    #[test]
    fn doc_comments_do_not_suppress() {
        let f = file("//! syntax: lint:allow(D001)\n/// e.g. lint:allow(D002): x\nfn f() {}\n");
        assert!(f.suppressions().is_empty());
    }

    #[test]
    fn allow_inside_string_is_not_a_suppression() {
        let f = file("let s = \"// lint:allow(D001): nope\";\n");
        assert!(f.suppressions().is_empty());
    }

    #[test]
    fn block_comment_allow() {
        let f = file("/* lint:allow(W001): tags are audited by hand here */\n");
        let s = f.suppressions();
        assert_eq!(s[0].rule, "W001");
        assert_eq!(s[0].reason.as_deref(), Some("tags are audited by hand here"));
    }
}
