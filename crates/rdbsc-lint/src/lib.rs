//! # rdbsc-lint
//!
//! A workspace determinism & wire-invariant static analyzer, run as a hard
//! CI gate (`cargo run -p rdbsc-lint --release`).
//!
//! The system's correctness story rests on byte-identical determinism: FNV
//! digests must match across index backends, partition topologies, wire
//! transports and crash recovery. The two nastiest bugs in this repo's
//! history were nondeterminism introduced silently in review-passing code —
//! a float-order-sensitive summary recomputation, and an objective fold
//! over `HashMap` iteration order that diverged in the last ulp between
//! identical engines. Reviewer vigilance does not scale; this crate
//! mechanically excludes those hazard classes.
//!
//! It is zero-dependency by design (the build environment is offline — no
//! `syn`, no `clippy-utils`): a hand-rolled [`lexer`] that never fires
//! rules inside comments or strings, a token-level [`analysis`] layer, the
//! [`rules`] themselves, and an [`engine`] that walks the workspace and
//! applies inline suppressions (`// lint:allow(D001): <reason>` — the
//! reason is mandatory).

#![deny(missing_docs)]

pub mod analysis;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use engine::{find_workspace_root, run};
pub use rules::{Finding, ALL_RULES};
pub use source::SourceFile;
