//! A small, robust Rust lexer.
//!
//! The rules in this crate must never fire on text inside comments, string
//! literals, char literals or lifetimes — so the lexer's one job is to
//! classify those regions correctly and *never panic*, no matter what bytes
//! it is fed (source files are read from disk and may be arbitrarily
//! damaged; the proptest suite feeds it random byte soup).
//!
//! It is deliberately not a full Rust lexer: numbers are lexed loosely,
//! multi-character operators are emitted as single-character [`Punct`]
//! tokens (rules match adjacent punct pairs when they need `+=` or `::`),
//! and keywords are ordinary [`Ident`] tokens. What it does get exactly
//! right is the hard part: nested block comments, escapes in strings and
//! chars, raw strings with arbitrary `#` fences, byte strings, raw
//! identifiers, and the `'a` lifetime vs `'a'` char-literal ambiguity.
//!
//! [`Punct`]: TokenKind::Punct
//! [`Ident`]: TokenKind::Ident

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime such as `'a` or `'static` (quote included).
    Lifetime,
    /// A string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A number literal (integer or float, prefixes and suffixes included).
    Num,
    /// A `// …` comment (doc comments included), newline excluded.
    LineComment,
    /// A `/* … */` comment, nesting honoured, unterminated accepted.
    BlockComment,
    /// Any other single character (operators, brackets, stray bytes).
    Punct,
}

/// One lexed token: a classified byte range of the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the first byte.
    pub line: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream covering every non-whitespace byte.
///
/// Total: any input produces a token vector; unterminated constructs extend
/// to end of input. Bytes `>= 0x80` are folded into identifier tokens so
/// multi-byte UTF-8 sequences are never split below a char boundary.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let start = i;
        let start_line = line;
        let c = b[i];
        let kind = match c {
            b'\n' => {
                line += 1;
                i += 1;
                continue;
            }
            _ if c.is_ascii_whitespace() => {
                i += 1;
                continue;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                TokenKind::LineComment
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                i = scan_string(b, i + 1, &mut line);
                TokenKind::Str
            }
            b'\'' => scan_quote(b, &mut i, &mut line),
            b'0'..=b'9' => {
                i = scan_number(b, i);
                TokenKind::Num
            }
            _ if is_ident_start(c) => {
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let word = &b[start..i];
                match word {
                    // Possible string prefix: r"…", r#"…"#, b"…", br#"…"#.
                    b"r" | b"b" | b"br" | b"rb" => {
                        let raw = word != b"b";
                        if let Some(end) = try_string_suffix(b, i, raw, &mut line) {
                            i = end;
                            TokenKind::Str
                        } else if word == b"r" && b.get(i) == Some(&b'#') {
                            // Raw identifier `r#ident` (or `r#` garbage).
                            if i + 1 < b.len() && is_ident_start(b[i + 1]) {
                                i += 1;
                                while i < b.len() && is_ident_continue(b[i]) {
                                    i += 1;
                                }
                            }
                            TokenKind::Ident
                        } else if word != b"r" && b.get(i) == Some(&b'\'') {
                            // Byte char literal b'x'.
                            i += 1;
                            let k = scan_quote(b, &mut i, &mut line);
                            if k == TokenKind::Lifetime {
                                TokenKind::Char // b'a is malformed; absorb it
                            } else {
                                k
                            }
                        } else {
                            TokenKind::Ident
                        }
                    }
                    _ => TokenKind::Ident,
                }
            }
            _ => {
                i += 1;
                TokenKind::Punct
            }
        };
        out.push(Token {
            kind,
            start,
            end: i,
            line: start_line,
        });
    }
    out
}

/// Scans the body of a `"…"` string from just past the opening quote;
/// returns the offset one past the closing quote (or end of input).
fn scan_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// After an `r`/`b`/`br`/`rb` identifier, tries to continue into a string
/// literal. Returns the end offset if the following bytes open one.
fn try_string_suffix(b: &[u8], i: usize, raw: bool, line: &mut u32) -> Option<usize> {
    if !raw {
        // b"…" — ordinary escapes apply.
        if b.get(i) == Some(&b'"') {
            return Some(scan_string(b, i + 1, line));
        }
        return None;
    }
    // r / br / rb: count the # fence, then require a quote.
    let mut j = i;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    let hashes = j - i;
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
        } else if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    Some(j)
}

/// Disambiguates `'` at `*i`: lifetime, char literal, or bare punct.
/// Advances `*i` past the token and returns its kind.
fn scan_quote(b: &[u8], i: &mut usize, line: &mut u32) -> TokenKind {
    let mut j = *i + 1; // past the quote
    match b.get(j) {
        Some(&b'\\') => {
            // Escaped char literal: '\n', '\'', '\u{1F600}'.
            j += 2; // backslash + first escaped byte
            while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
                j += 1;
            }
            if b.get(j) == Some(&b'\'') {
                j += 1;
            }
            *i = j.min(b.len());
            TokenKind::Char
        }
        Some(&c) if is_ident_continue(c) => {
            // Ident run: 'a' is a char, 'a (no close) is a lifetime.
            let mut k = j;
            while k < b.len() && is_ident_continue(b[k]) {
                k += 1;
            }
            if b.get(k) == Some(&b'\'') {
                *i = k + 1;
                TokenKind::Char
            } else {
                *i = k;
                TokenKind::Lifetime
            }
        }
        Some(&b'\'') => {
            // '' — empty char literal (malformed; absorb both quotes).
            *i = j + 1;
            TokenKind::Char
        }
        // Punctuation char literal like '(' — only if closed right after.
        Some(&c) if b.get(j + 1) == Some(&b'\'') => {
            if c == b'\n' {
                *line += 1;
            }
            *i = j + 2;
            TokenKind::Char
        }
        _ => {
            *i += 1;
            TokenKind::Punct
        }
    }
}

/// Scans a number starting at a digit. Loose: accepts radix prefixes,
/// underscores, one decimal point (not `..`), exponents and suffixes.
fn scan_number(b: &[u8], mut i: usize) -> usize {
    let radix_prefixed = b[i] == b'0'
        && matches!(
            b.get(i + 1),
            Some(&b'x') | Some(&b'X') | Some(&b'o') | Some(&b'O') | Some(&b'b') | Some(&b'B')
        );
    if radix_prefixed {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fractional part — but never eat the `..` of a range expression.
    if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        i += 1;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    // Exponent.
    if matches!(b.get(i), Some(&b'e') | Some(&b'E')) {
        let sign = matches!(b.get(i + 1), Some(&b'+') | Some(&b'-'));
        let digits_at = if sign { i + 2 } else { i + 1 };
        if b.get(digits_at).is_some_and(|c| c.is_ascii_digit()) {
            i = digits_at;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (u64, f32, …).
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    #[test]
    fn comments_and_strings() {
        let toks = kinds("let s = \"a // not a comment\"; // real");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("not a comment")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && *t == "// real"));
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn raw_strings() {
        let toks = kinds(r####"let x = r#"quote " inside"# ;"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quote")));
        let toks = kinds("br##\"bytes\"## + rest");
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[2], (TokenKind::Ident, "rest"));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && *t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && *t == "'y'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && *t == "'\\n'"));
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "r#fn"));
    }

    #[test]
    fn numbers() {
        let toks = kinds("0xcbf2_9ce4 1.5e-3 1..2 x.0");
        assert_eq!(toks[0], (TokenKind::Num, "0xcbf2_9ce4"));
        assert_eq!(toks[1], (TokenKind::Num, "1.5e-3"));
        assert_eq!(toks[2], (TokenKind::Num, "1"));
        assert_eq!(toks[3], (TokenKind::Punct, "."));
        assert_eq!(toks[4], (TokenKind::Punct, "."));
        assert_eq!(toks[5], (TokenKind::Num, "2"));
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'", "b'", "r#"] {
            let _ = lex(src);
        }
    }
}
