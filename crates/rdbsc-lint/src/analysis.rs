//! Shared token-level analyses the determinism rules build on.
//!
//! Everything here is a *heuristic over the token stream* — there is no type
//! information. The resolution strategy is deliberately conservative:
//!
//! * An identifier counts as a hash container only when the file itself
//!   binds it to one: a struct field declared `name: HashMap<…>`, a
//!   `let`/param binding with a `HashMap`/`HashSet` type ascription, or a
//!   `let name = HashMap::new()`-style initializer.
//! * A method call is attributed to a binding only for the two receiver
//!   shapes that are unambiguous at token level: `name.method(…)` (local)
//!   and `self.name.method(…)` (field). Longer chains (`a.b.iter()`) are
//!   *not* flagged — the middle of a chain can't be resolved without types,
//!   and a false negative is cheaper than teaching the tree to ignore the
//!   linter.
//!
//! Items under `#[cfg(test)]` are excluded by the determinism rules: the
//! byte-identity contract covers shipped code, and tests routinely use hash
//! iteration where order genuinely doesn't matter.

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;
use std::ops::Range;

/// A local or parameter binding, valid only inside its byte span (the
/// enclosing function body), so `tasks: &HashSet<_>` in one function never
/// taints a same-named slice parameter in the next.
#[derive(Debug)]
pub struct LocalBinding {
    /// The bound identifier.
    pub name: String,
    /// Byte range in which a bare `name` receiver resolves to this binding.
    pub span: Range<usize>,
}

/// Identifiers a file binds to `HashMap`/`HashSet`, split by how they are
/// referenced at use sites.
#[derive(Debug, Default)]
pub struct HashBindings {
    /// Struct fields — matched against `self.<name>` receivers, file-wide.
    pub fields: BTreeSet<String>,
    /// Locals and fn params — matched against bare `<name>` receivers
    /// inside their scope span only.
    pub locals: Vec<LocalBinding>,
}

impl HashBindings {
    /// Is there anything to look for at all?
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty() && self.locals.is_empty()
    }

    /// Does a bare `name` at byte offset `byte` resolve to a hash binding?
    pub fn local_in_scope(&self, name: &str, byte: usize) -> bool {
        self.locals
            .iter()
            .any(|l| l.name == name && l.span.contains(&byte))
    }
}

fn is_hash_head(name: &str) -> bool {
    name == "HashMap" || name == "HashSet"
}

/// Does the type starting at code index `at` head with `HashMap`/`HashSet`?
///
/// Skips `&`, `mut`, lifetimes and path qualifiers, so
/// `&mut std::collections::HashMap<…>` and `HashSet<…>` both match while
/// `Vec<HashMap<…>>` does not.
fn type_heads_hash(f: &SourceFile, at: usize) -> bool {
    let mut i = at;
    loop {
        match f.code_token(i) {
            Some(t) if t.kind == TokenKind::Punct && f.code_text(i) == "&" => i += 1,
            Some(t) if t.kind == TokenKind::Lifetime => i += 1,
            Some(t) if t.kind == TokenKind::Ident => {
                let text = f.code_text(i);
                if text == "mut" || text == "dyn" {
                    i += 1;
                    continue;
                }
                // Read the path: Ident (:: Ident)*; the last segment before
                // `<` or the end of the path is the head.
                let mut head = text.to_string();
                let mut j = i + 1;
                while f.code_text(j) == ":"
                    && f.code_text(j + 1) == ":"
                    && f.code_token(j + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    head = f.code_text(j + 2).to_string();
                    j += 3;
                }
                return is_hash_head(&head);
            }
            _ => return false,
        }
    }
}

/// Byte spans of every `fn` body in the file (nested fns included), used
/// to scope local bindings to their function.
fn fn_body_spans(f: &SourceFile) -> Vec<Range<usize>> {
    let n = f.code.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        if f.code_text(i) == "fn"
            && f.code_token(i).map(|t| t.kind) == Some(TokenKind::Ident)
        {
            // Scan to the body `{` at bracket-depth 0; a `;` first means a
            // bodyless trait method (or an `fn(…)` pointer type ended by the
            // statement) — nothing to scope.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut body_open = None;
            while j < n {
                match f.code_text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body_open {
                let mut k = open;
                let mut braces = 0i32;
                while k < n {
                    match f.code_text(k) {
                        "{" => braces += 1,
                        "}" => {
                            braces -= 1;
                            if braces == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let start = f.code_token(open).map(|t| t.start).unwrap_or(0);
                let end = f
                    .code_token(k.min(n.saturating_sub(1)))
                    .map(|t| t.end)
                    .unwrap_or(f.text.len());
                out.push(start..end.max(start));
                // Continue *inside* the body so nested fns get spans too.
                i = open;
            } else {
                i = j;
            }
        }
        i += 1;
    }
    out
}

/// End of the innermost fn body containing `byte` (file end when at item
/// level). Properly nested spans make "innermost" the minimum end.
fn innermost_scope_end(spans: &[Range<usize>], byte: usize, file_end: usize) -> usize {
    spans
        .iter()
        .filter(|s| s.contains(&byte))
        .map(|s| s.end)
        .min()
        .unwrap_or(file_end)
}

/// Collects the file's hash-container bindings (fields, locals, params).
pub fn hash_bindings(f: &SourceFile) -> HashBindings {
    let mut out = HashBindings::default();
    let fn_spans = fn_body_spans(f);
    // Brace contexts: `true` for a struct body, so `name: HashMap<…>` at its
    // top level is a field and not a generic bound or match arm.
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_struct = false;
    let n = f.code.len();
    let mut i = 0usize;
    while i < n {
        let text = f.code_text(i);
        let kind = f.code_token(i).map(|t| t.kind);
        match (kind, text) {
            (Some(TokenKind::Ident), "struct") => pending_struct = true,
            (Some(TokenKind::Punct), "{") => {
                stack.push(pending_struct);
                pending_struct = false;
            }
            (Some(TokenKind::Punct), "}") => {
                stack.pop();
            }
            (Some(TokenKind::Punct), ";") if pending_struct => pending_struct = false,
            (Some(TokenKind::Ident), "let") => {
                let mut j = i + 1;
                if f.code_text(j) == "mut" {
                    j += 1;
                }
                if f.code_token(j).is_some_and(|t| t.kind == TokenKind::Ident) {
                    let name = f.code_text(j).to_string();
                    let is_hash = if f.code_text(j + 1) == ":" {
                        type_heads_hash(f, j + 2)
                    } else if f.code_text(j + 1) == "=" {
                        // `let m = HashMap::new()` / `HashSet::with_capacity(…)`.
                        is_hash_head(f.code_text(j + 2)) && f.code_text(j + 3) == ":"
                    } else {
                        false
                    };
                    if is_hash {
                        let start = f.code_token(j).map(|t| t.start).unwrap_or(0);
                        let end = innermost_scope_end(&fn_spans, start, f.text.len());
                        out.locals.push(LocalBinding {
                            name,
                            span: start..end,
                        });
                    }
                }
            }
            (Some(TokenKind::Ident), "fn") => {
                // Find the param list: first `(` at angle-depth 0 (skipping
                // `->` so a return arrow never closes a generic).
                let mut j = i + 1;
                let mut angle = 0i32;
                while j < n {
                    match f.code_text(j) {
                        "<" => angle += 1,
                        ">" => {
                            let arrow = f.code_text(j.wrapping_sub(1)) == "-"
                                && f
                                    .code_token(j - 1)
                                    .zip(f.code_token(j))
                                    .is_some_and(|(a, b)| a.end == b.start);
                            if !arrow && angle > 0 {
                                angle -= 1;
                            }
                        }
                        "(" if angle == 0 => break,
                        "{" | ";" => {
                            j = n;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < n {
                    // Scan `name: <type>` pairs at paren-depth 1.
                    let mut params: Vec<String> = Vec::new();
                    let mut depth = 0i32;
                    while j < n {
                        let t = f.code_text(j);
                        match t {
                            "(" | "[" => depth += 1,
                            ")" | "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {
                                if depth == 1
                                    && f.code_token(j)
                                        .is_some_and(|t| t.kind == TokenKind::Ident)
                                    && f.code_text(j + 1) == ":"
                                    && f.code_text(j + 2) != ":"
                                    && type_heads_hash(f, j + 2)
                                {
                                    params.push(t.to_string());
                                }
                            }
                        }
                        j += 1;
                    }
                    if !params.is_empty() {
                        // Scope the params to this fn's body: the span
                        // opening at the first depth-0 `{` after the params.
                        let mut k = j + 1;
                        let mut d = 0i32;
                        let body = loop {
                            if k >= n {
                                break None;
                            }
                            match f.code_text(k) {
                                "(" | "[" => d += 1,
                                ")" | "]" => d -= 1,
                                "{" if d == 0 => {
                                    break f.code_token(k).and_then(|t| {
                                        fn_spans.iter().find(|s| s.start == t.start)
                                    });
                                }
                                ";" if d == 0 => break None,
                                _ => {}
                            }
                            k += 1;
                        };
                        if let Some(body) = body {
                            for name in params {
                                out.locals.push(LocalBinding {
                                    name,
                                    span: body.clone(),
                                });
                            }
                        }
                    }
                    i = j;
                }
            }
            (Some(TokenKind::Ident), name)
                if stack.last() == Some(&true)
                    && f.code_text(i + 1) == ":"
                    && f.code_text(i + 2) != ":"
                    && name != "pub"
                    && type_heads_hash(f, i + 2) =>
            {
                out.fields.insert(name.to_string());
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Byte spans of `#[cfg(test)]` items (usually `mod tests { … }`).
pub fn test_spans(f: &SourceFile) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let n = f.code.len();
    let mut i = 0usize;
    while i < n {
        if f.code_text(i) == "#" && f.code_text(i + 1) == "[" && f.code_text(i + 2) == "cfg" {
            let span_start = f.code_token(i).map(|t| t.start).unwrap_or(0);
            // Does the cfg predicate mention `test`?
            let mut j = i + 3;
            let mut depth = 0i32;
            let mut mentions_test = false;
            while j < n {
                match f.code_text(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            if mentions_test {
                // Skip to the end of this attribute, then over any further
                // attributes, then to the item's `{ … }` or `;`.
                j = skip_to_close_bracket(f, j);
                while f.code_text(j) == "#" && f.code_text(j + 1) == "[" {
                    j = skip_to_close_bracket(f, j + 1);
                }
                let mut depth = 0i32;
                while j < n {
                    match f.code_text(j) {
                        "{" => {
                            depth += 1;
                        }
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let span_end = f
                    .code_token(j.min(n.saturating_sub(1)))
                    .map(|t| t.end)
                    .unwrap_or(f.text.len());
                out.push(span_start..span_end.max(span_start));
                i = j;
            }
        }
        i += 1;
    }
    out
}

/// Advances past the `]` closing the bracket that opens at or after `at`.
fn skip_to_close_bracket(f: &SourceFile, at: usize) -> usize {
    let n = f.code.len();
    let mut j = at;
    let mut depth = 0i32;
    while j < n {
        match f.code_text(j) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Is the byte offset of `line`-starting token inside any span?
pub fn in_spans(spans: &[Range<usize>], byte: usize) -> bool {
    spans.iter().any(|s| s.contains(&byte))
}

/// How a hash container is iterated at a use site.
#[derive(Debug)]
pub enum SiteKind {
    /// `name.iter()`, `self.name.values()`, … — `after_call` is the code
    /// index one past the call's closing `)`, where a chain may continue.
    Method {
        /// The iterating method (`iter`, `values`, `keys`, `drain`, …).
        method: String,
        /// Code index just past the call's `()`.
        after_call: usize,
    },
    /// `for pat in &name { … }` — `body` is the code-index range of the
    /// loop body (exclusive of the braces).
    ForLoop {
        /// Code-index range of the loop body.
        body: Range<usize>,
    },
}

/// One place a hash container's unordered contents are iterated.
#[derive(Debug)]
pub struct IterSite {
    /// 1-based line of the receiver.
    pub line: u32,
    /// Byte offset (for test-span filtering).
    pub byte: usize,
    /// The container identifier.
    pub name: String,
    /// What kind of iteration.
    pub kind: SiteKind,
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "values",
    "values_mut",
    "into_values",
    "keys",
    "into_keys",
    "drain",
    "into_iter",
];

/// Finds every hash-container iteration site in the file.
pub fn iteration_sites(f: &SourceFile, bindings: &HashBindings) -> Vec<IterSite> {
    let mut out = Vec::new();
    if bindings.is_empty() {
        return out;
    }
    let n = f.code.len();
    for i in 0..n {
        let text = f.code_text(i);
        if f.code_token(i).map(|t| t.kind) != Some(TokenKind::Ident) {
            continue;
        }
        if ITER_METHODS.contains(&text) && f.code_text(i + 1) == "(" {
            // `<recv> . method (` — resolve the receiver.
            if i < 2 || f.code_text(i - 1) != "." {
                continue;
            }
            let Some((name, byte, line)) = resolve_receiver(f, bindings, i - 2) else {
                continue;
            };
            // Find the call's closing paren.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < n {
                match f.code_text(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            out.push(IterSite {
                line,
                byte,
                name,
                kind: SiteKind::Method {
                    method: text.to_string(),
                    after_call: j + 1,
                },
            });
        } else if text == "for" && f.code_text(i + 1) != "<" {
            // `for <pat> in <expr> {` — but not `impl Trait for Type` (no
            // `in` before the `{`) and not `for<'a>` bounds.
            let Some(site) = for_loop_site(f, bindings, i) else {
                continue;
            };
            out.push(site);
        }
    }
    out
}

/// Resolves the receiver ending at code index `end` (the token before the
/// `.`): `name` (local) or `self.name` (field). Longer chains return `None`.
fn resolve_receiver(
    f: &SourceFile,
    bindings: &HashBindings,
    end: usize,
) -> Option<(String, usize, u32)> {
    let t = f.code_token(end)?;
    if t.kind != TokenKind::Ident {
        return None;
    }
    let name = f.code_text(end);
    let prev = if end >= 1 { f.code_text(end - 1) } else { "" };
    if prev == "." {
        // `<something>.name.` — only `self.name.` is resolvable.
        let head = if end >= 2 { f.code_text(end - 2) } else { "" };
        let before_head = if end >= 3 { f.code_text(end - 3) } else { "" };
        if head == "self" && before_head != "." && bindings.fields.contains(name) {
            return Some((name.to_string(), t.start, t.line));
        }
        None
    } else if bindings.local_in_scope(name, t.start) {
        Some((name.to_string(), t.start, t.line))
    } else {
        None
    }
}

/// Matches a `for … in <hash> { … }` loop starting at the `for` keyword.
fn for_loop_site(f: &SourceFile, bindings: &HashBindings, at: usize) -> Option<IterSite> {
    let n = f.code.len();
    // Find `in` at bracket-depth 0 before any depth-0 `{`.
    let mut j = at + 1;
    let mut depth = 0i32;
    let in_at = loop {
        if j >= n {
            return None;
        }
        match f.code_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return None, // `impl … for … {`
            ";" if depth == 0 => return None,
            "in" if depth == 0 => break j,
            _ => {}
        }
        j += 1;
    };
    // The iterated expression: tokens between `in` and the body `{`.
    let mut j = in_at + 1;
    let expr_start = j;
    let mut depth = 0i32;
    let body_open = loop {
        if j >= n {
            return None;
        }
        match f.code_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break j,
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    };
    // Match: [&] [mut] (self . name | name), nothing else before the `{`.
    let mut k = expr_start;
    while f.code_text(k) == "&" || f.code_text(k) == "mut" {
        k += 1;
    }
    let (name, name_tok) = if f.code_text(k) == "self" && f.code_text(k + 1) == "." {
        let name = f.code_text(k + 2);
        if !bindings.fields.contains(name) {
            return None;
        }
        (name.to_string(), f.code_token(k + 2)?)
    } else {
        let name = f.code_text(k);
        let tok = f.code_token(k)?;
        if !bindings.local_in_scope(name, tok.start) {
            return None;
        }
        (name.to_string(), tok)
    };
    // A trailing `.method()` chain is handled by the method-site matcher;
    // only a bare container between `in` and `{` counts here.
    let expr_end = if f.code_text(k) == "self" { k + 3 } else { k + 1 };
    if expr_end != body_open {
        return None;
    }
    // Body range: to the matching `}`.
    let mut j = body_open;
    let mut depth = 0i32;
    while j < n {
        match f.code_text(j) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some(IterSite {
        line: name_tok.line,
        byte: name_tok.start,
        name,
        kind: SiteKind::ForLoop {
            body: body_open + 1..j,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(text: &str) -> SourceFile {
        SourceFile::from_text(PathBuf::from("x.rs"), "x.rs".into(), text.to_string())
    }

    #[test]
    fn binds_fields_lets_and_params() {
        let f = file(
            "struct S { committed: HashMap<u32, u32>, other: Vec<HashMap<u32, u32>> }\n\
             fn go(seen: &HashSet<u32>, v: &[u32]) {\n\
                 let mut groups: std::collections::HashMap<u32, u32> = HashMap::new();\n\
                 let direct = HashSet::new();\n\
             }\n",
        );
        let b = hash_bindings(&f);
        let has = |name: &str| b.locals.iter().any(|l| l.name == name);
        assert!(b.fields.contains("committed"));
        assert!(!b.fields.contains("other"), "Vec<HashMap> is not a hash head");
        assert!(has("seen"));
        assert!(!has("v"));
        assert!(has("groups"));
        assert!(has("direct"));
        // Params and lets are in scope inside the body…
        let in_body = f.text.find("HashSet::new").unwrap();
        assert!(b.local_in_scope("seen", in_body));
        assert!(b.local_in_scope("groups", in_body));
        // …and out of scope outside it.
        assert!(!b.local_in_scope("seen", 0));
        assert!(!b.local_in_scope("groups", 0));
    }

    #[test]
    fn locals_are_scoped_per_function() {
        // `tasks` is a HashSet param in one fn and a plain slice in the
        // next — iterating the slice must not fire.
        let f = file(
            "fn a(tasks: &HashSet<u32>) {\n\
                 for t in tasks { }\n\
             }\n\
             fn b(tasks: &[u32]) {\n\
                 for t in tasks { }\n\
                 for t in tasks.iter() { }\n\
             }\n",
        );
        let b = hash_bindings(&f);
        let sites = iteration_sites(&f, &b);
        let lines: Vec<u32> = sites.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![2], "only the HashSet loop fires: {sites:?}");
    }

    #[test]
    fn finds_method_and_for_sites() {
        let f = file(
            "struct S { m: HashMap<u32, u32> }\n\
             impl S {\n\
                 fn f(&self, local: HashSet<u32>) {\n\
                     for v in self.m.values() { }\n\
                     for x in &local { }\n\
                     let other = vec![1];\n\
                     for x in &other { }\n\
                 }\n\
             }\n",
        );
        let b = hash_bindings(&f);
        let sites = iteration_sites(&f, &b);
        let lines: Vec<u32> = sites.iter().map(|s| s.line).collect();
        assert!(lines.contains(&4), "self.m.values() site: {sites:?}");
        assert!(lines.contains(&5), "for over &local: {sites:?}");
        assert_eq!(sites.len(), 2, "vec iteration must not fire: {sites:?}");
    }

    #[test]
    fn chains_are_not_resolved() {
        let f = file(
            "struct S { m: HashMap<u32, u32> }\n\
             fn f(s: &Wrapper) { for v in s.inner.m.iter() { } s.cells[0].m.keys(); }\n",
        );
        let b = hash_bindings(&f);
        assert!(iteration_sites(&f, &b).is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let f = file(
            "struct S { m: HashMap<u32, u32> }\nimpl Iterator for m { fn next(&mut self) {} }\n",
        );
        let b = hash_bindings(&f);
        // `m` is a field binding, not a local, so `impl … for m {` can't
        // even match — but the guard must also not panic or mis-span.
        assert!(iteration_sites(&f, &b).is_empty());
    }

    #[test]
    fn test_spans_cover_mod_tests() {
        let f = file(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn inner() {}\n\
             }\n\
             fn after() {}\n",
        );
        let spans = test_spans(&f);
        assert_eq!(spans.len(), 1);
        let inner_at = f.text.find("inner").unwrap();
        let after_at = f.text.find("after").unwrap();
        assert!(in_spans(&spans, inner_at));
        assert!(!in_spans(&spans, after_at));
    }
}
