//! The divide-and-conquer RDB-SC solver (Section 6, Figures 6–9).
//!
//! * **`BG_Partition`** (Figure 7): split the task set into two spatially
//!   coherent, roughly even halves with balanced 2-means on the task
//!   locations; workers whose reachable tasks all fall in one half go to that
//!   half only, the rest are duplicated into both subproblems.
//! * **Recursion** (Figure 6): subproblems with at most `γ` tasks are solved
//!   directly with the sampling solver; larger ones are partitioned again.
//! * **`SA_Merge`** (Figure 9): answers of two subproblems are merged by
//!   resolving *conflicting workers* — workers assigned in both halves.
//!   Independent conflicting workers (ICW) are resolved one by one;
//!   dependent conflicting workers (DCW, those sharing a task with another
//!   conflicting worker) are resolved jointly by enumerating the copy
//!   choices within their dependency group (Lemmas 6.1 and 6.2).

use crate::sampling::{sampling, SamplingConfig};
use crate::solver::SolveRequest;
use rand::Rng;
use rdbsc_cluster::balanced_two_way_split;
use rdbsc_model::objective::TaskPriors;
use rdbsc_model::reliability::reliability;
use rdbsc_model::valid_pairs::BipartiteCandidates;
use rdbsc_model::{
    rank_by_dominating_count, Assignment, Contribution, TaskId, WorkerId,
};
use std::collections::{HashMap, HashSet};

/// Configuration of the divide-and-conquer solver.
#[derive(Debug, Clone, Copy)]
pub struct DncConfig {
    /// Subproblems with at most this many tasks are solved directly
    /// (threshold `γ` of Figure 6).
    pub gamma: usize,
    /// Sampling configuration used for the leaf subproblems.
    pub sampling: SamplingConfig,
    /// Maximum size of a dependent-conflicting-worker group that is resolved
    /// by exhaustive enumeration (`2^k` combinations); larger groups fall back
    /// to a per-worker greedy resolution.
    pub max_group_enumeration: usize,
    /// Hard cap on the recursion depth (degenerate partitions stop early).
    pub max_depth: usize,
}

impl Default for DncConfig {
    fn default() -> Self {
        Self {
            gamma: 16,
            sampling: SamplingConfig::default(),
            max_group_enumeration: 12,
            max_depth: 32,
        }
    }
}

/// Runs the divide-and-conquer solver.
pub fn divide_and_conquer<R: Rng + ?Sized>(
    request: &SolveRequest<'_>,
    config: &DncConfig,
    rng: &mut R,
) -> Assignment {
    let instance = request.instance;
    let all_tasks: Vec<TaskId> = instance.tasks.iter().map(|t| t.id).collect();
    let all_workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
    solve_recursive(request, config, &all_tasks, &all_workers, 0, rng)
}

/// Restricts the candidate graph to a (task, worker) subset, keeping the
/// global dense id space so sub-assignments compose directly.
fn restrict_candidates(
    full: &BipartiteCandidates,
    tasks: &HashSet<TaskId>,
    workers: &HashSet<WorkerId>,
    num_tasks: usize,
    num_workers: usize,
) -> BipartiteCandidates {
    let mut restricted = BipartiteCandidates::with_capacity(num_tasks, num_workers);
    for pair in &full.pairs {
        if tasks.contains(&pair.task) && workers.contains(&pair.worker) {
            restricted.push(*pair);
        }
    }
    restricted
}

fn solve_leaf<R: Rng + ?Sized>(
    request: &SolveRequest<'_>,
    config: &DncConfig,
    tasks: &[TaskId],
    workers: &[WorkerId],
    rng: &mut R,
) -> Assignment {
    let task_set: HashSet<TaskId> = tasks.iter().copied().collect();
    let worker_set: HashSet<WorkerId> = workers.iter().copied().collect();
    let restricted = restrict_candidates(
        request.candidates,
        &task_set,
        &worker_set,
        request.instance.num_tasks(),
        request.instance.num_workers(),
    );
    let mut leaf_request = SolveRequest::new(request.instance, &restricted);
    if let Some(priors) = request.priors {
        leaf_request = leaf_request.with_priors(priors);
    }
    sampling(&leaf_request, &config.sampling, rng)
}

fn solve_recursive<R: Rng + ?Sized>(
    request: &SolveRequest<'_>,
    config: &DncConfig,
    tasks: &[TaskId],
    workers: &[WorkerId],
    depth: usize,
    rng: &mut R,
) -> Assignment {
    if tasks.len() <= config.gamma.max(1) || depth >= config.max_depth {
        return solve_leaf(request, config, tasks, workers, rng);
    }

    // ---- BG_Partition ----------------------------------------------------
    let points: Vec<_> = tasks
        .iter()
        .map(|t| request.instance.tasks[t.index()].location)
        .collect();
    let (idx1, idx2) = balanced_two_way_split(&points, rng);
    if idx1.is_empty() || idx2.is_empty() {
        return solve_leaf(request, config, tasks, workers, rng);
    }
    let t1: Vec<TaskId> = idx1.iter().map(|&i| tasks[i]).collect();
    let t2: Vec<TaskId> = idx2.iter().map(|&i| tasks[i]).collect();
    let t1_set: HashSet<TaskId> = t1.iter().copied().collect();
    let t2_set: HashSet<TaskId> = t2.iter().copied().collect();
    let task_set: HashSet<TaskId> = tasks.iter().copied().collect();

    let mut w1: Vec<WorkerId> = Vec::new();
    let mut w2: Vec<WorkerId> = Vec::new();
    for &w in workers {
        let mut in_t1 = false;
        let mut in_t2 = false;
        for pair in request.candidates.pairs_of_worker(w) {
            if !task_set.contains(&pair.task) {
                continue;
            }
            if t1_set.contains(&pair.task) {
                in_t1 = true;
            } else if t2_set.contains(&pair.task) {
                in_t2 = true;
            }
            if in_t1 && in_t2 {
                break;
            }
        }
        match (in_t1, in_t2) {
            (true, false) => w1.push(w),
            (false, true) => w2.push(w),
            (true, true) => {
                // Worker can serve both halves: duplicate it (conflict
                // resolution happens at merge time).
                w1.push(w);
                w2.push(w);
            }
            (false, false) => {}
        }
    }

    // ---- Recurse ----------------------------------------------------------
    let s1 = solve_recursive(request, config, &t1, &w1, depth + 1, rng);
    let s2 = solve_recursive(request, config, &t2, &w2, depth + 1, rng);

    // ---- SA_Merge ----------------------------------------------------------
    merge_answers(request, config, &s1, &s2)
}

/// Merges the answers of two subproblems by resolving conflicting workers.
fn merge_answers(
    request: &SolveRequest<'_>,
    config: &DncConfig,
    s1: &Assignment,
    s2: &Assignment,
) -> Assignment {
    let instance = request.instance;
    let mut merged = Assignment::for_instance(instance);

    // Conflicting workers: assigned in both sub-answers (necessarily to
    // different tasks, since the task sets of the halves are disjoint).
    let mut conflicting: Vec<WorkerId> = Vec::new();
    for w in 0..instance.num_workers() {
        let id = WorkerId::from(w);
        if let (Some(_), Some(_)) = (s1.task_of(id), s2.task_of(id)) {
            conflicting.push(id);
        }
    }
    let conflict_set: HashSet<WorkerId> = conflicting.iter().copied().collect();

    // Non-conflicting assignments are kept as they are (Lemma 6.1).
    for source in [s1, s2] {
        for (task, worker, contribution) in source.iter() {
            if !conflict_set.contains(&worker) {
                merged
                    .assign(task, worker, contribution)
                    .expect("disjoint halves cannot double-assign a non-conflicting worker");
            }
        }
    }

    if conflicting.is_empty() {
        return merged;
    }

    // Group conflicting workers into dependency components: two conflicting
    // workers are dependent when they touch a common task in either
    // sub-answer (Lemma 6.2).
    let tasks_of = |w: WorkerId| -> Vec<TaskId> {
        [s1.task_of(w), s2.task_of(w)].into_iter().flatten().collect()
    };
    let mut task_to_conflicts: HashMap<TaskId, Vec<WorkerId>> = HashMap::new();
    for &w in &conflicting {
        for t in tasks_of(w) {
            task_to_conflicts.entry(t).or_default().push(w);
        }
    }
    // Union-find over the conflicting workers.
    let index_of: HashMap<WorkerId, usize> = conflicting
        .iter()
        .enumerate()
        .map(|(i, &w)| (w, i))
        .collect();
    let mut parent: Vec<usize> = (0..conflicting.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    // The final partition is the same whatever order the conflict lists
    // are unioned in, and groups are sorted before resolution below.
    // lint:allow(D001): order-insensitive union-find merge
    for members in task_to_conflicts.values() {
        for pair in members.windows(2) {
            let a = find(&mut parent, index_of[&pair[0]]);
            let b = find(&mut parent, index_of[&pair[1]]);
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut groups: HashMap<usize, Vec<WorkerId>> = HashMap::new();
    for (i, &w) in conflicting.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(w);
    }

    // Resolve each group. Groups touch disjoint task sets, so they can be
    // resolved independently against the already-merged non-conflicting
    // assignments (Lemma 6.2).
    // Members of each group keep `conflicting`'s deterministic order.
    // lint:allow(D001): collected here, sorted on the next line
    let mut group_list: Vec<Vec<WorkerId>> = groups.into_values().collect();
    group_list.sort_by_key(|g| g.first().map(|w| w.index()).unwrap_or(0));
    for group in group_list {
        resolve_group(request, config, s1, s2, &group, &mut merged);
    }
    merged
}

/// Chooses, for every conflicting worker in `group`, whether to keep its
/// first-half or second-half assignment, maximising the local
/// (min-reliability, summed E[STD]) objective over the tasks the group
/// touches.
fn resolve_group(
    request: &SolveRequest<'_>,
    config: &DncConfig,
    s1: &Assignment,
    s2: &Assignment,
    group: &[WorkerId],
    merged: &mut Assignment,
) {
    let instance = request.instance;
    let empty_priors;
    let priors: &TaskPriors = match request.priors {
        Some(p) => p,
        None => {
            empty_priors = TaskPriors::empty(instance.num_tasks());
            &empty_priors
        }
    };

    // The tasks this group may affect.
    let mut affected: Vec<TaskId> = Vec::new();
    for &w in group {
        for t in [s1.task_of(w), s2.task_of(w)].into_iter().flatten() {
            if !affected.contains(&t) {
                affected.push(t);
            }
        }
    }

    // Base contributions of each affected task (already-merged workers plus
    // banked priors).
    let base: HashMap<TaskId, Vec<Contribution>> = affected
        .iter()
        .map(|&t| {
            let mut cs = merged.contributions_of(t);
            cs.extend_from_slice(priors.of(t));
            (t, cs)
        })
        .collect();

    // The two copies of each group worker.
    let copy_of = |source: &Assignment, w: WorkerId| -> Option<(TaskId, Contribution)> {
        source.task_of(w).and_then(|t| {
            source
                .workers_of(t)
                .iter()
                .find(|(wid, _)| *wid == w)
                .map(|(_, c)| (t, *c))
        })
    };
    type AssignedCopy = Option<(TaskId, Contribution)>;
    let copies: Vec<(AssignedCopy, AssignedCopy)> = group
        .iter()
        .map(|&w| (copy_of(s1, w), copy_of(s2, w)))
        .collect();

    // Evaluate one choice vector (bit i set = keep the second-half copy).
    let evaluate_choice = |mask: usize| -> (f64, f64) {
        let mut contributions: HashMap<TaskId, Vec<Contribution>> = base.clone();
        for (i, copy) in copies.iter().enumerate() {
            let chosen = if mask & (1 << i) != 0 { copy.1 } else { copy.0 };
            if let Some((t, c)) = chosen {
                contributions.entry(t).or_default().push(c);
            }
        }
        let mut min_rel = f64::INFINITY;
        let mut total_std = 0.0;
        for &t in &affected {
            let cs = contributions.get(&t).cloned().unwrap_or_default();
            let confidences: Vec<_> = cs.iter().map(|c| c.confidence).collect();
            let rel = reliability(&confidences);
            if !cs.is_empty() {
                min_rel = min_rel.min(rel);
            } else {
                min_rel = min_rel.min(0.0);
            }
            total_std += rdbsc_model::objective::task_expected_std_of(instance, t, &cs);
        }
        if min_rel == f64::INFINITY {
            min_rel = 1.0;
        }
        (min_rel, total_std)
    };

    let best_mask = if group.len() <= config.max_group_enumeration {
        // Exhaustive enumeration of the 2^k copy choices.
        let options: Vec<(f64, f64)> = (0..(1usize << group.len())).map(evaluate_choice).collect();
        rank_by_dominating_count(&options).unwrap_or(0)
    } else {
        // Greedy per-worker fallback for oversized groups: decide each worker
        // on its own, keeping earlier decisions fixed.
        let mut mask = 0usize;
        for i in 0..group.len() {
            let keep_first = evaluate_choice(mask);
            let keep_second = evaluate_choice(mask | (1 << i));
            if let Some(1) = rank_by_dominating_count(&[keep_first, keep_second]) {
                mask |= 1 << i;
            }
        }
        mask
    };

    for (i, (&w, copy)) in group.iter().zip(copies.iter()).enumerate() {
        let chosen = if best_mask & (1 << i) != 0 { copy.1 } else { copy.0 };
        if let Some((t, c)) = chosen {
            merged
                .assign(t, w, c)
                .expect("conflicting worker is unassigned in the merged strategy until now");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdbsc_geo::{AngleRange, Point};
    use rdbsc_model::{
        compute_valid_pairs, evaluate, Confidence, ProblemInstance, Task, TimeWindow, Worker,
    };

    fn conf(p: f64) -> Confidence {
        Confidence::new(p).unwrap()
    }

    fn grid_instance(m: usize, n: usize, seed: u64) -> ProblemInstance {
        // Deterministic pseudo-random layout without pulling in rand here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let tasks = (0..m)
            .map(|_| {
                Task::new(
                    TaskId(0),
                    Point::new(next(), next()),
                    TimeWindow::new(0.0, 2.0 + 8.0 * next()).unwrap(),
                )
            })
            .collect();
        let workers = (0..n)
            .map(|_| {
                Worker::new(
                    WorkerId(0),
                    Point::new(next(), next()),
                    0.2 + 0.3 * next(),
                    AngleRange::new(next() * std::f64::consts::TAU, 1.0 + 2.0 * next()),
                    conf(0.8 + 0.19 * next()),
                )
                .unwrap()
            })
            .collect();
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn produces_valid_assignments() {
        let instance = grid_instance(40, 60, 1);
        let candidates = compute_valid_pairs(&instance);
        let mut rng = StdRng::seed_from_u64(2);
        let assignment = divide_and_conquer(
            &SolveRequest::new(&instance, &candidates),
            &DncConfig::default(),
            &mut rng,
        );
        assert!(assignment.validate(&instance).is_ok());
        // Every worker that has at least one reachable task should end up
        // assigned: D&C duplicates workers but the merge keeps exactly one copy.
        let connected = candidates
            .by_worker
            .iter()
            .filter(|adj| !adj.is_empty())
            .count();
        assert_eq!(assignment.num_assigned(), connected);
    }

    #[test]
    fn recursion_matches_leaf_solver_on_small_instances() {
        // With gamma larger than m, D&C degenerates into a single sampling call.
        let instance = grid_instance(10, 15, 3);
        let candidates = compute_valid_pairs(&instance);
        let config = DncConfig {
            gamma: 100,
            ..DncConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let direct = sampling(
            &SolveRequest::new(&instance, &candidates),
            &config.sampling,
            &mut StdRng::seed_from_u64(5),
        );
        let dnc = divide_and_conquer(&SolveRequest::new(&instance, &candidates), &config, &mut rng);
        let v1 = evaluate(&instance, &direct);
        let v2 = evaluate(&instance, &dnc);
        assert_eq!(v1.assigned_workers, v2.assigned_workers);
        assert!((v1.total_std - v2.total_std).abs() < 1e-9);
    }

    #[test]
    fn deep_recursion_still_assigns_all_connected_workers() {
        let instance = grid_instance(64, 80, 7);
        let candidates = compute_valid_pairs(&instance);
        let config = DncConfig {
            gamma: 4,
            ..DncConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let assignment =
            divide_and_conquer(&SolveRequest::new(&instance, &candidates), &config, &mut rng);
        assert!(assignment.validate(&instance).is_ok());
        let connected = candidates
            .by_worker
            .iter()
            .filter(|adj| !adj.is_empty())
            .count();
        assert_eq!(assignment.num_assigned(), connected);
    }

    #[test]
    fn merge_resolves_conflicts_to_a_single_copy() {
        // Construct two sub-answers that both assign the same worker.
        let instance = grid_instance(4, 4, 13);
        let candidates = compute_valid_pairs(&instance);
        // find a worker with at least two candidate tasks
        let Some((w, adj)) = candidates
            .by_worker
            .iter()
            .enumerate()
            .find(|(_, adj)| adj.len() >= 2)
        else {
            // degenerate instance; nothing to test
            return;
        };
        let p1 = candidates.pairs[adj[0]];
        let p2 = candidates.pairs[adj[1]];
        let mut s1 = Assignment::for_instance(&instance);
        s1.assign_pair(&p1).unwrap();
        let mut s2 = Assignment::for_instance(&instance);
        s2.assign_pair(&p2).unwrap();
        let request = SolveRequest::new(&instance, &candidates);
        let merged = merge_answers(&request, &DncConfig::default(), &s1, &s2);
        let wid = WorkerId::from(w);
        assert!(merged.task_of(wid).is_some());
        assert_eq!(merged.num_assigned(), 1);
    }

    #[test]
    fn quality_is_close_to_plain_sampling() {
        // D&C trades a little accuracy for scalability; on a medium instance
        // its diversity should be within a reasonable factor of sampling's.
        let instance = grid_instance(60, 80, 21);
        let candidates = compute_valid_pairs(&instance);
        let request = SolveRequest::new(&instance, &candidates);
        let s = sampling(
            &request,
            &SamplingConfig::default(),
            &mut StdRng::seed_from_u64(1),
        );
        let d = divide_and_conquer(&request, &DncConfig::default(), &mut StdRng::seed_from_u64(1));
        let vs = evaluate(&instance, &s);
        let vd = evaluate(&instance, &d);
        assert!(vd.total_std >= 0.5 * vs.total_std);
        assert!(vd.min_reliability >= 0.5 * vs.min_reliability);
    }
}
