//! An exhaustive, exact solver for tiny RDB-SC instances.
//!
//! The RDB-SC problem is NP-hard (Lemma 3.2), so this solver only exists as
//! a *test oracle*: it enumerates every possible task-and-worker assignment
//! (each connected worker independently picks one of its valid tasks),
//! evaluates both objectives for each, and reports the assignment with the
//! best dominating-count rank together with the per-objective optima. The
//! approximation solvers are validated against it on small instances.

use crate::solver::SolveRequest;
use rdbsc_model::objective::{evaluate_with_priors, MinReliabilityScope, TaskPriors};
use rdbsc_model::{rank_by_dominating_count, Assignment};

/// Configuration of the exhaustive solver.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Maximum number of assignments to enumerate; `exact_best` returns
    /// `None` when the population exceeds this bound.
    pub max_assignments: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            max_assignments: 500_000,
        }
    }
}

/// The result of an exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct ExactSummary {
    /// The assignment with the best dominating-count rank.
    pub best: Assignment,
    /// The best achievable minimum reliability over all assignments.
    pub max_min_reliability: f64,
    /// The best achievable total expected diversity over all assignments.
    pub max_total_std: f64,
    /// Number of assignments enumerated.
    pub enumerated: u64,
}

/// Enumerates every assignment and returns the summary, or `None` when the
/// population exceeds `config.max_assignments`.
pub fn exact_best(request: &SolveRequest<'_>, config: &ExactConfig) -> Option<ExactSummary> {
    let instance = request.instance;
    let candidates = request.candidates;
    let empty_priors;
    let priors: &TaskPriors = match request.priors {
        Some(p) => p,
        None => {
            empty_priors = TaskPriors::empty(instance.num_tasks());
            &empty_priors
        }
    };

    let connected: Vec<&Vec<usize>> = candidates
        .by_worker
        .iter()
        .filter(|adj| !adj.is_empty())
        .collect();

    // Population size with overflow guard.
    let mut population: u64 = 1;
    for adj in &connected {
        population = population.checked_mul(adj.len() as u64)?;
        if population > config.max_assignments {
            return None;
        }
    }

    let mut best_assignments: Vec<Assignment> = Vec::new();
    let mut values: Vec<(f64, f64)> = Vec::new();
    let mut max_min_rel = 0.0f64;
    let mut max_total_std = 0.0f64;

    // Mixed-radix counter over the workers' candidate lists.
    let mut choice = vec![0usize; connected.len()];
    let mut enumerated = 0u64;
    loop {
        let mut assignment = Assignment::for_instance(instance);
        for (w, adj) in connected.iter().enumerate() {
            let pair = &candidates.pairs[adj[choice[w]]];
            assignment
                .assign_pair(pair)
                .expect("each worker contributes exactly one pair");
        }
        let value = evaluate_with_priors(
            instance,
            &assignment,
            priors,
            MinReliabilityScope::NonEmptyTasks,
        );
        max_min_rel = max_min_rel.max(value.min_reliability);
        max_total_std = max_total_std.max(value.total_std);
        values.push(value.as_bi_objective());
        best_assignments.push(assignment);
        enumerated += 1;

        // Advance the counter.
        let mut pos = 0;
        loop {
            if pos == connected.len() {
                let best_idx = rank_by_dominating_count(&values).unwrap_or(0);
                return Some(ExactSummary {
                    best: best_assignments.swap_remove(best_idx),
                    max_min_reliability: max_min_rel,
                    max_total_std,
                    enumerated,
                });
            }
            choice[pos] += 1;
            if choice[pos] < connected[pos].len() {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy, GreedyConfig};
    use crate::sampling::{sampling, SamplingConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdbsc_geo::{AngleRange, Point};
    use rdbsc_model::{
        compute_valid_pairs, evaluate, Confidence, ProblemInstance, Task, TaskId, TimeWindow,
        Worker, WorkerId,
    };

    fn conf(p: f64) -> Confidence {
        Confidence::new(p).unwrap()
    }

    fn tiny_instance() -> ProblemInstance {
        let tasks = vec![
            Task::new(
                TaskId(0),
                Point::new(0.3, 0.5),
                TimeWindow::new(0.0, 10.0).unwrap(),
            ),
            Task::new(
                TaskId(1),
                Point::new(0.7, 0.5),
                TimeWindow::new(0.0, 10.0).unwrap(),
            ),
        ];
        let mk = |x: f64, y: f64, p: f64| {
            Worker::new(WorkerId(0), Point::new(x, y), 0.4, AngleRange::full(), conf(p)).unwrap()
        };
        let workers = vec![
            mk(0.1, 0.3, 0.9),
            mk(0.9, 0.7, 0.8),
            mk(0.5, 0.1, 0.7),
            mk(0.5, 0.9, 0.6),
        ];
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn enumerates_the_whole_population() {
        let instance = tiny_instance();
        let candidates = compute_valid_pairs(&instance);
        let summary = exact_best(
            &SolveRequest::new(&instance, &candidates),
            &ExactConfig::default(),
        )
        .expect("tiny instance fits the enumeration budget");
        // 4 workers × 2 tasks each = 16 assignments.
        assert_eq!(summary.enumerated, 16);
        assert!(summary.best.validate(&instance).is_ok());
        assert!(summary.max_min_reliability > 0.0);
        assert!(summary.max_total_std > 0.0);
    }

    #[test]
    fn refuses_oversized_populations() {
        let instance = tiny_instance();
        let candidates = compute_valid_pairs(&instance);
        let result = exact_best(
            &SolveRequest::new(&instance, &candidates),
            &ExactConfig { max_assignments: 4 },
        );
        assert!(result.is_none());
    }

    #[test]
    fn approximation_solvers_stay_close_to_the_optimum() {
        let instance = tiny_instance();
        let candidates = compute_valid_pairs(&instance);
        let request = SolveRequest::new(&instance, &candidates);
        let summary = exact_best(&request, &ExactConfig::default()).unwrap();

        let g = evaluate(&instance, &greedy(&request, &GreedyConfig::default()));
        let mut rng = StdRng::seed_from_u64(9);
        let s = evaluate(
            &instance,
            &sampling(&request, &SamplingConfig::default(), &mut rng),
        );

        // Neither objective can exceed the exact per-objective optima.
        for v in [&g, &s] {
            assert!(v.min_reliability <= summary.max_min_reliability + 1e-9);
            assert!(v.total_std <= summary.max_total_std + 1e-9);
        }
        // And both approaches should reach a sizeable fraction of the optimum
        // on such a tiny instance.
        assert!(g.total_std >= 0.5 * summary.max_total_std);
        assert!(s.total_std >= 0.5 * summary.max_total_std);
        assert!(s.min_reliability >= 0.5 * summary.max_min_reliability);
    }
}
