//! The SAMPLING RDB-SC solver (Section 5, Figure 5).
//!
//! Each sample is one complete task-and-worker assignment obtained by letting
//! every worker pick one of its valid tasks uniformly at random. `K` samples
//! are drawn — with `K` chosen by the (ε, δ) bound of Section 5.2 — and the
//! sample with the best (minimum-reliability, total-diversity) pair under the
//! dominating-count ranking is returned.

use crate::sample_size::certified_sample_size;
use crate::solver::SolveRequest;
use rand::Rng;
use rdbsc_model::objective::{evaluate_with_priors, MinReliabilityScope, TaskPriors};
use rdbsc_model::{rank_by_dominating_count, Assignment};

/// Configuration of the sampling solver.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Rank-error fraction ε of the (ε, δ) guarantee.
    pub epsilon: f64,
    /// Confidence δ of the (ε, δ) guarantee.
    pub delta: f64,
    /// Lower clamp on the number of samples.
    pub min_samples: usize,
    /// Upper clamp on the number of samples (keeps worst-case cost bounded).
    pub max_samples: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.01,
            delta: 0.95,
            min_samples: 16,
            max_samples: 2_048,
        }
    }
}

impl SamplingConfig {
    /// The configuration with the sample count multiplied by `factor`
    /// (used by the G-TRUTH baseline).
    pub fn scaled(&self, factor: usize) -> Self {
        Self {
            epsilon: self.epsilon / factor.max(1) as f64,
            delta: self.delta,
            min_samples: self.min_samples.saturating_mul(factor),
            max_samples: self.max_samples.saturating_mul(factor),
        }
    }

    /// The number of samples this configuration draws for a population of
    /// the given log-size (the certified (ε, δ) bound, clamped into the
    /// configured range).
    pub fn sample_count(&self, ln_population: f64) -> usize {
        certified_sample_size(ln_population, self.epsilon, self.delta, self.max_samples)
            .clamp(self.min_samples.max(1), self.max_samples.max(1))
    }
}

/// Runs the sampling solver.
pub fn sampling<R: Rng + ?Sized>(
    request: &SolveRequest<'_>,
    config: &SamplingConfig,
    rng: &mut R,
) -> Assignment {
    let instance = request.instance;
    let candidates = request.candidates;
    let empty_priors;
    let priors: &TaskPriors = match request.priors {
        Some(p) => p,
        None => {
            empty_priors = TaskPriors::empty(instance.num_tasks());
            &empty_priors
        }
    };

    // Workers that can serve at least one task.
    let connected: Vec<usize> = candidates
        .by_worker
        .iter()
        .enumerate()
        .filter(|(_, adj)| !adj.is_empty())
        .map(|(w, _)| w)
        .collect();
    if connected.is_empty() {
        return Assignment::for_instance(instance);
    }

    let k = config.sample_count(candidates.ln_population());

    let mut best: Option<Assignment> = None;
    let mut values: Vec<(f64, f64)> = Vec::with_capacity(k);
    let mut samples: Vec<Assignment> = Vec::with_capacity(k);

    for _ in 0..k {
        let mut assignment = Assignment::for_instance(instance);
        for &w in &connected {
            let adj = &candidates.by_worker[w];
            let pick = adj[rng.gen_range(0..adj.len())];
            assignment
                .assign_pair(&candidates.pairs[pick])
                .expect("sampled pair references an unassigned worker");
        }
        let value = evaluate_with_priors(
            instance,
            &assignment,
            priors,
            MinReliabilityScope::NonEmptyTasks,
        );
        values.push(value.as_bi_objective());
        samples.push(assignment);
    }

    if let Some(best_idx) = rank_by_dominating_count(&values) {
        best = Some(samples.swap_remove(best_idx));
    }
    best.unwrap_or_else(|| Assignment::for_instance(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdbsc_geo::{AngleRange, Point};
    use rdbsc_model::{
        compute_valid_pairs, evaluate, Confidence, ProblemInstance, Task, TaskId, TimeWindow,
        Worker, WorkerId,
    };

    fn conf(p: f64) -> Confidence {
        Confidence::new(p).unwrap()
    }

    fn instance(m: usize, n: usize) -> ProblemInstance {
        let tasks = (0..m)
            .map(|i| {
                Task::new(
                    TaskId(0),
                    Point::new(0.2 + 0.6 * (i as f64 / m.max(2) as f64), 0.5),
                    TimeWindow::new(0.0, 20.0).unwrap(),
                )
            })
            .collect();
        let workers = (0..n)
            .map(|j| {
                Worker::new(
                    WorkerId(0),
                    Point::new(
                        0.1 + 0.8 * (j as f64 / n.max(2) as f64),
                        0.2 + 0.6 * ((j * 7 % n.max(1)) as f64 / n.max(2) as f64),
                    ),
                    0.3,
                    AngleRange::full(),
                    conf(0.85 + 0.01 * (j % 10) as f64),
                )
                .unwrap()
            })
            .collect();
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn produces_a_valid_full_assignment() {
        let inst = instance(3, 8);
        let candidates = compute_valid_pairs(&inst);
        let mut rng = StdRng::seed_from_u64(1);
        let a = sampling(
            &SolveRequest::new(&inst, &candidates),
            &SamplingConfig::default(),
            &mut rng,
        );
        assert!(a.validate(&inst).is_ok());
        // every connected worker must be assigned
        let connected = candidates
            .by_worker
            .iter()
            .filter(|adj| !adj.is_empty())
            .count();
        assert_eq!(a.num_assigned(), connected);
    }

    #[test]
    fn is_deterministic_for_a_fixed_seed() {
        let inst = instance(3, 8);
        let candidates = compute_valid_pairs(&inst);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = sampling(
                &SolveRequest::new(&inst, &candidates),
                &SamplingConfig::default(),
                &mut rng,
            );
            evaluate(&inst, &a)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.min_reliability, b.min_reliability);
        assert_eq!(a.total_std, b.total_std);
    }

    #[test]
    fn more_samples_do_not_hurt_quality() {
        let inst = instance(4, 12);
        let candidates = compute_valid_pairs(&inst);
        let small = SamplingConfig {
            min_samples: 1,
            max_samples: 1,
            ..Default::default()
        };
        let large = SamplingConfig {
            min_samples: 256,
            max_samples: 256,
            ..Default::default()
        };
        // Average over a few seeds to smooth out randomness.
        let avg = |cfg: &SamplingConfig| {
            let mut total = 0.0;
            for seed in 0..5u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let a = sampling(&SolveRequest::new(&inst, &candidates), cfg, &mut rng);
                total += evaluate(&inst, &a).total_std;
            }
            total / 5.0
        };
        assert!(avg(&large) >= avg(&small) - 1e-9);
    }

    #[test]
    fn empty_candidate_graph_yields_empty_assignment() {
        let inst = instance(1, 1);
        // Make the single task unreachable by shrinking its window.
        let mut inst = inst;
        inst.tasks[0].window = TimeWindow::new(0.0, 1e-6).unwrap();
        inst.tasks[0].location = Point::new(0.99, 0.99);
        let candidates = compute_valid_pairs(&inst);
        let mut rng = StdRng::seed_from_u64(3);
        let a = sampling(
            &SolveRequest::new(&inst, &candidates),
            &SamplingConfig::default(),
            &mut rng,
        );
        assert_eq!(a.num_assigned(), 0);
    }

    #[test]
    fn scaled_config_multiplies_sample_budget() {
        let base = SamplingConfig::default();
        let scaled = base.scaled(10);
        assert_eq!(scaled.max_samples, base.max_samples * 10);
        assert_eq!(scaled.min_samples, base.min_samples * 10);
        assert!(scaled.sample_count(1_000.0) >= base.sample_count(1_000.0));
    }
}
