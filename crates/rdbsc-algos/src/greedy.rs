//! The GREEDY RDB-SC solver (Section 4, Figure 3).
//!
//! In every round the algorithm considers assigning each still-unassigned
//! worker to each of its valid tasks, computes the pair's increase of the
//! (log-form) reliability and of the expected spatial/temporal diversity,
//! discards increase pairs dominated by others (skyline filter), ranks the
//! survivors by the number of pairs they dominate (top-k-dominating score)
//! and commits the best pair. Rounds repeat until no assignable worker
//! remains.
//!
//! Implementation notes:
//!
//! * the reliability increase of a pair is `−ln(1 − pⱼ)` (Section 4.3) and
//!   never changes, so it is computed once per pair;
//! * the diversity increase of a pair only changes when *its task* gains a
//!   worker, so exact increases are cached per pair and invalidated per task
//!   ("epoch" counters) — this is what makes the solver practical at the
//!   paper's scales;
//! * when [`GreedyConfig::use_pruning`] is set, the lower/upper bounds of
//!   Section 4.3 (see [`crate::pruning`]) are used to skip the exact
//!   re-computation for pairs that are provably dominated (Lemma 4.3).

use crate::pruning::delta_std_bounds;
use crate::solver::SolveRequest;
use rdbsc_model::expected::expected_std;
use rdbsc_model::{rank_by_dominating_count, Assignment, Contribution, TaskId};

/// Configuration of the greedy solver.
#[derive(Debug, Clone, Copy)]
pub struct GreedyConfig {
    /// Use the Lemma 4.3 bound-based pruning to avoid exact diversity-increase
    /// computations where possible.
    pub use_pruning: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self { use_pruning: true }
    }
}

/// Runs the greedy solver.
pub fn greedy(request: &SolveRequest<'_>, config: &GreedyConfig) -> Assignment {
    let instance = request.instance;
    let candidates = request.candidates;
    let mut assignment = Assignment::for_instance(instance);

    let num_pairs = candidates.num_pairs();
    if num_pairs == 0 {
        return assignment;
    }

    // Per-task state: current contributions (priors + assigned so far) and
    // the current E[STD]; a per-task epoch invalidates cached pair deltas.
    let m = instance.num_tasks();
    let mut task_contributions: Vec<Vec<Contribution>> = (0..m)
        .map(|i| request.priors_of(TaskId::from(i)).to_vec())
        .collect();
    let mut task_std: Vec<f64> = (0..m)
        .map(|i| {
            let t = &instance.tasks[i];
            expected_std(
                &task_contributions[i],
                t.window,
                t.effective_beta(instance.beta),
            )
        })
        .collect();
    let mut task_epoch: Vec<u64> = vec![0; m];

    // Cached exact ΔSTD per pair, tagged with the epoch it was computed at.
    let mut cached_delta: Vec<Option<(u64, f64)>> = vec![None; num_pairs];
    // Reliability increase per pair is constant.
    let delta_rel: Vec<f64> = candidates
        .pairs
        .iter()
        .map(|p| p.contribution.confidence.log_weight())
        .collect();

    let exact_delta = |pair_idx: usize,
                       task_contributions: &Vec<Vec<Contribution>>,
                       task_std: &Vec<f64>| {
        let pair = &candidates.pairs[pair_idx];
        let ti = pair.task.index();
        let t = &instance.tasks[ti];
        let mut with_new = task_contributions[ti].clone();
        with_new.push(pair.contribution);
        let after = expected_std(&with_new, t.window, t.effective_beta(instance.beta));
        (after - task_std[ti]).max(0.0)
    };

    loop {
        // Collect the candidate pairs of still-unassigned workers.
        let mut live_pairs: Vec<usize> = Vec::new();
        for (w, adj) in candidates.by_worker.iter().enumerate() {
            if adj.is_empty() || !assignment.is_unassigned(rdbsc_model::WorkerId::from(w)) {
                continue;
            }
            live_pairs.extend_from_slice(adj);
        }
        if live_pairs.is_empty() {
            break;
        }

        // Optional Lemma 4.3 pre-filter using cheap bounds: find the largest
        // diversity-increase lower bound among pairs with the maximal
        // reliability increase, and drop pairs whose upper bound falls below
        // it (they can never be the round winner).
        if config.use_pruning && live_pairs.len() > 64 {
            let mut best_lower = f64::NEG_INFINITY;
            let mut max_rel = f64::NEG_INFINITY;
            let bounds: Vec<_> = live_pairs
                .iter()
                .map(|&idx| {
                    let pair = &candidates.pairs[idx];
                    let ti = pair.task.index();
                    let t = &instance.tasks[ti];
                    let b = delta_std_bounds(
                        &task_contributions[ti],
                        pair.contribution,
                        t.window,
                        t.effective_beta(instance.beta),
                    );
                    max_rel = max_rel.max(delta_rel[idx]);
                    b
                })
                .collect();
            for (i, &idx) in live_pairs.iter().enumerate() {
                if delta_rel[idx] >= max_rel - 1e-12 {
                    best_lower = best_lower.max(bounds[i].lower);
                }
            }
            if best_lower > f64::NEG_INFINITY {
                let keep: Vec<usize> = live_pairs
                    .iter()
                    .enumerate()
                    .filter(|(i, &idx)| {
                        // Keep a pair unless it is provably dominated: its
                        // diversity upper bound is below the best lower bound
                        // AND its reliability increase is not above all others.
                        !(bounds[*i].upper < best_lower && delta_rel[idx] < max_rel - 1e-12)
                    })
                    .map(|(_, &idx)| idx)
                    .collect();
                if !keep.is_empty() {
                    live_pairs = keep;
                }
            }
        }

        // Exact increase pairs (ΔR, ΔSTD), using the per-task cache.
        let mut values: Vec<(f64, f64)> = Vec::with_capacity(live_pairs.len());
        for &idx in &live_pairs {
            let ti = candidates.pairs[idx].task.index();
            let delta = match cached_delta[idx] {
                Some((epoch, v)) if epoch == task_epoch[ti] => v,
                _ => {
                    let v = exact_delta(idx, &task_contributions, &task_std);
                    cached_delta[idx] = Some((task_epoch[ti], v));
                    v
                }
            };
            values.push((delta_rel[idx], delta));
        }

        // Rank by dominating count and commit the winner.
        let Some(best_pos) = rank_by_dominating_count(&values) else {
            break;
        };
        let best_idx = live_pairs[best_pos];
        let pair = &candidates.pairs[best_idx];
        assignment
            .assign_pair(pair)
            .expect("candidate pairs reference valid ids and unassigned workers");

        // Update the task's state and bump its epoch.
        let ti = pair.task.index();
        task_contributions[ti].push(pair.contribution);
        let t = &instance.tasks[ti];
        task_std[ti] = expected_std(
            &task_contributions[ti],
            t.window,
            t.effective_beta(instance.beta),
        );
        task_epoch[ti] += 1;
    }

    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbsc_geo::{AngleRange, Point};
    use rdbsc_model::{
        compute_valid_pairs, evaluate, Confidence, ProblemInstance, Task, TimeWindow, Worker,
        WorkerId,
    };
    use std::f64::consts::PI;

    fn conf(p: f64) -> Confidence {
        Confidence::new(p).unwrap()
    }

    /// One task in the middle, four workers approaching from four sides.
    fn cross_instance() -> ProblemInstance {
        let task = Task::new(
            TaskId(0),
            Point::new(0.5, 0.5),
            TimeWindow::new(0.0, 10.0).unwrap(),
        );
        let mk = |x: f64, y: f64, p: f64| {
            Worker::new(WorkerId(0), Point::new(x, y), 0.3, AngleRange::full(), conf(p)).unwrap()
        };
        let workers = vec![
            mk(0.1, 0.5, 0.9),
            mk(0.9, 0.5, 0.8),
            mk(0.5, 0.1, 0.85),
            mk(0.5, 0.9, 0.95),
        ];
        ProblemInstance::new(vec![task], workers, 0.5)
    }

    /// Two tasks, four workers that can reach both.
    fn two_task_instance() -> ProblemInstance {
        let tasks = vec![
            Task::new(
                TaskId(0),
                Point::new(0.4, 0.5),
                TimeWindow::new(0.0, 10.0).unwrap(),
            ),
            Task::new(
                TaskId(1),
                Point::new(0.6, 0.5),
                TimeWindow::new(0.0, 10.0).unwrap(),
            ),
        ];
        let mk = |x: f64, y: f64, p: f64| {
            Worker::new(WorkerId(0), Point::new(x, y), 0.3, AngleRange::full(), conf(p)).unwrap()
        };
        let workers = vec![
            mk(0.1, 0.2, 0.9),
            mk(0.9, 0.8, 0.8),
            mk(0.2, 0.8, 0.85),
            mk(0.8, 0.2, 0.7),
        ];
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn assigns_every_assignable_worker() {
        let instance = cross_instance();
        let candidates = compute_valid_pairs(&instance);
        let assignment = greedy(&SolveRequest::new(&instance, &candidates), &GreedyConfig::default());
        assert_eq!(assignment.num_assigned(), 4);
        assert!(assignment.validate(&instance).is_ok());
        let value = evaluate(&instance, &assignment);
        // All four workers serve the single task.
        assert!(value.min_reliability > 0.99);
        assert!(value.total_std > 0.0);
    }

    #[test]
    fn assigns_all_workers_with_multiple_tasks() {
        let instance = two_task_instance();
        let candidates = compute_valid_pairs(&instance);
        let assignment = greedy(&SolveRequest::new(&instance, &candidates), &GreedyConfig::default());
        assert!(assignment.validate(&instance).is_ok());
        let value = evaluate(&instance, &assignment);
        // Greedy always commits every assignable worker. Note that the paper
        // documents greedy's "bad start-up" behaviour: it tends to pile
        // workers onto tasks that already have workers, so we do NOT require
        // both tasks to be covered here.
        assert!(value.assigned_tasks >= 1);
        assert_eq!(value.assigned_workers, 4);
        assert!(value.total_std > 0.0);
    }

    #[test]
    fn pruning_does_not_change_the_result_on_small_instances() {
        let instance = two_task_instance();
        let candidates = compute_valid_pairs(&instance);
        let with = greedy(
            &SolveRequest::new(&instance, &candidates),
            &GreedyConfig { use_pruning: true },
        );
        let without = greedy(
            &SolveRequest::new(&instance, &candidates),
            &GreedyConfig { use_pruning: false },
        );
        let v1 = evaluate(&instance, &with);
        let v2 = evaluate(&instance, &without);
        assert!((v1.min_reliability - v2.min_reliability).abs() < 1e-9);
        assert!((v1.total_std - v2.total_std).abs() < 1e-9);
    }

    #[test]
    fn empty_candidate_graph_yields_empty_assignment() {
        // A task that expires before any worker can get there.
        let task = Task::new(
            TaskId(0),
            Point::new(0.9, 0.9),
            TimeWindow::new(0.0, 0.01).unwrap(),
        );
        let worker = Worker::new(
            WorkerId(0),
            Point::new(0.1, 0.1),
            0.1,
            AngleRange::full(),
            conf(0.9),
        )
        .unwrap();
        let instance = ProblemInstance::new(vec![task], vec![worker], 0.5);
        let candidates = compute_valid_pairs(&instance);
        assert_eq!(candidates.num_pairs(), 0);
        let assignment = greedy(&SolveRequest::new(&instance, &candidates), &GreedyConfig::default());
        assert_eq!(assignment.num_assigned(), 0);
    }

    #[test]
    fn respects_direction_constraints() {
        // A worker whose cone points away from the only task must stay idle.
        let task = Task::new(
            TaskId(0),
            Point::new(0.9, 0.5),
            TimeWindow::new(0.0, 10.0).unwrap(),
        );
        let towards = Worker::new(
            WorkerId(0),
            Point::new(0.1, 0.5),
            0.3,
            AngleRange::from_bounds(-0.2, 0.2),
            conf(0.9),
        )
        .unwrap();
        let away = Worker::new(
            WorkerId(0),
            Point::new(0.1, 0.5),
            0.3,
            AngleRange::from_bounds(PI - 0.2, PI + 0.2),
            conf(0.9),
        )
        .unwrap();
        let instance = ProblemInstance::new(vec![task], vec![towards, away], 0.5);
        let candidates = compute_valid_pairs(&instance);
        let assignment = greedy(&SolveRequest::new(&instance, &candidates), &GreedyConfig::default());
        assert_eq!(assignment.num_assigned(), 1);
        assert_eq!(assignment.task_of(WorkerId(0)), Some(TaskId(0)));
        assert_eq!(assignment.task_of(WorkerId(1)), None);
    }

    #[test]
    fn priors_steer_the_choice_towards_less_covered_tasks() {
        // Task 0 already has two banked answers from the east; greedy should
        // send the new (western) worker where it adds more diversity.
        let instance = two_task_instance();
        let candidates = compute_valid_pairs(&instance);
        let mut priors = rdbsc_model::TaskPriors::empty(instance.num_tasks());
        priors.add(TaskId(0), Contribution::new(conf(0.95), 0.0, 1.0));
        priors.add(TaskId(0), Contribution::new(conf(0.95), 0.1, 1.5));
        let request = SolveRequest::new(&instance, &candidates).with_priors(&priors);
        let assignment = greedy(&request, &GreedyConfig::default());
        assert!(assignment.validate(&instance).is_ok());
        // Task 1 has nothing yet, so at least one worker must go there.
        assert!(assignment.task_load(TaskId(1)) >= 1);
    }
}
