//! Lower/upper bounds on the expected diversity and on the diversity
//! *increase* of a candidate pair (Section 4.3, Lemma 4.3).
//!
//! Computing the exact expected diversity increase `ΔSTD(tᵢ, wⱼ)` for every
//! candidate pair is the expensive part of the greedy algorithm. The paper
//! derives cheap bounds:
//!
//! * upper bound of `E[STD]`: the deterministic `STD` of the full worker set
//!   (every possible world's diversity is at most that, by monotonicity —
//!   Lemma 4.2);
//! * lower bound of `E[STD]`: the probability that the diversity is non-zero
//!   times the smallest possible non-zero diversity (attained by the closest
//!   pair of rays for SD and by the most lop-sided single arrival for TD).
//!
//! The bounds on the increase follow by differencing
//! (`lb_Δ = lb_after − ub_before`, `ub_Δ = ub_after − lb_before`), and
//! Lemma 4.3 lets the greedy algorithm discard a pair whose upper bound is
//! below another pair's lower bound.

use rdbsc_model::diversity::{entropy_term, spatial_diversity, temporal_diversity};
use rdbsc_model::{Contribution, TimeWindow};
use rdbsc_geo::FULL_TURN;

/// A `[lower, upper]` interval bounding an expected diversity value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityBounds {
    /// Greatest provable lower bound.
    pub lower: f64,
    /// Least provable upper bound.
    pub upper: f64,
}

impl DiversityBounds {
    /// The exact-zero bounds (empty worker set).
    pub fn zero() -> Self {
        Self {
            lower: 0.0,
            upper: 0.0,
        }
    }
}

/// Entropy of a two-part split with fractions `x` and `1 − x`.
fn two_part_entropy(x: f64) -> f64 {
    entropy_term(x) + entropy_term(1.0 - x)
}

/// Probability that at least one of the workers succeeds.
fn prob_at_least_one(contributions: &[Contribution]) -> f64 {
    1.0 - contributions.iter().map(|c| 1.0 - c.p()).product::<f64>()
}

/// Probability that at least two of the workers succeed.
fn prob_at_least_two(contributions: &[Contribution]) -> f64 {
    let none: f64 = contributions.iter().map(|c| 1.0 - c.p()).product();
    let exactly_one: f64 = contributions
        .iter()
        .enumerate()
        .map(|(j, c)| {
            c.p() * contributions
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != j)
                .map(|(_, o)| 1.0 - o.p())
                .product::<f64>()
        })
        .sum();
    (1.0 - none - exactly_one).max(0.0)
}

/// The smallest spatial diversity attainable by any pair of the given rays
/// (the closest pair of angles, which after sorting is an adjacent pair).
fn min_pairwise_sd(contributions: &[Contribution]) -> f64 {
    if contributions.len() < 2 {
        return 0.0;
    }
    let mut angles: Vec<f64> = contributions.iter().map(|c| c.angle).collect();
    angles.sort_by(|a, b| a.partial_cmp(b).expect("angle not NaN"));
    let mut min_gap = f64::INFINITY;
    for i in 0..angles.len() {
        let next = if i + 1 == angles.len() {
            angles[0] + FULL_TURN
        } else {
            angles[i + 1]
        };
        min_gap = min_gap.min(next - angles[i]);
    }
    two_part_entropy(min_gap / FULL_TURN)
}

/// The smallest temporal diversity attainable by any single arrival (the
/// arrival closest to either end of the window).
fn min_single_td(contributions: &[Contribution], window: TimeWindow) -> f64 {
    let duration = window.duration();
    if duration <= 0.0 || contributions.is_empty() {
        return 0.0;
    }
    contributions
        .iter()
        .map(|c| two_part_entropy((window.clamp(c.arrival) - window.start) / duration))
        .fold(f64::INFINITY, f64::min)
}

/// Bounds on `E[STD]` of a worker set.
pub fn expected_std_bounds(
    contributions: &[Contribution],
    window: TimeWindow,
    beta: f64,
) -> DiversityBounds {
    if contributions.is_empty() {
        return DiversityBounds::zero();
    }
    let beta = beta.clamp(0.0, 1.0);
    let angles: Vec<f64> = contributions.iter().map(|c| c.angle).collect();
    let arrivals: Vec<f64> = contributions.iter().map(|c| c.arrival).collect();
    let upper = beta * spatial_diversity(&angles)
        + (1.0 - beta) * temporal_diversity(&arrivals, window);
    let lower = beta * prob_at_least_two(contributions) * min_pairwise_sd(contributions)
        + (1.0 - beta) * prob_at_least_one(contributions) * min_single_td(contributions, window);
    DiversityBounds {
        lower: lower.min(upper),
        upper,
    }
}

/// Bounds on the *increase* of `E[STD]` when adding `new_worker` to a task
/// whose current contribution set is `before`.
///
/// The increase is non-negative (Lemma 4.2), so the lower bound is clamped at
/// zero.
pub fn delta_std_bounds(
    before: &[Contribution],
    new_worker: Contribution,
    window: TimeWindow,
    beta: f64,
) -> DiversityBounds {
    let bounds_before = expected_std_bounds(before, window, beta);
    let mut after: Vec<Contribution> = before.to_vec();
    after.push(new_worker);
    let bounds_after = expected_std_bounds(&after, window, beta);
    DiversityBounds {
        lower: (bounds_after.lower - bounds_before.upper).max(0.0),
        upper: (bounds_after.upper - bounds_before.lower).max(0.0),
    }
}

/// Lemma 4.3: pair A may prune pair B when A's reliability increase is at
/// least B's **and** A's diversity-increase lower bound exceeds B's upper
/// bound.
pub fn dominated_by_bounds(
    delta_rel_a: f64,
    bounds_a: DiversityBounds,
    delta_rel_b: f64,
    bounds_b: DiversityBounds,
) -> bool {
    delta_rel_a >= delta_rel_b && bounds_a.lower > bounds_b.upper
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbsc_model::expected::expected_std;
    use rdbsc_model::Confidence;
    use std::f64::consts::PI;

    fn contribution(p: f64, angle: f64, arrival: f64) -> Contribution {
        Contribution::new(Confidence::new(p).unwrap(), angle, arrival)
    }

    fn window() -> TimeWindow {
        TimeWindow::new(0.0, 10.0).unwrap()
    }

    fn sample_sets() -> Vec<Vec<Contribution>> {
        vec![
            vec![],
            vec![contribution(0.7, 1.0, 5.0)],
            vec![contribution(0.7, 0.0, 2.0), contribution(0.4, PI, 7.0)],
            vec![
                contribution(0.9, 0.1, 1.0),
                contribution(0.5, 2.0, 4.0),
                contribution(0.3, 4.5, 8.0),
                contribution(0.8, 5.5, 9.5),
            ],
            vec![
                contribution(1.0, 0.0, 5.0),
                contribution(1.0, 2.0, 2.0),
                contribution(1.0, 4.0, 8.0),
            ],
        ]
    }

    #[test]
    fn bounds_bracket_the_exact_expectation() {
        for cs in sample_sets() {
            for beta in [0.0, 0.3, 0.7, 1.0] {
                let exact = expected_std(&cs, window(), beta);
                let bounds = expected_std_bounds(&cs, window(), beta);
                assert!(
                    bounds.lower <= exact + 1e-9,
                    "lower bound {} above exact {} (beta={beta}, set={cs:?})",
                    bounds.lower,
                    exact
                );
                assert!(
                    bounds.upper >= exact - 1e-9,
                    "upper bound {} below exact {} (beta={beta}, set={cs:?})",
                    bounds.upper,
                    exact
                );
            }
        }
    }

    #[test]
    fn delta_bounds_bracket_the_exact_increase() {
        let new = contribution(0.6, 3.0, 6.0);
        for cs in sample_sets() {
            for beta in [0.0, 0.5, 1.0] {
                let before = expected_std(&cs, window(), beta);
                let mut after_set = cs.clone();
                after_set.push(new);
                let after = expected_std(&after_set, window(), beta);
                let exact_delta = after - before;
                let bounds = delta_std_bounds(&cs, new, window(), beta);
                assert!(bounds.lower <= exact_delta + 1e-9);
                assert!(bounds.upper >= exact_delta - 1e-9);
                assert!(bounds.lower >= 0.0);
            }
        }
    }

    #[test]
    fn empty_set_has_zero_bounds() {
        let bounds = expected_std_bounds(&[], window(), 0.5);
        assert_eq!(bounds, DiversityBounds::zero());
    }

    #[test]
    fn probability_helpers() {
        let cs = [contribution(0.5, 0.0, 1.0), contribution(0.5, 1.0, 2.0)];
        assert!((prob_at_least_one(&cs) - 0.75).abs() < 1e-12);
        assert!((prob_at_least_two(&cs) - 0.25).abs() < 1e-12);
        assert_eq!(prob_at_least_two(&cs[..1]), 0.0);
    }

    #[test]
    fn pruning_rule_requires_both_conditions() {
        let strong = DiversityBounds { lower: 0.5, upper: 0.8 };
        let weak = DiversityBounds { lower: 0.1, upper: 0.3 };
        assert!(dominated_by_bounds(1.0, strong, 0.5, weak));
        // diversity alone is not enough when the reliability increase is lower
        assert!(!dominated_by_bounds(0.4, strong, 0.5, weak));
        // overlapping diversity bounds prevent pruning
        let overlapping = DiversityBounds { lower: 0.2, upper: 0.9 };
        assert!(!dominated_by_bounds(1.0, weak, 0.5, overlapping));
    }
}
