//! # rdbsc-algos
//!
//! The RDB-SC assignment algorithms:
//!
//! * [`mod@greedy`] — the iterative best-pair greedy of Section 4 (Figure 3),
//!   with the dominance-based pair ranking and the lower/upper-bound pruning
//!   of Section 4.3.
//! * [`mod@sampling`] — the random-sampling solver of Section 5 (Figure 5), with
//!   the (ε, δ) sample-size determination of Section 5.2.
//! * [`dnc`] — the divide-and-conquer solver of Section 6 (Figures 6–9):
//!   `BG_Partition` via balanced 2-means on task locations and `SA_Merge`
//!   with independent/dependent conflicting-worker resolution.
//! * [`gtruth`] — the G-TRUTH baseline of Section 8.1 (divide-and-conquer
//!   with a 10× larger sample size).
//! * [`exact`] — an exhaustive optimal solver for tiny instances, used as a
//!   test oracle.
//! * [`incremental`] — the periodic incremental updating strategy of
//!   Figure 10, used by the platform simulator.
//! * [`baselines`] — prior-work assignment policies (nearest task,
//!   maximum task coverage) used for ablation comparisons.
//!
//! All solvers share the [`SolveRequest`] input (instance, valid-pair graph,
//! optional banked priors) and produce an `Assignment`. Two entry points
//! sit on top:
//!
//! * [`Solver`] — the paper's four approaches as one enum, for harnesses
//!   that sweep strategies;
//! * [`BatchSolver`] — the *sharded* solving interface used by the online
//!   engine: one call per independent spatial shard, safe to invoke from
//!   multiple threads. Every [`Solver`] is a `BatchSolver` that applies
//!   itself to each shard; adaptive implementations pick a strategy per
//!   shard from its size and deadline slack.
//!
//! ## Example
//!
//! Solve a small instance with the paper line-up and compare objectives:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use rdbsc_algos::{SolveRequest, Solver};
//! use rdbsc_geo::{AngleRange, Point};
//! use rdbsc_model::{
//!     compute_valid_pairs, evaluate, Confidence, ProblemInstance, Task, TaskId, TimeWindow,
//!     Worker, WorkerId,
//! };
//!
//! let tasks = vec![
//!     Task::new(TaskId(0), Point::new(0.4, 0.5), TimeWindow::new(0.0, 8.0).unwrap()),
//!     Task::new(TaskId(1), Point::new(0.6, 0.5), TimeWindow::new(0.0, 8.0).unwrap()),
//! ];
//! let workers = (0..4)
//!     .map(|j| {
//!         Worker::new(
//!             WorkerId(j),
//!             Point::new(0.1 + 0.2 * j as f64, 0.3),
//!             0.4,
//!             AngleRange::full(),
//!             Confidence::new(0.9).unwrap(),
//!         )
//!         .unwrap()
//!     })
//!     .collect();
//! let instance = ProblemInstance::new(tasks, workers, 0.5);
//! let candidates = compute_valid_pairs(&instance);
//! let request = SolveRequest::new(&instance, &candidates);
//!
//! for solver in Solver::paper_lineup() {
//!     let mut rng = StdRng::seed_from_u64(1);
//!     let assignment = solver.solve(&request, &mut rng);
//!     let value = evaluate(&instance, &assignment);
//!     assert_eq!(value.assigned_workers, 4, "{} left workers idle", solver.name());
//!     assert!(value.min_reliability > 0.0);
//! }
//! ```

#![deny(missing_docs)]

pub mod baselines;
pub mod dnc;
pub mod exact;
pub mod greedy;
pub mod gtruth;
pub mod incremental;
pub mod pruning;
pub mod sample_size;
pub mod sampling;
pub mod solver;

pub use baselines::{max_task_coverage_assignment, nearest_task_assignment};
pub use dnc::{divide_and_conquer, DncConfig};
pub use exact::{exact_best, ExactConfig};
pub use greedy::{greedy, GreedyConfig};
pub use gtruth::{ground_truth, GroundTruthConfig};
pub use incremental::{IncrementalAssigner, IncrementalConfig, RoundOutcome};
pub use sample_size::{certified_sample_size, determine_sample_size, simple_sample_size};
pub use sampling::{sampling, SamplingConfig};
pub use solver::{BatchSolver, SolveRequest, Solver};
