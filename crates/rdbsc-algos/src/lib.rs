//! # rdbsc-algos
//!
//! The RDB-SC assignment algorithms:
//!
//! * [`greedy`] — the iterative best-pair greedy of Section 4 (Figure 3),
//!   with the dominance-based pair ranking and the lower/upper-bound pruning
//!   of Section 4.3.
//! * [`sampling`] — the random-sampling solver of Section 5 (Figure 5), with
//!   the (ε, δ) sample-size determination of Section 5.2.
//! * [`dnc`] — the divide-and-conquer solver of Section 6 (Figures 6–9):
//!   `BG_Partition` via balanced 2-means on task locations and `SA_Merge`
//!   with independent/dependent conflicting-worker resolution.
//! * [`gtruth`] — the G-TRUTH baseline of Section 8.1 (divide-and-conquer
//!   with a 10× larger sample size).
//! * [`exact`] — an exhaustive optimal solver for tiny instances, used as a
//!   test oracle.
//! * [`incremental`] — the periodic incremental updating strategy of
//!   Figure 10, used by the platform simulator.
//! * [`baselines`] — prior-work assignment policies (nearest task,
//!   maximum task coverage) used for ablation comparisons.
//!
//! All solvers share the [`SolveRequest`] input (instance + valid-pair graph
//! + optional banked priors) and produce an `Assignment`.

pub mod baselines;
pub mod dnc;
pub mod exact;
pub mod greedy;
pub mod gtruth;
pub mod incremental;
pub mod pruning;
pub mod sample_size;
pub mod sampling;
pub mod solver;

pub use baselines::{max_task_coverage_assignment, nearest_task_assignment};
pub use dnc::{divide_and_conquer, DncConfig};
pub use exact::{exact_best, ExactConfig};
pub use greedy::{greedy, GreedyConfig};
pub use gtruth::{ground_truth, GroundTruthConfig};
pub use incremental::{IncrementalAssigner, IncrementalConfig, RoundOutcome};
pub use sample_size::{certified_sample_size, determine_sample_size, simple_sample_size};
pub use sampling::{sampling, SamplingConfig};
pub use solver::{SolveRequest, Solver};
