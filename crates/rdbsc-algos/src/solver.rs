//! Common solver input and a unified solver enum used by the experiment
//! harness.

use crate::dnc::DncConfig;
use crate::greedy::GreedyConfig;
use crate::gtruth::GroundTruthConfig;
use crate::sampling::SamplingConfig;
use rand::rngs::StdRng;
use rand::Rng;
use rdbsc_model::objective::TaskPriors;
use rdbsc_model::{Assignment, BipartiteCandidates, ProblemInstance};

/// The input shared by every RDB-SC solver: the problem instance, the graph
/// of valid task-and-worker pairs, and (for incremental rounds) the
/// contributions each task has already banked.
#[derive(Clone, Copy)]
pub struct SolveRequest<'a> {
    /// The problem instance.
    pub instance: &'a ProblemInstance,
    /// All valid task-and-worker pairs (from `compute_valid_pairs` or the
    /// grid index).
    pub candidates: &'a BipartiteCandidates,
    /// Banked contributions per task (answers already received); `None`
    /// means a fresh, static assignment.
    pub priors: Option<&'a TaskPriors>,
}

impl<'a> SolveRequest<'a> {
    /// A request with no banked priors.
    pub fn new(instance: &'a ProblemInstance, candidates: &'a BipartiteCandidates) -> Self {
        Self {
            instance,
            candidates,
            priors: None,
        }
    }

    /// Sets the banked priors.
    pub fn with_priors(mut self, priors: &'a TaskPriors) -> Self {
        self.priors = Some(priors);
        self
    }

    /// The prior contributions of a task (empty slice when none).
    pub fn priors_of(&self, task: rdbsc_model::TaskId) -> &[rdbsc_model::Contribution] {
        self.priors.map(|p| p.of(task)).unwrap_or(&[])
    }
}

/// The four approaches compared throughout the paper's evaluation.
#[derive(Debug, Clone)]
pub enum Solver {
    /// GREEDY (Section 4).
    Greedy(GreedyConfig),
    /// SAMPLING (Section 5).
    Sampling(SamplingConfig),
    /// D&C — divide-and-conquer with sampling at the leaves (Section 6).
    DivideAndConquer(DncConfig),
    /// G-TRUTH — divide-and-conquer with a 10× sample size (Section 8.1).
    GroundTruth(GroundTruthConfig),
}

impl Solver {
    /// Short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Solver::Greedy(_) => "GREEDY",
            Solver::Sampling(_) => "SAMPLING",
            Solver::DivideAndConquer(_) => "D&C",
            Solver::GroundTruth(_) => "G-TRUTH",
        }
    }

    /// Runs the solver on a request.
    pub fn solve<R: Rng + ?Sized>(&self, request: &SolveRequest<'_>, rng: &mut R) -> Assignment {
        match self {
            Solver::Greedy(cfg) => crate::greedy::greedy(request, cfg),
            Solver::Sampling(cfg) => crate::sampling::sampling(request, cfg, rng),
            Solver::DivideAndConquer(cfg) => crate::dnc::divide_and_conquer(request, cfg, rng),
            Solver::GroundTruth(cfg) => crate::gtruth::ground_truth(request, cfg, rng),
        }
    }

    /// The default line-up compared in the paper's figures.
    pub fn paper_lineup() -> Vec<Solver> {
        vec![
            Solver::Greedy(GreedyConfig::default()),
            Solver::Sampling(SamplingConfig::default()),
            Solver::DivideAndConquer(DncConfig::default()),
            Solver::GroundTruth(GroundTruthConfig::default()),
        ]
    }
}

/// A solver usable for **batched, sharded** solving: given one shard of a
/// partitioned instance, produce that shard's assignment.
///
/// The online engine partitions the live instance into independent spatial
/// shards (connected components of the grid index's cell-reachability
/// relation) and calls `solve_shard` once per shard, potentially from
/// multiple threads — hence the `Sync` bound. Implementations may inspect
/// the shard (its size, its tasks' deadline slack) to pick a strategy per
/// shard; the blanket implementation for [`Solver`] simply applies one fixed
/// algorithm to every shard.
///
/// The trait is object-safe (the RNG is the concrete [`StdRng`]), so engines
/// can hold `Box<dyn BatchSolver>`.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use rdbsc_algos::{BatchSolver, GreedyConfig, SolveRequest, Solver};
/// use rdbsc_geo::{AngleRange, Point};
/// use rdbsc_model::{
///     compute_valid_pairs, Confidence, ProblemInstance, Task, TaskId, TimeWindow, Worker,
///     WorkerId,
/// };
///
/// let task = Task::new(TaskId(0), Point::new(0.5, 0.5), TimeWindow::new(0.0, 10.0).unwrap());
/// let worker = Worker::new(
///     WorkerId(0),
///     Point::new(0.4, 0.4),
///     0.5,
///     AngleRange::full(),
///     Confidence::new(0.9).unwrap(),
/// )
/// .unwrap();
/// let shard = ProblemInstance::new(vec![task], vec![worker], 0.5);
/// let candidates = compute_valid_pairs(&shard);
///
/// // Any `Solver` is a `BatchSolver` applying itself to every shard.
/// let batch: &dyn BatchSolver = &Solver::Greedy(GreedyConfig::default());
/// let assignment = batch.solve_shard(
///     &SolveRequest::new(&shard, &candidates),
///     &mut StdRng::seed_from_u64(1),
/// );
/// assert_eq!(assignment.num_assigned(), 1);
/// ```
pub trait BatchSolver: Sync {
    /// Solves one shard. `request` is the shard's instance, candidate pairs
    /// and (for incremental rounds) banked priors; `rng` is the shard's own
    /// deterministic generator.
    fn solve_shard(&self, request: &SolveRequest<'_>, rng: &mut StdRng) -> Assignment;

    /// Display name for diagnostics, given the shard the name applies to
    /// (adaptive implementations report the strategy they picked).
    fn strategy_name(&self, _request: &SolveRequest<'_>) -> &'static str {
        "BATCH"
    }

    /// Solves one shard and reports the strategy used, in one call.
    ///
    /// Engines that want both should call this instead of
    /// [`strategy_name`](Self::strategy_name) + [`solve_shard`](Self::solve_shard):
    /// adaptive implementations override it so the (possibly costly)
    /// strategy decision runs once per shard.
    fn solve_shard_named(
        &self,
        request: &SolveRequest<'_>,
        rng: &mut StdRng,
    ) -> (&'static str, Assignment) {
        (self.strategy_name(request), self.solve_shard(request, rng))
    }
}

impl BatchSolver for Solver {
    fn solve_shard(&self, request: &SolveRequest<'_>, rng: &mut StdRng) -> Assignment {
        self.solve(request, rng)
    }

    fn strategy_name(&self, _request: &SolveRequest<'_>) -> &'static str {
        self.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_names_match_paper_legends() {
        let names: Vec<&str> = Solver::paper_lineup().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["GREEDY", "SAMPLING", "D&C", "G-TRUTH"]);
    }
}
