//! Common solver input and a unified solver enum used by the experiment
//! harness.

use crate::dnc::DncConfig;
use crate::greedy::GreedyConfig;
use crate::gtruth::GroundTruthConfig;
use crate::sampling::SamplingConfig;
use rand::Rng;
use rdbsc_model::objective::TaskPriors;
use rdbsc_model::{Assignment, BipartiteCandidates, ProblemInstance};

/// The input shared by every RDB-SC solver: the problem instance, the graph
/// of valid task-and-worker pairs, and (for incremental rounds) the
/// contributions each task has already banked.
#[derive(Clone, Copy)]
pub struct SolveRequest<'a> {
    /// The problem instance.
    pub instance: &'a ProblemInstance,
    /// All valid task-and-worker pairs (from `compute_valid_pairs` or the
    /// grid index).
    pub candidates: &'a BipartiteCandidates,
    /// Banked contributions per task (answers already received); `None`
    /// means a fresh, static assignment.
    pub priors: Option<&'a TaskPriors>,
}

impl<'a> SolveRequest<'a> {
    /// A request with no banked priors.
    pub fn new(instance: &'a ProblemInstance, candidates: &'a BipartiteCandidates) -> Self {
        Self {
            instance,
            candidates,
            priors: None,
        }
    }

    /// Sets the banked priors.
    pub fn with_priors(mut self, priors: &'a TaskPriors) -> Self {
        self.priors = Some(priors);
        self
    }

    /// The prior contributions of a task (empty slice when none).
    pub fn priors_of(&self, task: rdbsc_model::TaskId) -> &[rdbsc_model::Contribution] {
        self.priors.map(|p| p.of(task)).unwrap_or(&[])
    }
}

/// The four approaches compared throughout the paper's evaluation.
#[derive(Debug, Clone)]
pub enum Solver {
    /// GREEDY (Section 4).
    Greedy(GreedyConfig),
    /// SAMPLING (Section 5).
    Sampling(SamplingConfig),
    /// D&C — divide-and-conquer with sampling at the leaves (Section 6).
    DivideAndConquer(DncConfig),
    /// G-TRUTH — divide-and-conquer with a 10× sample size (Section 8.1).
    GroundTruth(GroundTruthConfig),
}

impl Solver {
    /// Short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Solver::Greedy(_) => "GREEDY",
            Solver::Sampling(_) => "SAMPLING",
            Solver::DivideAndConquer(_) => "D&C",
            Solver::GroundTruth(_) => "G-TRUTH",
        }
    }

    /// Runs the solver on a request.
    pub fn solve<R: Rng + ?Sized>(&self, request: &SolveRequest<'_>, rng: &mut R) -> Assignment {
        match self {
            Solver::Greedy(cfg) => crate::greedy::greedy(request, cfg),
            Solver::Sampling(cfg) => crate::sampling::sampling(request, cfg, rng),
            Solver::DivideAndConquer(cfg) => crate::dnc::divide_and_conquer(request, cfg, rng),
            Solver::GroundTruth(cfg) => crate::gtruth::ground_truth(request, cfg, rng),
        }
    }

    /// The default line-up compared in the paper's figures.
    pub fn paper_lineup() -> Vec<Solver> {
        vec![
            Solver::Greedy(GreedyConfig::default()),
            Solver::Sampling(SamplingConfig::default()),
            Solver::DivideAndConquer(DncConfig::default()),
            Solver::GroundTruth(GroundTruthConfig::default()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_names_match_paper_legends() {
        let names: Vec<&str> = Solver::paper_lineup().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["GREEDY", "SAMPLING", "D&C", "G-TRUTH"]);
    }
}
