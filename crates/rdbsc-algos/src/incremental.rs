//! The incremental updating strategy (Section 8.1, Figure 10).
//!
//! On a live platform, tasks and workers arrive and leave continuously.
//! Every `t_interval` the platform re-assigns the *available* workers to the
//! *open* tasks, taking into account (a) the answers `A` already received for
//! each task and (b) the workers still travelling under the current
//! assignment `S_c`. The [`IncrementalAssigner`] keeps both pieces of state
//! and exposes one call per update round.

use crate::solver::{SolveRequest, Solver};
use rand::Rng;
use rdbsc_model::objective::{evaluate_with_priors, MinReliabilityScope, TaskPriors};
use rdbsc_model::valid_pairs::{BipartiteCandidates, ValidPair};
use rdbsc_model::{Assignment, Contribution, ObjectiveValue, ProblemInstance, TaskId, WorkerId};

/// Configuration of the incremental assigner.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Solver used in each update round.
    pub solver: Solver,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            solver: Solver::Sampling(crate::sampling::SamplingConfig::default()),
        }
    }
}

/// What happened in one update round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The pairs newly committed in this round.
    pub new_pairs: Vec<ValidPair>,
    /// The objective value of the platform state after the round (banked
    /// answers + en-route workers + new assignments).
    pub objective: ObjectiveValue,
}

/// Stateful incremental assigner: banked answers per task plus the set of
/// workers currently travelling under the standing assignment `S_c`.
#[derive(Debug, Clone)]
pub struct IncrementalAssigner {
    config: IncrementalConfig,
    /// Answers already received, per task.
    banked: TaskPriors,
    /// The standing assignment (workers en route).
    committed: Assignment,
}

impl IncrementalAssigner {
    /// Creates an assigner for a platform with `num_tasks` tasks and
    /// `num_workers` workers (dense, stable ids).
    pub fn new(num_tasks: usize, num_workers: usize, config: IncrementalConfig) -> Self {
        Self {
            config,
            banked: TaskPriors::empty(num_tasks),
            committed: Assignment::new(num_tasks, num_workers),
        }
    }

    /// The banked answers.
    pub fn banked(&self) -> &TaskPriors {
        &self.banked
    }

    /// The standing assignment (workers currently en route).
    pub fn committed(&self) -> &Assignment {
        &self.committed
    }

    /// Is the worker currently travelling under the standing assignment?
    pub fn is_committed(&self, worker: WorkerId) -> bool {
        self.committed.task_of(worker).is_some()
    }

    /// Records that a worker completed its task and produced an answer; the
    /// worker becomes available again and its contribution is banked.
    pub fn record_answer(&mut self, worker: WorkerId, contribution: Contribution) {
        if let Some(task) = self.committed.unassign(worker) {
            self.banked.add(task, contribution);
        }
    }

    /// Records that a worker gave up (rejected the request, missed the
    /// deadline, …); the worker becomes available again and nothing is
    /// banked.
    pub fn release_worker(&mut self, worker: WorkerId) {
        self.committed.unassign(worker);
    }

    /// Records an answer for a task without going through a committed worker
    /// (e.g. a spontaneous submission); only the banked priors change.
    pub fn bank_contribution(&mut self, task: TaskId, contribution: Contribution) {
        self.banked.add(task, contribution);
    }

    /// Runs one update round (lines 2–7 of Figure 10): assigns the available
    /// workers among `candidates` to open tasks, considering the banked
    /// answers and the standing assignment. Newly assigned workers join the
    /// standing assignment.
    ///
    /// `candidates` must only contain pairs for *open* tasks; pairs of
    /// workers that are still travelling are ignored.
    pub fn assign_round<R: Rng + ?Sized>(
        &mut self,
        instance: &ProblemInstance,
        candidates: &BipartiteCandidates,
        rng: &mut R,
    ) -> RoundOutcome {
        // Filter out pairs whose worker is still committed.
        let mut available = BipartiteCandidates::with_capacity(
            instance.num_tasks(),
            instance.num_workers(),
        );
        for pair in &candidates.pairs {
            if !self.is_committed(pair.worker) {
                available.push(*pair);
            }
        }

        // The solver must see banked answers *and* en-route workers as prior
        // contributions of their tasks.
        let mut priors = self.banked.clone();
        for (task, _, contribution) in self.committed.iter() {
            priors.add(task, contribution);
        }

        let request = SolveRequest::new(instance, &available).with_priors(&priors);
        let round_assignment = self.config.solver.solve(&request, rng);

        let mut new_pairs = Vec::new();
        for (task, worker, contribution) in round_assignment.iter() {
            if self
                .committed
                .assign(task, worker, contribution)
                .is_ok()
            {
                new_pairs.push(ValidPair {
                    task,
                    worker,
                    contribution,
                });
            }
        }

        let objective = evaluate_with_priors(
            instance,
            &self.committed,
            &self.banked,
            MinReliabilityScope::NonEmptyTasks,
        );
        RoundOutcome {
            new_pairs,
            objective,
        }
    }

    /// The objective of the current platform state.
    pub fn current_objective(&self, instance: &ProblemInstance) -> ObjectiveValue {
        evaluate_with_priors(
            instance,
            &self.committed,
            &self.banked,
            MinReliabilityScope::NonEmptyTasks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdbsc_geo::{AngleRange, Point};
    use rdbsc_model::{
        compute_valid_pairs, Confidence, Task, TimeWindow, Worker,
    };

    fn conf(p: f64) -> Confidence {
        Confidence::new(p).unwrap()
    }

    fn instance() -> ProblemInstance {
        let tasks = vec![
            Task::new(
                TaskId(0),
                Point::new(0.3, 0.5),
                TimeWindow::new(0.0, 20.0).unwrap(),
            ),
            Task::new(
                TaskId(1),
                Point::new(0.7, 0.5),
                TimeWindow::new(0.0, 20.0).unwrap(),
            ),
        ];
        let workers = (0..6)
            .map(|j| {
                Worker::new(
                    WorkerId(0),
                    Point::new(0.1 + 0.15 * j as f64, 0.2),
                    0.3,
                    AngleRange::full(),
                    conf(0.9),
                )
                .unwrap()
            })
            .collect();
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn first_round_assigns_available_workers() {
        let inst = instance();
        let candidates = compute_valid_pairs(&inst);
        let mut assigner =
            IncrementalAssigner::new(inst.num_tasks(), inst.num_workers(), IncrementalConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = assigner.assign_round(&inst, &candidates, &mut rng);
        assert_eq!(outcome.new_pairs.len(), 6);
        assert_eq!(assigner.committed().num_assigned(), 6);
        assert!(outcome.objective.min_reliability > 0.0);
    }

    #[test]
    fn committed_workers_are_not_reassigned() {
        let inst = instance();
        let candidates = compute_valid_pairs(&inst);
        let mut assigner =
            IncrementalAssigner::new(inst.num_tasks(), inst.num_workers(), IncrementalConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let first = assigner.assign_round(&inst, &candidates, &mut rng);
        assert!(!first.new_pairs.is_empty());
        // Second round without any completion: nothing new to assign.
        let second = assigner.assign_round(&inst, &candidates, &mut rng);
        assert!(second.new_pairs.is_empty());
    }

    #[test]
    fn completions_free_workers_and_bank_answers() {
        let inst = instance();
        let candidates = compute_valid_pairs(&inst);
        let mut assigner =
            IncrementalAssigner::new(inst.num_tasks(), inst.num_workers(), IncrementalConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let first = assigner.assign_round(&inst, &candidates, &mut rng);
        let done = first.new_pairs[0];
        assigner.record_answer(done.worker, done.contribution);
        assert!(!assigner.is_committed(done.worker));
        assert_eq!(assigner.banked().of(done.task).len(), 1);
        // The freed worker can be assigned again in the next round.
        let second = assigner.assign_round(&inst, &candidates, &mut rng);
        assert_eq!(second.new_pairs.len(), 1);
        assert_eq!(second.new_pairs[0].worker, done.worker);
        // The banked answer keeps counting towards the objective.
        assert!(second.objective.total_std >= 0.0);
        assert!(second.objective.assigned_tasks >= 1);
    }

    #[test]
    fn released_workers_do_not_bank_answers() {
        let inst = instance();
        let candidates = compute_valid_pairs(&inst);
        let mut assigner =
            IncrementalAssigner::new(inst.num_tasks(), inst.num_workers(), IncrementalConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let first = assigner.assign_round(&inst, &candidates, &mut rng);
        let dropped = first.new_pairs[0];
        assigner.release_worker(dropped.worker);
        assert!(!assigner.is_committed(dropped.worker));
        assert_eq!(assigner.banked().of(dropped.task).len(), 0);
    }

    #[test]
    fn objective_is_monotone_over_rounds_with_completions() {
        let inst = instance();
        let candidates = compute_valid_pairs(&inst);
        let mut assigner =
            IncrementalAssigner::new(inst.num_tasks(), inst.num_workers(), IncrementalConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let mut last_std = 0.0;
        for round in 0..4 {
            let outcome = assigner.assign_round(&inst, &candidates, &mut rng);
            assert!(
                outcome.objective.total_std >= last_std - 1e-9,
                "round {round}: diversity regressed"
            );
            last_std = outcome.objective.total_std;
            // Complete every en-route worker so the next round can reassign.
            let travelling: Vec<_> = assigner.committed().iter().collect();
            for (_, worker, contribution) in travelling {
                assigner.record_answer(worker, contribution);
            }
        }
        assert!(last_std > 0.0);
    }
}
