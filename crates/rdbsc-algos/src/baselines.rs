//! Baseline assignment policies from the prior spatial-crowdsourcing
//! literature, used for ablation comparisons.
//!
//! The related-work section of the paper contrasts RDB-SC with earlier
//! server-assigned-task systems whose objective is simply to **maximise the
//! number of assigned (completed) tasks** — e.g. GeoCrowd \[20\] — and with
//! naive policies such as sending each worker to its nearest reachable task.
//! Neither optimises reliability or diversity. This module implements both so
//! the benefit of the RDB-SC objectives can be quantified (see the
//! `quickstart`/`landmark_photos` examples and the ablation tests).

use crate::solver::SolveRequest;
use rdbsc_model::{Assignment, TaskId, WorkerId};
use std::collections::HashSet;

/// Assigns every worker to its nearest reachable task (earliest arrival
/// time), ignoring reliability and diversity entirely.
pub fn nearest_task_assignment(request: &SolveRequest<'_>) -> Assignment {
    let instance = request.instance;
    let candidates = request.candidates;
    let mut assignment = Assignment::for_instance(instance);
    for w in 0..instance.num_workers() {
        let worker = WorkerId::from(w);
        let best = candidates
            .pairs_of_worker(worker)
            .min_by(|a, b| {
                a.contribution
                    .arrival
                    .partial_cmp(&b.contribution.arrival)
                    .expect("arrival times are not NaN")
            })
            .copied();
        if let Some(pair) = best {
            assignment
                .assign_pair(&pair)
                .expect("each worker is assigned at most once");
        }
    }
    assignment
}

/// Greedy maximum-task-coverage assignment (the GeoCrowd-style objective):
/// maximise the number of *distinct tasks* that receive at least one worker,
/// then assign the remaining workers arbitrarily (earliest arrival first).
///
/// This is a 1-pass greedy matching: workers are scanned in increasing degree
/// order (workers with fewer options first) and each takes an uncovered task
/// if it can, which is the standard heuristic for maximum bipartite coverage.
pub fn max_task_coverage_assignment(request: &SolveRequest<'_>) -> Assignment {
    let instance = request.instance;
    let candidates = request.candidates;
    let mut assignment = Assignment::for_instance(instance);
    let mut covered: HashSet<TaskId> = HashSet::new();

    // Workers with the fewest candidate tasks choose first.
    let mut workers: Vec<WorkerId> = (0..instance.num_workers())
        .map(WorkerId::from)
        .filter(|w| candidates.degree(*w) > 0)
        .collect();
    workers.sort_by_key(|w| candidates.degree(*w));

    // Pass 1: cover as many distinct tasks as possible.
    let mut leftover: Vec<WorkerId> = Vec::new();
    for &w in &workers {
        let uncovered = candidates
            .pairs_of_worker(w)
            .filter(|p| !covered.contains(&p.task))
            .min_by(|a, b| {
                a.contribution
                    .arrival
                    .partial_cmp(&b.contribution.arrival)
                    .expect("arrival times are not NaN")
            })
            .copied();
        match uncovered {
            Some(pair) => {
                covered.insert(pair.task);
                assignment
                    .assign_pair(&pair)
                    .expect("worker is unassigned in pass 1");
            }
            None => leftover.push(w),
        }
    }

    // Pass 2: the rest pile onto already-covered tasks (earliest arrival).
    for w in leftover {
        if let Some(pair) = candidates
            .pairs_of_worker(w)
            .min_by(|a, b| {
                a.contribution
                    .arrival
                    .partial_cmp(&b.contribution.arrival)
                    .expect("arrival times are not NaN")
            })
            .copied()
        {
            assignment
                .assign_pair(&pair)
                .expect("worker is unassigned in pass 2");
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy, GreedyConfig};
    use rdbsc_geo::{AngleRange, Point};
    use rdbsc_model::{
        compute_valid_pairs, evaluate, Confidence, ProblemInstance, Task, TimeWindow, Worker,
    };

    fn conf(p: f64) -> Confidence {
        Confidence::new(p).unwrap()
    }

    fn instance(m: usize, n: usize, seed: u64) -> ProblemInstance {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let tasks = (0..m)
            .map(|_| {
                Task::new(
                    TaskId(0),
                    Point::new(next(), next()),
                    TimeWindow::new(0.0, 5.0 + 5.0 * next()).unwrap(),
                )
            })
            .collect();
        let workers = (0..n)
            .map(|_| {
                Worker::new(
                    WorkerId(0),
                    Point::new(next(), next()),
                    0.2 + 0.2 * next(),
                    AngleRange::full(),
                    conf(0.8 + 0.15 * next()),
                )
                .unwrap()
            })
            .collect();
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn nearest_task_assignment_is_valid_and_complete() {
        let inst = instance(10, 20, 1);
        let candidates = compute_valid_pairs(&inst);
        let request = SolveRequest::new(&inst, &candidates);
        let a = nearest_task_assignment(&request);
        assert!(a.validate(&inst).is_ok());
        let connected = candidates
            .by_worker
            .iter()
            .filter(|adj| !adj.is_empty())
            .count();
        assert_eq!(a.num_assigned(), connected);
    }

    #[test]
    fn max_coverage_covers_at_least_as_many_tasks_as_nearest() {
        for seed in 0..5u64 {
            let inst = instance(15, 15, seed);
            let candidates = compute_valid_pairs(&inst);
            let request = SolveRequest::new(&inst, &candidates);
            let nearest = nearest_task_assignment(&request);
            let coverage = max_task_coverage_assignment(&request);
            assert!(coverage.validate(&inst).is_ok());
            let covered_by_nearest = nearest.non_empty_tasks().count();
            let covered_by_coverage = coverage.non_empty_tasks().count();
            assert!(
                covered_by_coverage >= covered_by_nearest,
                "seed {seed}: coverage baseline covered {covered_by_coverage} < nearest {covered_by_nearest}"
            );
        }
    }

    #[test]
    fn rdbsc_greedy_beats_the_baselines_on_diversity() {
        // The whole point of the paper: optimising for task count or distance
        // leaves diversity on the table. Averaged over seeds for robustness.
        let mut baseline_best = 0.0;
        let mut rdbsc_total = 0.0;
        for seed in 10..15u64 {
            let inst = instance(8, 40, seed);
            let candidates = compute_valid_pairs(&inst);
            let request = SolveRequest::new(&inst, &candidates);
            let nearest = evaluate(&inst, &nearest_task_assignment(&request)).total_std;
            let coverage = evaluate(&inst, &max_task_coverage_assignment(&request)).total_std;
            baseline_best += nearest.max(coverage);
            rdbsc_total += evaluate(&inst, &greedy(&request, &GreedyConfig::default())).total_std;
        }
        assert!(
            rdbsc_total > baseline_best,
            "RDB-SC greedy ({rdbsc_total:.2}) should beat the best baseline ({baseline_best:.2})"
        );
    }

    #[test]
    fn baselines_handle_empty_candidate_graphs() {
        let mut inst = instance(1, 1, 3);
        inst.tasks[0].window = TimeWindow::new(0.0, 1e-9).unwrap();
        inst.tasks[0].location = Point::new(0.99, 0.99);
        inst.workers[0].location = Point::new(0.0, 0.0);
        inst.workers[0].speed = 0.001;
        let candidates = compute_valid_pairs(&inst);
        let request = SolveRequest::new(&inst, &candidates);
        assert_eq!(nearest_task_assignment(&request).num_assigned(), 0);
        assert_eq!(max_task_coverage_assignment(&request).num_assigned(), 0);
    }
}
