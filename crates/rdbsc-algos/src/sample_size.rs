//! Determination of the sampling solver's sample size `K̂` (Section 5.2).
//!
//! The sampling algorithm draws `K` random task-and-worker assignments from
//! the population of all `N = Π deg(wⱼ)` possible assignments and keeps the
//! best. Section 5.2 asks for the smallest `K` such that the rank of the best
//! sample lands in the top `ε` fraction of the population with probability
//! greater than `δ`, and derives the condition `F(K) ≤ 1 − δ` with
//!
//! ```text
//! F(K) = (1 − p)^N · (p / (1 − p))^K · C(M, K),   M = (1 − ε)·N,  p = 1/N,
//! ```
//!
//! solved by binary search over `K` (Eq. 15 provides the lower end of the
//! bracket). For the instance sizes of the paper `N` is astronomically large
//! (`ln N` in the thousands), so this module evaluates `ln F(K)` with
//! log-gamma arithmetic and switches to the `N → ∞` limit
//! `ln F(K) ≈ −1 + K·ln(1 − ε) − ln K!` when `N` overflows `f64`.
//!
//! The module also provides the classical quantile bound
//! `K = ⌈ln(1 − δ) / ln(1 − ε)⌉` (the probability that all `K` independent
//! samples miss the top `ε` fraction is `(1 − ε)^K`), which is what the
//! binary-searched bound converges to for large populations and which we use
//! as a sanity cross-check in tests.

/// Natural log of the gamma function, via the Lanczos approximation
/// (sufficient accuracy for sample-size computations).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(m, k)` for real `m` (via log-gamma).
fn ln_choose(m: f64, k: f64) -> f64 {
    if k < 0.0 || k > m {
        return f64::NEG_INFINITY;
    }
    ln_gamma(m + 1.0) - ln_gamma(k + 1.0) - ln_gamma(m - k + 1.0)
}

/// `ln F(K)` for a population of `N = exp(ln_population)` assignments.
fn ln_f(k: f64, ln_population: f64, epsilon: f64) -> f64 {
    let ln_one_minus_eps = (1.0 - epsilon).ln();
    if ln_population > 600.0 {
        // N is far beyond f64 range; use the N → ∞ limit:
        //   (1−p)^N → e^{-1},  (p/(1−p))^K·C(M,K) → ((1−ε)·N·p)^K / K! = (1−ε)^K / K!.
        return -1.0 + k * ln_one_minus_eps - ln_gamma(k + 1.0);
    }
    let n = ln_population.exp().max(2.0);
    let p = 1.0 / n;
    let m = (1.0 - epsilon) * n;
    (n) * (1.0 - p).ln() + k * (p / (1.0 - p)).ln() + ln_choose(m, k)
}

/// The classical quantile bound: smallest `K` with `(1 − ε)^K ≤ 1 − δ`.
pub fn simple_sample_size(epsilon: f64, delta: f64) -> usize {
    let epsilon = epsilon.clamp(1e-6, 0.999_999);
    let delta = delta.clamp(0.0, 0.999_999);
    let k = ((1.0 - delta).ln() / (1.0 - epsilon).ln()).ceil();
    (k.max(1.0)) as usize
}

/// Determines the minimum sample size `K̂` such that the best of `K̂`
/// independent samples ranks in the top `ε` fraction of the population with
/// probability greater than `δ` (Section 5.2), i.e. the smallest `K` with
/// `F(K) ≤ 1 − δ`.
///
/// * `ln_population` — natural log of the population size
///   `N = Π deg(wⱼ)` (see `BipartiteCandidates::ln_population`).
/// * The result is clamped into `[1, max_k]`.
pub fn determine_sample_size(
    ln_population: f64,
    epsilon: f64,
    delta: f64,
    max_k: usize,
) -> usize {
    let epsilon = epsilon.clamp(1e-6, 0.999_999);
    let delta = delta.clamp(0.0, 0.999_999);
    let max_k = max_k.max(1);
    if ln_population <= 0.0 {
        // Population of one assignment (or none): a single sample is exact.
        return 1;
    }
    let target = (1.0 - delta).ln();
    // F(K) is decreasing in K beyond the Eq. 15 threshold; binary search for
    // the smallest K with ln F(K) <= ln(1 - δ).
    let mut lo = 1usize;
    let mut hi = max_k;
    if ln_f(hi as f64, ln_population, epsilon) > target {
        // Even max_k samples cannot certify the bound; return the cap.
        return max_k;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if ln_f(mid as f64, ln_population, epsilon) <= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo.clamp(1, max_k)
}

/// Sample size actually used by the sampling solver: the larger of the
/// paper's binary-searched bound and the classical quantile bound, clamped to
/// `[1, max_k]`.
///
/// In the large-population limit the paper's `F(K)` decays like
/// `e^{-1}·(1 − ε)^K / K!`, which is much faster than the true probability
/// `(1 − ε)^K` that `K` independent uniform samples all miss the top `ε`
/// fraction; taking the maximum of the two bounds keeps the paper's
/// procedure while restoring the (ε, δ) guarantee under uniform sampling
/// (verified empirically in the tests).
pub fn certified_sample_size(
    ln_population: f64,
    epsilon: f64,
    delta: f64,
    max_k: usize,
) -> usize {
    let paper = determine_sample_size(ln_population, epsilon, delta, max_k);
    let classical = simple_sample_size(epsilon, delta);
    paper.max(classical).clamp(1, max_k.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // ln Γ(n+1) = ln n!
        let facts: [(f64, f64); 5] = [
            (1.0, 0.0),
            (2.0, 0.0),
            (5.0, 24.0f64.ln()),
            (6.0, 120.0f64.ln()),
            (11.0, 3_628_800.0f64.ln()),
        ];
        for (x, expected) in facts {
            assert!(
                (ln_gamma(x) - expected).abs() < 1e-9,
                "lnΓ({x}) = {} vs {expected}",
                ln_gamma(x)
            );
        }
    }

    #[test]
    fn simple_bound_behaviour() {
        // Tighter ε or higher δ require more samples.
        assert!(simple_sample_size(0.01, 0.95) > simple_sample_size(0.1, 0.95));
        assert!(simple_sample_size(0.05, 0.99) > simple_sample_size(0.05, 0.9));
        // Known value: ln(0.05)/ln(0.99) ≈ 298.1 → 299.
        assert_eq!(simple_sample_size(0.01, 0.95), 299);
    }

    #[test]
    fn paper_bound_is_looser_than_classical_for_large_populations() {
        // ln N = 5000 (astronomically large population). In this limit the
        // paper's F(K) decays factorially, so its bound is (much) smaller
        // than the classical quantile bound; the certified size takes the
        // maximum of the two.
        let paper = determine_sample_size(5_000.0, 0.01, 0.95, 100_000);
        let simple = simple_sample_size(0.01, 0.95);
        let certified = certified_sample_size(5_000.0, 0.01, 0.95, 100_000);
        assert!(paper >= 1);
        assert!(paper <= simple);
        assert_eq!(certified, simple.max(paper));
    }

    #[test]
    fn monotone_in_epsilon_and_delta() {
        let base = determine_sample_size(1_000.0, 0.05, 0.9, 100_000);
        assert!(determine_sample_size(1_000.0, 0.01, 0.9, 100_000) >= base);
        assert!(determine_sample_size(1_000.0, 0.05, 0.99, 100_000) >= base);
    }

    #[test]
    fn small_populations_need_few_samples() {
        // ln N = ln(8): a population of 8 assignments.
        let k = determine_sample_size(8.0f64.ln(), 0.1, 0.9, 1_000);
        assert!(k <= 32, "tiny population should need few samples, got {k}");
        assert_eq!(determine_sample_size(0.0, 0.1, 0.9, 1_000), 1);
    }

    #[test]
    fn respects_the_cap() {
        assert_eq!(certified_sample_size(5_000.0, 1e-6, 0.999, 50), 50);
        assert!(determine_sample_size(5_000.0, 0.01, 0.95, 100_000) <= 100_000);
    }

    #[test]
    fn certified_size_holds_empirically_for_small_population() {
        // Brute-force check of the (ε, δ) guarantee on a small synthetic
        // population: with K samples drawn uniformly, the best sample should
        // land in the top ε·N with probability > δ.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 1_000usize;
        let epsilon = 0.05;
        let delta = 0.9;
        let k = certified_sample_size((n as f64).ln(), epsilon, delta, 10_000);
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 2_000;
        let mut hits = 0;
        for _ in 0..trials {
            let best = (0..k).map(|_| rng.gen_range(0..n)).max().unwrap();
            if best >= ((1.0 - epsilon) * n as f64) as usize {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!(rate > delta - 0.05, "empirical success rate {rate} below δ={delta}");
    }
}
