//! The G-TRUTH baseline (Section 8.1).
//!
//! The RDB-SC problem is NP-hard, so the paper does not compare against the
//! true optimum at scale. Instead it uses the divide-and-conquer solver with
//! the embedded sampling budget enlarged by a factor of ten as a sub-optimal
//! but strong reference ("G-TRUTH"). This module reproduces that baseline.

use crate::dnc::{divide_and_conquer, DncConfig};
use crate::solver::SolveRequest;
use rand::Rng;
use rdbsc_model::Assignment;

/// Configuration of the G-TRUTH baseline.
#[derive(Debug, Clone, Copy)]
pub struct GroundTruthConfig {
    /// The divide-and-conquer configuration to start from.
    pub dnc: DncConfig,
    /// Multiplier applied to the sampling budget (the paper uses 10).
    pub sample_factor: usize,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        Self {
            dnc: DncConfig::default(),
            sample_factor: 10,
        }
    }
}

/// Runs the G-TRUTH baseline: divide-and-conquer with a `sample_factor`×
/// larger sampling budget at the leaves.
pub fn ground_truth<R: Rng + ?Sized>(
    request: &SolveRequest<'_>,
    config: &GroundTruthConfig,
    rng: &mut R,
) -> Assignment {
    let mut dnc = config.dnc;
    dnc.sampling = dnc.sampling.scaled(config.sample_factor.max(1));
    divide_and_conquer(request, &dnc, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdbsc_geo::{AngleRange, Point};
    use rdbsc_model::{
        compute_valid_pairs, evaluate, Confidence, ProblemInstance, Task, TaskId, TimeWindow,
        Worker, WorkerId,
    };

    fn instance() -> ProblemInstance {
        let tasks = (0..12)
            .map(|i| {
                Task::new(
                    TaskId(0),
                    Point::new(0.1 + 0.07 * i as f64, 0.5),
                    TimeWindow::new(0.0, 10.0).unwrap(),
                )
            })
            .collect();
        let workers = (0..20)
            .map(|j| {
                Worker::new(
                    WorkerId(0),
                    Point::new(0.05 * j as f64, 0.3 + 0.02 * j as f64),
                    0.3,
                    AngleRange::full(),
                    Confidence::new(0.85).unwrap(),
                )
                .unwrap()
            })
            .collect();
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn ground_truth_is_valid_and_at_least_as_good_as_default_dnc_on_average() {
        let inst = instance();
        let candidates = compute_valid_pairs(&inst);
        let request = SolveRequest::new(&inst, &candidates);
        let mut gt_total = 0.0;
        let mut dnc_total = 0.0;
        for seed in 0..4u64 {
            let gt = ground_truth(
                &request,
                &GroundTruthConfig::default(),
                &mut StdRng::seed_from_u64(seed),
            );
            assert!(gt.validate(&inst).is_ok());
            let dc = divide_and_conquer(
                &request,
                &DncConfig::default(),
                &mut StdRng::seed_from_u64(seed),
            );
            gt_total += evaluate(&inst, &gt).total_std;
            dnc_total += evaluate(&inst, &dc).total_std;
        }
        assert!(
            gt_total >= dnc_total * 0.95,
            "G-TRUTH ({gt_total}) should not be clearly worse than D&C ({dnc_total})"
        );
    }

    #[test]
    fn sample_factor_scales_the_leaf_budget() {
        let config = GroundTruthConfig::default();
        let scaled = config.dnc.sampling.scaled(config.sample_factor);
        assert_eq!(
            scaled.max_samples,
            config.dnc.sampling.max_samples * config.sample_factor
        );
    }
}
