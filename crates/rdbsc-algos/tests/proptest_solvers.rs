//! Property-based tests over randomly generated RDB-SC instances: every
//! solver must always produce a feasible assignment, assign every connected
//! worker, and never beat the exact per-objective optima on instances small
//! enough to enumerate.

use proptest::prelude::*;
use std::f64::consts::TAU;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdbsc_algos::{
    divide_and_conquer, exact_best, greedy, max_task_coverage_assignment,
    nearest_task_assignment, sampling, DncConfig, ExactConfig, GreedyConfig, SamplingConfig,
    SolveRequest,
};
use rdbsc_geo::{AngleRange, Point};
use rdbsc_model::{
    compute_valid_pairs, evaluate, Confidence, ProblemInstance, Task, TaskId, TimeWindow, Worker,
    WorkerId,
};

/// Strategy generating a small random instance.
fn instance_strategy(
    max_tasks: usize,
    max_workers: usize,
) -> impl Strategy<Value = ProblemInstance> {
    let tasks = proptest::collection::vec(
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..5.0, 0.1f64..5.0),
        1..=max_tasks,
    );
    let workers = proptest::collection::vec(
        (
            0.0f64..1.0,          // x
            0.0f64..1.0,          // y
            0.01f64..0.5,         // speed
            0.0f64..TAU,          // heading start
            0.05f64..TAU,         // heading width
            0.0f64..1.0,          // confidence
            0.0f64..3.0,          // check-in time
        ),
        1..=max_workers,
    );
    (tasks, workers).prop_map(|(ts, ws)| {
        let tasks = ts
            .into_iter()
            .map(|(x, y, start, len)| {
                Task::new(
                    TaskId(0),
                    Point::new(x, y),
                    TimeWindow::new(start, start + len).unwrap(),
                )
            })
            .collect();
        let workers = ws
            .into_iter()
            .map(|(x, y, speed, heading, width, p, check_in)| {
                Worker::new(
                    WorkerId(0),
                    Point::new(x, y),
                    speed,
                    AngleRange::new(heading, width),
                    Confidence::new(p).unwrap(),
                )
                .unwrap()
                .with_available_from(check_in)
            })
            .collect();
        ProblemInstance::new(tasks, workers, 0.5)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every solver produces a valid assignment covering all connected
    /// workers, and the two objectives are within their theoretical bounds.
    #[test]
    fn solvers_always_produce_feasible_full_assignments(
        instance in instance_strategy(6, 10),
        seed in 0u64..1_000,
    ) {
        let candidates = compute_valid_pairs(&instance);
        let connected = candidates.by_worker.iter().filter(|a| !a.is_empty()).count();
        let request = SolveRequest::new(&instance, &candidates);

        let assignments = vec![
            ("greedy", greedy(&request, &GreedyConfig::default())),
            ("sampling", sampling(&request, &SamplingConfig {
                min_samples: 4, max_samples: 32, ..SamplingConfig::default()
            }, &mut StdRng::seed_from_u64(seed))),
            ("dnc", divide_and_conquer(&request, &DncConfig {
                gamma: 3,
                sampling: SamplingConfig { min_samples: 4, max_samples: 32, ..SamplingConfig::default() },
                ..DncConfig::default()
            }, &mut StdRng::seed_from_u64(seed))),
            ("nearest", nearest_task_assignment(&request)),
            ("coverage", max_task_coverage_assignment(&request)),
        ];
        for (name, assignment) in assignments {
            prop_assert!(assignment.validate(&instance).is_ok(), "{name} produced an invalid assignment");
            prop_assert_eq!(assignment.num_assigned(), connected, "{} must assign every connected worker", name);
            let value = evaluate(&instance, &assignment);
            prop_assert!((0.0..=1.0).contains(&value.min_reliability), "{name}");
            prop_assert!(value.total_std >= 0.0 && value.total_std.is_finite(), "{name}");
        }
    }

    /// On instances small enough for exhaustive enumeration, no solver
    /// exceeds the exact per-objective optima.
    #[test]
    fn no_solver_exceeds_the_exact_optima(
        instance in instance_strategy(3, 5),
        seed in 0u64..1_000,
    ) {
        let candidates = compute_valid_pairs(&instance);
        let request = SolveRequest::new(&instance, &candidates);
        let Some(summary) = exact_best(&request, &ExactConfig { max_assignments: 5_000 }) else {
            return Ok(());
        };
        let solutions = vec![
            evaluate(&instance, &greedy(&request, &GreedyConfig::default())),
            evaluate(&instance, &sampling(&request, &SamplingConfig {
                min_samples: 8, max_samples: 32, ..SamplingConfig::default()
            }, &mut StdRng::seed_from_u64(seed))),
        ];
        for value in solutions {
            prop_assert!(value.min_reliability <= summary.max_min_reliability + 1e-9);
            prop_assert!(value.total_std <= summary.max_total_std + 1e-9);
        }
    }
}
