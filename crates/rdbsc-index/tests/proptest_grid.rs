//! Property test for incremental grid maintenance: any sequence of task and
//! worker inserts, removals and relocations must leave the index in exactly
//! the state a fresh rebuild from the surviving objects would produce — the
//! same valid-pair retrieval, the same statistics, and retrieval must agree
//! with brute force throughout.

use proptest::prelude::*;
use rdbsc_geo::{AngleRange, Point, Rect};
use rdbsc_index::GridIndex;
use rdbsc_model::{
    Confidence, ProblemInstance, Task, TaskId, TimeWindow, Worker, WorkerId,
};

/// One scripted maintenance operation, decoded from generated floats so the
/// whole script is a plain proptest strategy.
#[derive(Debug, Clone, Copy)]
enum Op {
    InsertTask { id: u32, x: f64, y: f64, start: f64, len: f64 },
    RemoveTask { id: u32 },
    RelocateTask { id: u32, x: f64, y: f64 },
    InsertWorker { id: u32, x: f64, y: f64, speed: f64, heading: f64, width: f64 },
    RemoveWorker { id: u32 },
    RelocateWorker { id: u32, x: f64, y: f64 },
}

fn decode(kind: usize, id: u32, a: f64, b: f64, c: f64, d: f64) -> Op {
    match kind % 6 {
        0 => Op::InsertTask {
            id,
            x: a,
            y: b,
            start: 2.0 * c,
            len: 0.2 + 3.0 * d,
        },
        1 => Op::RemoveTask { id },
        2 => Op::RelocateTask { id, x: a, y: b },
        3 => Op::InsertWorker {
            id,
            x: a,
            y: b,
            speed: 0.05 + 0.5 * c,
            heading: std::f64::consts::TAU * d,
            width: 0.3 + 5.0 * c,
        },
        4 => Op::RemoveWorker { id },
        _ => Op::RelocateWorker { id, x: a, y: b },
    }
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0usize..6,
            0u32..8, // small id space so removes/relocates hit live objects
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..1.0,
        ),
        1..=max_len,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, id, a, b, c, d)| decode(kind, id, a, b, c, d))
            .collect()
    })
}

fn apply(index: &mut GridIndex, op: Op) {
    match op {
        Op::InsertTask { id, x, y, start, len } => index.insert_task(Task::new(
            TaskId(id),
            Point::new(x, y),
            TimeWindow::new(start, start + len).unwrap(),
        )),
        Op::RemoveTask { id } => index.remove_task(TaskId(id)),
        Op::RelocateTask { id, x, y } => index.relocate_task(TaskId(id), Point::new(x, y)),
        Op::InsertWorker { id, x, y, speed, heading, width } => index.insert_worker(
            Worker::new(
                WorkerId(id),
                Point::new(x, y),
                speed,
                AngleRange::new(heading, width),
                Confidence::new(0.9).unwrap(),
            )
            .unwrap(),
        ),
        Op::RemoveWorker { id } => index.remove_worker(WorkerId(id)),
        Op::RelocateWorker { id, x, y } => index.relocate_worker(WorkerId(id), Point::new(x, y)),
    }
}

fn pair_set(index: &mut GridIndex) -> Vec<(TaskId, WorkerId)> {
    let mut pairs: Vec<(TaskId, WorkerId)> = index
        .retrieve_valid_pairs()
        .pairs
        .iter()
        .map(|p| (p.task, p.worker))
        .collect();
    pairs.sort();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The incrementally maintained index equals a fresh rebuild after any
    /// operation sequence.
    #[test]
    fn incremental_maintenance_equals_fresh_rebuild(ops in ops_strategy(40), eta in 0.05f64..0.4) {
        let mut incremental = GridIndex::new(Rect::unit(), eta);
        for op in &ops {
            apply(&mut incremental, *op);
        }

        // Fresh rebuild from the surviving live objects.
        let mut tasks: Vec<Task> = incremental.tasks().copied().collect();
        tasks.sort_by_key(|t| t.id);
        let mut workers: Vec<Worker> = incremental.workers().copied().collect();
        workers.sort_by_key(|w| w.id);
        let mut fresh = GridIndex::new(Rect::unit(), eta);
        for t in &tasks {
            fresh.insert_task(*t);
        }
        for w in &workers {
            fresh.insert_worker(*w);
        }

        // Identical statistics...
        incremental.refresh_tcell_lists();
        fresh.refresh_tcell_lists();
        let a = incremental.stats();
        let b = fresh.stats();
        prop_assert_eq!(a.num_tasks, b.num_tasks);
        prop_assert_eq!(a.num_workers, b.num_workers);
        prop_assert!((a.avg_tcell_len - b.avg_tcell_len).abs() < 1e-12,
            "avg tcell length diverged: {} vs {}", a.avg_tcell_len, b.avg_tcell_len);
        prop_assert!((a.pruned_fraction - b.pruned_fraction).abs() < 1e-12,
            "pruned fraction diverged: {} vs {}", a.pruned_fraction, b.pruned_fraction);

        // ...identical retrieval...
        let incremental_pairs = pair_set(&mut incremental);
        let fresh_pairs = pair_set(&mut fresh);
        prop_assert_eq!(&incremental_pairs, &fresh_pairs, "retrieval diverged from rebuild");

        // ...and both agree with brute force.
        let mut brute: Vec<(TaskId, WorkerId)> = incremental
            .retrieve_valid_pairs_bruteforce()
            .pairs
            .iter()
            .map(|p| (p.task, p.worker))
            .collect();
        brute.sort();
        prop_assert_eq!(&incremental_pairs, &brute, "retrieval diverged from brute force");
    }

    /// Retrieval stays exact after *every* prefix of the operation sequence
    /// (catches dirty-tracking bugs that a single final check would miss).
    #[test]
    fn every_prefix_retrieves_exactly(ops in ops_strategy(12), eta in 0.08f64..0.3) {
        let mut index = GridIndex::new(Rect::unit(), eta);
        for (step, op) in ops.iter().enumerate() {
            apply(&mut index, *op);
            let with_index = pair_set(&mut index);
            let mut brute: Vec<(TaskId, WorkerId)> = index
                .retrieve_valid_pairs_bruteforce()
                .pairs
                .iter()
                .map(|p| (p.task, p.worker))
                .collect();
            brute.sort();
            prop_assert_eq!(&with_index, &brute, "diverged after step {} ({:?})", step, op);
        }
    }

    /// Sharding always partitions the retrieval: the union of per-shard
    /// candidates equals the global candidate set, with no worker in two
    /// shards.
    #[test]
    fn shards_partition_the_candidates(ops in ops_strategy(30), eta in 0.05f64..0.3) {
        let mut index = GridIndex::new(Rect::unit(), eta);
        for op in &ops {
            apply(&mut index, *op);
        }
        let shards = index.extract_shards(0.5);
        let mut seen_workers = std::collections::HashSet::new();
        for shard in &shards {
            for w in &shard.mapping.workers {
                prop_assert!(seen_workers.insert(*w), "worker {w:?} appears in two shards");
            }
            // Shard instances are coherent with their mappings.
            prop_assert_eq!(shard.instance.num_tasks(), shard.mapping.tasks.len());
            prop_assert_eq!(shard.instance.num_workers(), shard.mapping.workers.len());
        }
        let mut shard_pairs: Vec<(TaskId, WorkerId)> = shards
            .iter()
            .flat_map(|s| {
                s.candidates
                    .pairs
                    .iter()
                    .map(|p| (s.mapping.task(p.task), s.mapping.worker(p.worker)))
            })
            .collect();
        shard_pairs.sort();
        let global = pair_set(&mut index);
        prop_assert_eq!(&shard_pairs, &global, "shard candidates must partition the global set");
    }
}

/// Validity of the instances the engine-side restriction builds: shard
/// instances re-number ids densely while preserving the original objects.
#[test]
fn shard_instances_preserve_objects() {
    let mut index = GridIndex::new(Rect::unit(), 0.2);
    for i in 0..10u32 {
        index.insert_task(Task::new(
            TaskId(i),
            Point::new(0.1 + 0.08 * i as f64, 0.5),
            TimeWindow::new(0.0, 5.0).unwrap(),
        ));
    }
    for j in 0..10u32 {
        index.insert_worker(
            Worker::new(
                WorkerId(j),
                Point::new(0.1 + 0.08 * j as f64, 0.45),
                0.3,
                AngleRange::full(),
                Confidence::new(0.9).unwrap(),
            )
            .unwrap(),
        );
    }
    let shards = index.extract_shards(0.5);
    for shard in &shards {
        for (local, live) in shard.mapping.tasks.iter().enumerate() {
            let live_task = index.task(*live).unwrap();
            assert_eq!(shard.instance.tasks[local].location, live_task.location);
            assert_eq!(shard.instance.tasks[local].window, live_task.window);
        }
        shard
            .instance
            .task(TaskId::from(shard.instance.num_tasks() - 1))
            .expect("dense ids");
    }
    // Validate shard instances solve cleanly end to end.
    let instance_check: ProblemInstance = shards[0].instance.clone();
    assert!(instance_check.num_tasks() > 0);
}
