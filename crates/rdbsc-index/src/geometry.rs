//! The square-cell grid geometry shared by every grid-shaped backend.
//!
//! Both [`crate::GridIndex`] and [`crate::FlatGridIndex`] partition the data
//! space into the *same* `cells_per_axis × cells_per_axis` grid for a given
//! `(space, η)` pair: the clamping rule, the cell-of-point mapping and the
//! per-cell rectangles live here so the two backends cannot drift — identical
//! geometry is a precondition for the cross-backend determinism guarantee
//! (identical candidate sets and shard decompositions).

use rdbsc_geo::{Point, Rect};

/// The immutable grid layout: data space, effective cell side `η` and the
/// number of cells per axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridGeometry {
    space: Rect,
    eta: f64,
    cells_per_axis: usize,
}

impl GridGeometry {
    /// Lays a grid over `space` with requested cell side `eta`.
    ///
    /// `eta` is clamped so that the number of cells per axis stays within
    /// `[1, 1024]` (a 2-D grid of more than ~10⁶ cells stops being useful and
    /// only wastes memory); the effective `η` is recomputed from the clamped
    /// axis count so cells tile the space exactly.
    pub fn new(space: Rect, eta: f64) -> Self {
        let extent = space.width().max(space.height()).max(1e-9);
        let mut cells_per_axis = (extent / eta.max(1e-9)).ceil() as usize;
        cells_per_axis = cells_per_axis.clamp(1, 1024);
        let eta = extent / cells_per_axis as f64;
        Self {
            space,
            eta,
            cells_per_axis,
        }
    }

    /// Lays a grid with an explicit axis count (clamped to `[1, 1024]`),
    /// computing the effective `η` exactly as [`GridGeometry::new`] does
    /// after its own clamp. This is the **wire-safe** constructor: a routing
    /// table shipping the integer axis count reconstructs the identical
    /// geometry on the far side, whereas re-deriving the count from the
    /// float `η` (`ceil(extent / η)`) can land one ulp above the integer
    /// and produce an off-by-one grid.
    pub fn with_cells_per_axis(space: Rect, cells_per_axis: usize) -> Self {
        let extent = space.width().max(space.height()).max(1e-9);
        let cells_per_axis = cells_per_axis.clamp(1, 1024);
        Self {
            space,
            eta: extent / cells_per_axis as f64,
            cells_per_axis,
        }
    }

    /// The data space the grid covers.
    pub fn space(&self) -> Rect {
        self.space
    }

    /// The effective cell side `η` actually in use.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Number of cells per axis.
    pub fn cells_per_axis(&self) -> usize {
        self.cells_per_axis
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells_per_axis * self.cells_per_axis
    }

    /// Index of the cell containing a point (points outside the data space
    /// are clamped onto it).
    pub fn cell_of(&self, p: Point) -> usize {
        let clamped = self.space.clamp_point(p);
        let col = (((clamped.x - self.space.min_x) / self.eta) as usize)
            .min(self.cells_per_axis - 1);
        let row = (((clamped.y - self.space.min_y) / self.eta) as usize)
            .min(self.cells_per_axis - 1);
        row * self.cells_per_axis + col
    }

    /// The rectangle of a cell by index.
    pub fn rect_of(&self, idx: usize) -> Rect {
        let row = idx / self.cells_per_axis;
        let col = idx % self.cells_per_axis;
        let min_x = self.space.min_x + col as f64 * self.eta;
        let min_y = self.space.min_y + row as f64 * self.eta;
        Rect::new(min_x, min_y, min_x + self.eta, min_y + self.eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_lookup_and_rects_tile_the_space() {
        let g = GridGeometry::new(Rect::unit(), 0.25);
        assert_eq!(g.num_cells(), 16);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), 0);
        assert_eq!(g.cell_of(Point::new(0.99, 0.99)), 15);
        // Points outside the space are clamped.
        assert_eq!(g.cell_of(Point::new(2.0, 2.0)), 15);
        assert_eq!(g.cell_of(Point::new(-1.0, -1.0)), 0);
        // Every cell's rect contains the cell's own centre point.
        for idx in 0..g.num_cells() {
            let r = g.rect_of(idx);
            let centre = Point::new(
                0.5 * (r.min_x + r.max_x),
                0.5 * (r.min_y + r.max_y),
            );
            assert_eq!(g.cell_of(centre), idx);
        }
    }

    #[test]
    fn explicit_axis_count_reconstructs_any_geometry_exactly() {
        // The float-eta round trip is NOT idempotent for every axis count
        // (ceil(extent / (extent / n)) can exceed n by one ulp's worth);
        // the integer round trip must be, for all of them.
        for n in 1..=1024usize {
            let original = GridGeometry::with_cells_per_axis(Rect::unit(), n);
            assert_eq!(original.cells_per_axis(), n);
            let rebuilt =
                GridGeometry::with_cells_per_axis(original.space(), original.cells_per_axis());
            assert_eq!(rebuilt, original, "axis count {n}");
        }
        // And it matches what new() produces for the same effective count.
        let via_eta = GridGeometry::new(Rect::unit(), 0.25);
        let via_count =
            GridGeometry::with_cells_per_axis(Rect::unit(), via_eta.cells_per_axis());
        assert_eq!(via_count, via_eta);
    }

    #[test]
    fn eta_is_clamped_to_a_sane_number_of_cells() {
        let g = GridGeometry::new(Rect::unit(), 1e-9);
        assert!(g.num_cells() <= 1024 * 1024);
        let g = GridGeometry::new(Rect::unit(), 10.0);
        assert_eq!(g.num_cells(), 1);
    }
}
