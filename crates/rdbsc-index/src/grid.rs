//! The RDB-SC-Grid index structure and its dynamic maintenance (Section 7).

use crate::cost_model::{optimal_eta, CostModelParams};
use rdbsc_geo::{AngleRange, Point, Rect};
use rdbsc_model::valid_pairs::{check_pair, BipartiteCandidates, ValidPair};
use rdbsc_model::{ProblemInstance, Task, TaskId, Worker, WorkerId};
use std::collections::HashMap;

/// One grid cell: its geometry, the ids of the tasks and workers currently
/// inside it, summary bounds used for cell-level pruning, and its
/// `tcell_list` (reachable cells).
#[derive(Debug, Clone)]
struct Cell {
    rect: Rect,
    tasks: Vec<TaskId>,
    workers: Vec<WorkerId>,
    /// Maximum speed over the workers in the cell (`v_max(cellᵢ)`).
    v_max: f64,
    /// Earliest check-in time over the workers in the cell.
    min_available_from: f64,
    /// Angular hull of the workers' heading cones (None when no workers).
    heading_hull: Option<AngleRange>,
    /// Latest deadline over the tasks in the cell (`e_max`).
    e_max: f64,
    /// Earliest start over the tasks in the cell (`s_min`).
    s_min: f64,
    /// Ids (indices) of the cells reachable by at least one worker of this
    /// cell.
    tcell_list: Vec<usize>,
    /// Whether `tcell_list` needs recomputation after an update.
    tcell_dirty: bool,
}

impl Cell {
    fn new(rect: Rect) -> Self {
        Self {
            rect,
            tasks: Vec::new(),
            workers: Vec::new(),
            v_max: 0.0,
            min_available_from: f64::INFINITY,
            heading_hull: None,
            e_max: f64::NEG_INFINITY,
            s_min: f64::INFINITY,
            tcell_list: Vec::new(),
            tcell_dirty: true,
        }
    }

    fn has_workers(&self) -> bool {
        !self.workers.is_empty()
    }

    fn has_tasks(&self) -> bool {
        !self.tasks.is_empty()
    }
}

/// Summary statistics of the index, used in experiments and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridStats {
    /// Cell side `η`.
    pub eta: f64,
    /// Number of cells per axis.
    pub cells_per_axis: usize,
    /// Total number of cells.
    pub num_cells: usize,
    /// Number of indexed tasks.
    pub num_tasks: usize,
    /// Number of indexed workers.
    pub num_workers: usize,
    /// Average `tcell_list` length over cells that contain workers.
    pub avg_tcell_len: f64,
    /// Fraction of (worker-cell, task-cell) pairs pruned by the cell-level
    /// tests.
    pub pruned_fraction: f64,
}

/// The cost-model-based grid index over moving workers and time-constrained
/// spatial tasks.
#[derive(Debug, Clone)]
pub struct GridIndex {
    space: Rect,
    eta: f64,
    cells_per_axis: usize,
    cells: Vec<Cell>,
    tasks: HashMap<TaskId, Task>,
    workers: HashMap<WorkerId, Worker>,
    /// Time at which assignments depart (mirrors `ProblemInstance::depart_at`).
    pub depart_at: f64,
    /// Whether early-arriving workers may wait for a task's window to open.
    pub allow_wait: bool,
}

impl GridIndex {
    /// Creates an empty index over `space` with cell side `eta`.
    ///
    /// `eta` is clamped so that the number of cells per axis stays within
    /// `[1, 1024]` (a 2-D grid of more than ~10⁶ cells stops being useful and
    /// only wastes memory).
    pub fn new(space: Rect, eta: f64) -> Self {
        let extent = space.width().max(space.height()).max(1e-9);
        let mut cells_per_axis = (extent / eta.max(1e-9)).ceil() as usize;
        cells_per_axis = cells_per_axis.clamp(1, 1024);
        let eta = extent / cells_per_axis as f64;
        let mut cells = Vec::with_capacity(cells_per_axis * cells_per_axis);
        for row in 0..cells_per_axis {
            for col in 0..cells_per_axis {
                let min_x = space.min_x + col as f64 * eta;
                let min_y = space.min_y + row as f64 * eta;
                cells.push(Cell::new(Rect::new(min_x, min_y, min_x + eta, min_y + eta)));
            }
        }
        Self {
            space,
            eta,
            cells_per_axis,
            cells,
            tasks: HashMap::new(),
            workers: HashMap::new(),
            depart_at: 0.0,
            allow_wait: true,
        }
    }

    /// Builds an index for a problem instance, choosing `η` from the cost
    /// model (Appendix I) using the instance's task count and the maximum
    /// distance any worker can cover before the latest deadline as `L_max`.
    pub fn from_instance(instance: &ProblemInstance) -> Self {
        let latest_deadline = instance
            .tasks
            .iter()
            .map(|t| t.window.end)
            .fold(0.0f64, f64::max);
        let l_max = instance
            .workers
            .iter()
            .map(|w| w.motion().max_travel_distance(instance.depart_at, latest_deadline))
            .fold(0.0f64, f64::max)
            .min(1.0);
        let params = CostModelParams::uniform(l_max.max(1e-3), instance.num_tasks().max(2));
        let mut index = GridIndex::new(Rect::unit(), optimal_eta(&params));
        index.depart_at = instance.depart_at;
        index.allow_wait = instance.allow_wait;
        for task in &instance.tasks {
            index.insert_task(*task);
        }
        for worker in &instance.workers {
            index.insert_worker(*worker);
        }
        index
    }

    /// Builds an index for an instance with an explicit cell side.
    pub fn from_instance_with_eta(instance: &ProblemInstance, eta: f64) -> Self {
        let mut index = GridIndex::new(Rect::unit(), eta);
        index.depart_at = instance.depart_at;
        index.allow_wait = instance.allow_wait;
        for task in &instance.tasks {
            index.insert_task(*task);
        }
        for worker in &instance.workers {
            index.insert_worker(*worker);
        }
        index
    }

    /// The cell side `η` actually in use.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of indexed tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of indexed workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Index of the cell containing a point (points outside the data space
    /// are clamped onto it).
    pub fn cell_of(&self, p: Point) -> usize {
        let clamped = self.space.clamp_point(p);
        let col = (((clamped.x - self.space.min_x) / self.eta) as usize)
            .min(self.cells_per_axis - 1);
        let row = (((clamped.y - self.space.min_y) / self.eta) as usize)
            .min(self.cells_per_axis - 1);
        row * self.cells_per_axis + col
    }

    // ------------------------------------------------------------------
    // Dynamic maintenance (Section 7.2)
    // ------------------------------------------------------------------

    /// Inserts (or replaces) a task. `O(1)` cell lookup plus summary update.
    pub fn insert_task(&mut self, task: Task) {
        if self.tasks.insert(task.id, task).is_some() {
            self.detach_task(task.id, None);
        }
        let cell_idx = self.cell_of(task.location);
        let cell = &mut self.cells[cell_idx];
        cell.tasks.push(task.id);
        cell.e_max = cell.e_max.max(task.window.end);
        cell.s_min = cell.s_min.min(task.window.start);
        // A new task can only *add* reachable targets; every worker cell's
        // tcell_list may gain this cell.
        self.mark_all_worker_cells_dirty();
    }

    /// Removes a task (no-op when absent).
    pub fn remove_task(&mut self, id: TaskId) {
        if self.tasks.remove(&id).is_some() {
            self.detach_task(id, None);
            self.mark_all_worker_cells_dirty();
        }
    }

    /// Inserts (or replaces) a worker.
    pub fn insert_worker(&mut self, worker: Worker) {
        if self.workers.insert(worker.id, worker).is_some() {
            self.detach_worker(worker.id);
        }
        let cell_idx = self.cell_of(worker.location);
        let cell = &mut self.cells[cell_idx];
        cell.workers.push(worker.id);
        cell.v_max = cell.v_max.max(worker.speed);
        cell.min_available_from = cell.min_available_from.min(worker.available_from);
        cell.heading_hull = Some(match cell.heading_hull {
            Some(hull) => hull.union_hull(&worker.heading),
            None => worker.heading,
        });
        cell.tcell_dirty = true;
    }

    /// Removes a worker (no-op when absent).
    pub fn remove_worker(&mut self, id: WorkerId) {
        if self.workers.remove(&id).is_some() {
            self.detach_worker(id);
        }
    }

    fn detach_task(&mut self, id: TaskId, hint_cell: Option<usize>) {
        let cell_indices: Vec<usize> = match hint_cell {
            Some(c) => vec![c],
            None => (0..self.cells.len()).collect(),
        };
        for c in cell_indices {
            let cell = &mut self.cells[c];
            let before = cell.tasks.len();
            cell.tasks.retain(|t| *t != id);
            if cell.tasks.len() != before {
                // Recompute the task summary of this cell.
                let (mut e_max, mut s_min) = (f64::NEG_INFINITY, f64::INFINITY);
                for t in &cell.tasks {
                    if let Some(task) = self.tasks.get(t) {
                        e_max = e_max.max(task.window.end);
                        s_min = s_min.min(task.window.start);
                    }
                }
                cell.e_max = e_max;
                cell.s_min = s_min;
                return;
            }
        }
    }

    fn detach_worker(&mut self, id: WorkerId) {
        for c in 0..self.cells.len() {
            let cell = &mut self.cells[c];
            let before = cell.workers.len();
            cell.workers.retain(|w| *w != id);
            if cell.workers.len() != before {
                // Recompute the worker summary of this cell.
                let mut v_max = 0.0f64;
                let mut min_avail = f64::INFINITY;
                let mut hull: Option<AngleRange> = None;
                for w in &cell.workers {
                    if let Some(worker) = self.workers.get(w) {
                        v_max = v_max.max(worker.speed);
                        min_avail = min_avail.min(worker.available_from);
                        hull = Some(match hull {
                            Some(h) => h.union_hull(&worker.heading),
                            None => worker.heading,
                        });
                    }
                }
                cell.v_max = v_max;
                cell.min_available_from = min_avail;
                cell.heading_hull = hull;
                cell.tcell_dirty = true;
                return;
            }
        }
    }

    fn mark_all_worker_cells_dirty(&mut self) {
        for cell in &mut self.cells {
            if cell.has_workers() {
                cell.tcell_dirty = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Cell-level pruning and tcell_list maintenance (Section 7.1)
    // ------------------------------------------------------------------

    /// Can any worker of `from` possibly serve any task of `to`?
    ///
    /// Conservative: never prunes a reachable pair. Combines the paper's
    /// minimum-travel-time test (`d_min / v_max` vs. latest deadline) with an
    /// angular-hull test on the workers' heading cones.
    fn cell_pair_reachable(&self, from: &Cell, to: &Cell) -> bool {
        if !from.has_workers() || !to.has_tasks() {
            return false;
        }
        let Some(hull) = from.heading_hull else {
            return false;
        };
        // Minimum possible arrival time at the target cell.
        let depart = self.depart_at.max(from.min_available_from);
        let d_min = from.rect.min_distance(&to.rect);
        if d_min > 0.0 {
            if from.v_max <= 0.0 {
                return false;
            }
            let t_min = depart + d_min / from.v_max;
            if t_min > to.e_max {
                return false;
            }
            // Angular pruning: the directions towards the target cell must
            // overlap the workers' heading hull.
            let directions = from.rect.direction_range_to(&to.rect);
            if !hull.intersects(&directions) {
                return false;
            }
        } else {
            // Overlapping or identical cells: a worker may be arbitrarily
            // close to (or on top of) a task, so never prune; still require
            // the deadline to be in the future.
            if depart > to.e_max {
                return false;
            }
        }
        true
    }

    /// Recomputes the `tcell_list` of every dirty cell. Returns the number of
    /// lists rebuilt.
    pub fn refresh_tcell_lists(&mut self) -> usize {
        let mut rebuilt = 0;
        for i in 0..self.cells.len() {
            if !self.cells[i].tcell_dirty {
                continue;
            }
            if !self.cells[i].has_workers() {
                self.cells[i].tcell_list.clear();
                self.cells[i].tcell_dirty = false;
                continue;
            }
            let mut list = Vec::new();
            for j in 0..self.cells.len() {
                if self.cells[j].has_tasks() && self.cell_pair_reachable(&self.cells[i], &self.cells[j])
                {
                    list.push(j);
                }
            }
            self.cells[i].tcell_list = list;
            self.cells[i].tcell_dirty = false;
            rebuilt += 1;
        }
        rebuilt
    }

    // ------------------------------------------------------------------
    // Valid-pair retrieval
    // ------------------------------------------------------------------

    fn candidate_capacity(&self) -> (usize, usize) {
        let max_task = self.tasks.keys().map(|t| t.index() + 1).max().unwrap_or(0);
        let max_worker = self
            .workers
            .keys()
            .map(|w| w.index() + 1)
            .max()
            .unwrap_or(0);
        (max_task, max_worker)
    }

    /// Retrieves every valid task-and-worker pair using the index
    /// (cell-level pruning via `tcell_list`, then exact per-pair checks).
    pub fn retrieve_valid_pairs(&mut self) -> BipartiteCandidates {
        self.refresh_tcell_lists();
        let (task_cap, worker_cap) = self.candidate_capacity();
        let mut graph = BipartiteCandidates::with_capacity(task_cap, worker_cap);
        for i in 0..self.cells.len() {
            if !self.cells[i].has_workers() {
                continue;
            }
            // Materialise the cell's workers and the reachable cells' tasks
            // once, so the inner loop does no hash lookups.
            let cell_workers: Vec<Worker> = self.cells[i]
                .workers
                .iter()
                .map(|id| self.workers[id])
                .collect();
            for &j in &self.cells[i].tcell_list {
                let cell_tasks: Vec<Task> = self.cells[j]
                    .tasks
                    .iter()
                    .map(|id| self.tasks[id])
                    .collect();
                for worker in &cell_workers {
                    for task in &cell_tasks {
                        if let Some(contribution) =
                            check_pair(task, worker, self.depart_at, self.allow_wait)
                        {
                            graph.push(ValidPair {
                                task: task.id,
                                worker: worker.id,
                                contribution,
                            });
                        }
                    }
                }
            }
        }
        graph
    }

    /// Retrieves every valid pair by brute force (no cell pruning), used to
    /// measure the index's benefit (Figure 17(b)) and to validate it.
    pub fn retrieve_valid_pairs_bruteforce(&self) -> BipartiteCandidates {
        let (task_cap, worker_cap) = self.candidate_capacity();
        let mut graph = BipartiteCandidates::with_capacity(task_cap, worker_cap);
        for task in self.tasks.values() {
            for worker in self.workers.values() {
                if let Some(contribution) =
                    check_pair(task, worker, self.depart_at, self.allow_wait)
                {
                    graph.push(ValidPair {
                        task: task.id,
                        worker: worker.id,
                        contribution,
                    });
                }
            }
        }
        graph
    }

    /// Summary statistics (requires the `tcell_list`s to be fresh; call
    /// [`refresh_tcell_lists`](Self::refresh_tcell_lists) first when in
    /// doubt).
    pub fn stats(&self) -> GridStats {
        let worker_cells: Vec<&Cell> = self.cells.iter().filter(|c| c.has_workers()).collect();
        let task_cells = self.cells.iter().filter(|c| c.has_tasks()).count();
        let total_tcell: usize = worker_cells.iter().map(|c| c.tcell_list.len()).sum();
        let avg = if worker_cells.is_empty() {
            0.0
        } else {
            total_tcell as f64 / worker_cells.len() as f64
        };
        let possible = worker_cells.len() * task_cells;
        let pruned_fraction = if possible == 0 {
            0.0
        } else {
            1.0 - total_tcell as f64 / possible as f64
        };
        GridStats {
            eta: self.eta,
            cells_per_axis: self.cells_per_axis,
            num_cells: self.cells.len(),
            num_tasks: self.tasks.len(),
            num_workers: self.workers.len(),
            avg_tcell_len: avg,
            pruned_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbsc_geo::AngleRange;
    use rdbsc_model::{Confidence, TimeWindow};
    use std::f64::consts::PI;

    fn task(id: u32, x: f64, y: f64, start: f64, end: f64) -> Task {
        Task::new(
            TaskId(id),
            Point::new(x, y),
            TimeWindow::new(start, end).unwrap(),
        )
    }

    fn worker(id: u32, x: f64, y: f64, speed: f64, heading: AngleRange) -> Worker {
        Worker::new(
            WorkerId(id),
            Point::new(x, y),
            speed,
            heading,
            Confidence::new(0.9).unwrap(),
        )
        .unwrap()
    }

    fn small_instance() -> ProblemInstance {
        let tasks = vec![
            task(0, 0.2, 0.2, 0.0, 5.0),
            task(1, 0.8, 0.8, 0.0, 5.0),
            task(2, 0.8, 0.2, 0.0, 0.5),
        ];
        let workers = vec![
            worker(0, 0.1, 0.1, 0.5, AngleRange::full()),
            worker(1, 0.9, 0.9, 0.5, AngleRange::from_bounds(PI, 1.5 * PI)),
            worker(2, 0.5, 0.5, 0.05, AngleRange::full()),
        ];
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn grid_geometry_and_cell_lookup() {
        let g = GridIndex::new(Rect::unit(), 0.25);
        assert_eq!(g.num_cells(), 16);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), 0);
        assert_eq!(g.cell_of(Point::new(0.99, 0.99)), 15);
        // Points outside the space are clamped.
        assert_eq!(g.cell_of(Point::new(2.0, 2.0)), 15);
        assert_eq!(g.cell_of(Point::new(-1.0, -1.0)), 0);
    }

    #[test]
    fn eta_is_clamped_to_a_sane_number_of_cells() {
        let g = GridIndex::new(Rect::unit(), 1e-9);
        assert!(g.num_cells() <= 1024 * 1024);
        let g = GridIndex::new(Rect::unit(), 10.0);
        assert_eq!(g.num_cells(), 1);
    }

    #[test]
    fn index_retrieval_matches_bruteforce() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.2);
        let with_index = index.retrieve_valid_pairs();
        let brute = index.retrieve_valid_pairs_bruteforce();
        let mut a: Vec<(TaskId, WorkerId)> =
            with_index.pairs.iter().map(|p| (p.task, p.worker)).collect();
        let mut b: Vec<(TaskId, WorkerId)> =
            brute.pairs.iter().map(|p| (p.task, p.worker)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "index retrieval must agree with brute force");
        // And with the model-level brute force over the instance.
        let model = rdbsc_model::compute_valid_pairs(&instance);
        let mut c: Vec<(TaskId, WorkerId)> =
            model.pairs.iter().map(|p| (p.task, p.worker)).collect();
        c.sort();
        assert_eq!(a, c);
    }

    #[test]
    fn dynamic_insert_and_remove_keep_retrieval_correct() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);

        // Remove a worker: its pairs must disappear.
        index.remove_worker(WorkerId(0));
        let pairs = index.retrieve_valid_pairs();
        assert!(pairs.pairs.iter().all(|p| p.worker != WorkerId(0)));
        assert_eq!(index.num_workers(), 2);

        // Re-insert it: pairs must come back and match brute force.
        index.insert_worker(instance.workers[0]);
        let with_index = index.retrieve_valid_pairs();
        let brute = index.retrieve_valid_pairs_bruteforce();
        assert_eq!(with_index.num_pairs(), brute.num_pairs());

        // Remove a task.
        index.remove_task(TaskId(1));
        let pairs = index.retrieve_valid_pairs();
        assert!(pairs.pairs.iter().all(|p| p.task != TaskId(1)));
        assert_eq!(index.num_tasks(), 2);

        // Insert a brand-new task next to the slow worker.
        index.insert_task(task(3, 0.5, 0.5, 0.0, 10.0));
        let pairs = index.retrieve_valid_pairs();
        assert!(
            pairs.pairs.iter().any(|p| p.task == TaskId(3) && p.worker == WorkerId(2)),
            "the slow worker sits on the new task and must be able to serve it"
        );
        let brute = index.retrieve_valid_pairs_bruteforce();
        assert_eq!(pairs.num_pairs(), brute.num_pairs());
    }

    #[test]
    fn replacing_a_worker_updates_its_cell() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);
        // Move worker 0 to the opposite corner with a new heading.
        let moved = worker(0, 0.95, 0.95, 0.5, AngleRange::from_bounds(PI, 1.5 * PI));
        index.insert_worker(moved);
        assert_eq!(index.num_workers(), 3);
        let with_index = index.retrieve_valid_pairs();
        let brute = index.retrieve_valid_pairs_bruteforce();
        assert_eq!(with_index.num_pairs(), brute.num_pairs());
    }

    #[test]
    fn pruning_actually_prunes_far_unreachable_cells() {
        // A slow worker in one corner and a short-deadline task in the other:
        // the task's cell must not appear in the worker's tcell_list.
        let tasks = vec![task(0, 0.95, 0.95, 0.0, 0.1)];
        let workers = vec![worker(0, 0.05, 0.05, 0.1, AngleRange::full())];
        let instance = ProblemInstance::new(tasks, workers, 0.5);
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.1);
        index.refresh_tcell_lists();
        let stats = index.stats();
        assert_eq!(stats.avg_tcell_len, 0.0, "unreachable task cell must be pruned");
        assert!(index.retrieve_valid_pairs().pairs.is_empty());
    }

    #[test]
    fn angular_pruning_drops_cells_behind_the_worker() {
        // Worker heading strictly east; a task far to the west is open for a
        // long time (so the time test alone cannot prune it).
        let tasks = vec![task(0, 0.05, 0.5, 0.0, 100.0), task(1, 0.95, 0.5, 0.0, 100.0)];
        let workers = vec![worker(0, 0.5, 0.5, 0.5, AngleRange::from_bounds(-0.3, 0.3))];
        let instance = ProblemInstance::new(tasks, workers, 0.5);
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.1);
        let pairs = index.retrieve_valid_pairs();
        assert_eq!(pairs.num_pairs(), 1);
        assert_eq!(pairs.pairs[0].task, TaskId(1));
        let stats = index.stats();
        assert!(stats.pruned_fraction > 0.0);
    }

    #[test]
    fn from_instance_uses_cost_model_eta() {
        let instance = small_instance();
        let index = GridIndex::from_instance(&instance);
        assert!(index.eta() > 0.0 && index.eta() <= 1.0);
        assert_eq!(index.num_tasks(), 3);
        assert_eq!(index.num_workers(), 3);
    }

    #[test]
    fn stats_report_counts() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);
        index.refresh_tcell_lists();
        let stats = index.stats();
        assert_eq!(stats.num_tasks, 3);
        assert_eq!(stats.num_workers, 3);
        assert_eq!(stats.num_cells, 16);
        assert!(stats.avg_tcell_len >= 1.0);
    }
}
