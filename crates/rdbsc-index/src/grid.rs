//! The RDB-SC-Grid index structure and its dynamic maintenance (Section 7).
//!
//! Maintenance is *incremental*: the index keeps reverse maps from task and
//! worker ids to their cells, so attaching or detaching an object touches one
//! cell instead of scanning the grid, and it tracks dirtiness at cell
//! granularity in two flavours:
//!
//! * a **worker-side dirty cell** (the cell's worker summary — `v_max`,
//!   heading hull, earliest check-in — changed) needs its whole `tcell_list`
//!   rebuilt, which costs one reachability test per task-bearing cell;
//! * a **task-side dirty cell** (the cell's task summary — `e_max`, `s_min`,
//!   emptiness — changed) only needs *its own membership* re-decided in every
//!   worker cell's `tcell_list`, which costs one reachability test per
//!   worker-bearing cell.
//!
//! A burst of task arrivals/expirations therefore costs
//! `O(worker_cells · changed_cells)` instead of the full
//! `O(worker_cells · cells)` rebuild the seed implementation performed.
//!
//! `GridIndex` is one backend of the [`SpatialIndex`] abstraction; see
//! [`crate::FlatGridIndex`] for the dense-cell alternative optimised for
//! worker-movement-heavy workloads.

use crate::cost_model::{optimal_eta, CostModelParams};
use crate::geometry::GridGeometry;
use crate::topology::{
    bruteforce_pairs, cell_pair_reachable, retrieve_pairs_via, CellTopology, PairScratch,
    TaskCellSummary, WorkerCellSummary,
};
use crate::traits::{MaintenanceCounters, SpatialIndex};
use rdbsc_geo::{Point, Rect};
use rdbsc_model::valid_pairs::BipartiteCandidates;
use rdbsc_model::{ProblemInstance, Task, TaskId, Worker, WorkerId};
use std::collections::{BTreeSet, HashMap};

/// One grid cell: the ids of the tasks and workers currently inside it
/// (ascending), the summary bounds used for cell-level pruning, and its
/// `tcell_list` (reachable cells).
#[derive(Debug, Clone)]
pub(crate) struct Cell {
    tasks: Vec<TaskId>,
    workers: Vec<WorkerId>,
    worker_summary: WorkerCellSummary,
    task_summary: TaskCellSummary,
    /// The worker summary the `tcell_list` was last decided under. The list
    /// is a pure function of the summaries, so at refresh time a rebuild is
    /// needed exactly when the current summary differs — the same trigger
    /// the flat backend uses, which keeps the two backends' cached lists
    /// (and therefore shard decompositions) identical even across A-B-A
    /// changes between refreshes.
    listed_worker_summary: WorkerCellSummary,
    /// The task summary this cell's membership in the worker cells' lists
    /// was last decided under (same refresh-time-compare contract).
    listed_task_summary: TaskCellSummary,
    /// Ids (indices) of the cells reachable by at least one worker of this
    /// cell. Kept sorted ascending.
    tcell_list: Vec<usize>,
    /// Whether the cell's worker membership changed since the last refresh
    /// (the refresh then compares summaries to decide on a rebuild).
    tcell_dirty: bool,
}

impl Cell {
    fn new() -> Self {
        Self {
            tasks: Vec::new(),
            workers: Vec::new(),
            worker_summary: WorkerCellSummary::EMPTY,
            task_summary: TaskCellSummary::EMPTY,
            listed_worker_summary: WorkerCellSummary::EMPTY,
            listed_task_summary: TaskCellSummary::EMPTY,
            tcell_list: Vec::new(),
            tcell_dirty: false,
        }
    }

    fn has_workers(&self) -> bool {
        !self.workers.is_empty()
    }

    fn has_tasks(&self) -> bool {
        !self.tasks.is_empty()
    }
}

/// Inserts `value` into an ascending vector, keeping it sorted (no-op style
/// duplicate handling is not needed: ids are unique per kind).
fn sorted_insert<T: Ord + Copy>(vec: &mut Vec<T>, value: T) {
    match vec.binary_search(&value) {
        Ok(_) => {}
        Err(pos) => vec.insert(pos, value),
    }
}

/// Removes `value` from an ascending vector, if present.
fn sorted_remove<T: Ord + Copy>(vec: &mut Vec<T>, value: T) {
    if let Ok(pos) = vec.binary_search(&value) {
        vec.remove(pos);
    }
}

/// Summary statistics of the index, used in experiments and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridStats {
    /// Cell side `η`.
    pub eta: f64,
    /// Number of cells per axis.
    pub cells_per_axis: usize,
    /// Total number of cells.
    pub num_cells: usize,
    /// Number of indexed tasks.
    pub num_tasks: usize,
    /// Number of indexed workers.
    pub num_workers: usize,
    /// Average `tcell_list` length over cells that contain workers.
    pub avg_tcell_len: f64,
    /// Fraction of (worker-cell, task-cell) pairs pruned by the cell-level
    /// tests.
    pub pruned_fraction: f64,
}

/// The cost-model-based grid index over moving workers and time-constrained
/// spatial tasks.
///
/// # Examples
///
/// Build an index, retrieve the valid pairs, then maintain it incrementally
/// as workers move and tasks arrive:
///
/// ```
/// use rdbsc_geo::{AngleRange, Point, Rect};
/// use rdbsc_index::GridIndex;
/// use rdbsc_model::{Confidence, Task, TaskId, TimeWindow, Worker, WorkerId};
///
/// let mut index = GridIndex::new(Rect::unit(), 0.25);
/// index.insert_task(Task::new(
///     TaskId(0),
///     Point::new(0.8, 0.8),
///     TimeWindow::new(0.0, 10.0).unwrap(),
/// ));
/// index.insert_worker(
///     Worker::new(
///         WorkerId(0),
///         Point::new(0.2, 0.2),
///         0.5,
///         AngleRange::full(),
///         Confidence::new(0.9).unwrap(),
///     )
///     .unwrap(),
/// );
/// assert_eq!(index.retrieve_valid_pairs().num_pairs(), 1);
///
/// // The worker walks towards the task: an O(1) relocation, no rebuild.
/// index.relocate_worker(WorkerId(0), Point::new(0.6, 0.6));
/// assert_eq!(index.retrieve_valid_pairs().num_pairs(), 1);
///
/// // The task expires and is removed; only its cell's membership in the
/// // worker cells' reachability lists is re-decided.
/// index.remove_task(TaskId(0));
/// assert_eq!(index.retrieve_valid_pairs().num_pairs(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    geometry: GridGeometry,
    cells: Vec<Cell>,
    tasks: HashMap<TaskId, Task>,
    workers: HashMap<WorkerId, Worker>,
    /// Reverse map: the cell currently holding each task.
    task_cell: HashMap<TaskId, usize>,
    /// Reverse map: the cell currently holding each worker.
    worker_cell: HashMap<WorkerId, usize>,
    /// Cells currently holding at least one task (sorted).
    task_cell_set: BTreeSet<usize>,
    /// Cells currently holding at least one worker (sorted).
    worker_cell_set: BTreeSet<usize>,
    /// Cells whose *task* summary changed since the last refresh; their
    /// membership in every worker cell's `tcell_list` must be re-decided.
    dirty_task_cells: BTreeSet<usize>,
    /// The `depart_at` the `tcell_list`s were last refreshed under. A later
    /// departure only shrinks reachability (cached lists stay conservative
    /// over-approximations), but an *earlier* one grows it, so
    /// [`refresh_tcell_lists`](Self::refresh_tcell_lists) must detect the
    /// rewind and rebuild.
    tcell_depart_at: f64,
    /// Cumulative maintenance-cost counters.
    counters: MaintenanceCounters,
    /// Reusable candidate-generation buffers (hot path, no per-cell allocs).
    scratch: PairScratch,
    /// Time at which assignments depart (mirrors `ProblemInstance::depart_at`).
    pub depart_at: f64,
    /// Whether early-arriving workers may wait for a task's window to open.
    pub allow_wait: bool,
}

impl GridIndex {
    /// Creates an empty index over `space` with cell side `eta`.
    ///
    /// `eta` is clamped so that the number of cells per axis stays within
    /// `[1, 1024]` (a 2-D grid of more than ~10⁶ cells stops being useful and
    /// only wastes memory).
    pub fn new(space: Rect, eta: f64) -> Self {
        let geometry = GridGeometry::new(space, eta);
        let cells = (0..geometry.num_cells()).map(|_| Cell::new()).collect();
        Self {
            geometry,
            cells,
            tasks: HashMap::new(),
            workers: HashMap::new(),
            task_cell: HashMap::new(),
            worker_cell: HashMap::new(),
            task_cell_set: BTreeSet::new(),
            worker_cell_set: BTreeSet::new(),
            dirty_task_cells: BTreeSet::new(),
            tcell_depart_at: 0.0,
            counters: MaintenanceCounters::default(),
            scratch: PairScratch::default(),
            depart_at: 0.0,
            allow_wait: true,
        }
    }

    /// Builds an index for a problem instance, choosing `η` from the cost
    /// model (Appendix I) using the instance's task count and the maximum
    /// distance any worker can cover before the latest deadline as `L_max`.
    pub fn from_instance(instance: &ProblemInstance) -> Self {
        let mut index = GridIndex::new(Rect::unit(), instance_eta(instance));
        crate::traits::populate_from_instance(&mut index, instance);
        index
    }

    /// Builds an index for an instance with an explicit cell side.
    pub fn from_instance_with_eta(instance: &ProblemInstance, eta: f64) -> Self {
        let mut index = GridIndex::new(Rect::unit(), eta);
        crate::traits::populate_from_instance(&mut index, instance);
        index
    }

    /// The cell side `η` actually in use.
    pub fn eta(&self) -> f64 {
        self.geometry.eta()
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of indexed tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of indexed workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The live task with the given id, if indexed.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(&id)
    }

    /// The live worker with the given id, if indexed.
    pub fn worker(&self, id: WorkerId) -> Option<&Worker> {
        self.workers.get(&id)
    }

    /// Iterates over the live tasks (arbitrary order).
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        // lint:allow(D001): documented arbitrary-order view — deterministic consumers sort (tests do)
        self.tasks.values()
    }

    /// Iterates over the live workers (arbitrary order).
    pub fn workers(&self) -> impl Iterator<Item = &Worker> {
        // lint:allow(D001): documented arbitrary-order view — deterministic consumers sort (tests do)
        self.workers.values()
    }

    /// Ids of the live tasks whose valid period has ended at time `now`.
    pub fn expired_tasks(&self, now: f64) -> Vec<TaskId> {
        let mut expired: Vec<TaskId> = self
            // lint:allow(D001): collected here, sorted before returning
            .tasks
            .values()
            .filter(|t| t.window.end < now)
            .map(|t| t.id)
            .collect();
        expired.sort();
        expired
    }

    /// Index of the cell containing a point (points outside the data space
    /// are clamped onto it).
    pub fn cell_of(&self, p: Point) -> usize {
        self.geometry.cell_of(p)
    }

    /// The cumulative maintenance counters (relocations, repairs, rebuilds).
    pub fn maintenance_counters(&self) -> MaintenanceCounters {
        self.counters
    }

    // ------------------------------------------------------------------
    // Dynamic maintenance (Section 7.2)
    // ------------------------------------------------------------------

    /// Inserts (or replaces) a task. `O(1)` cell lookup plus summary update.
    pub fn insert_task(&mut self, task: Task) {
        if self.tasks.insert(task.id, task).is_some() {
            self.detach_task(task.id);
        }
        let cell_idx = self.geometry.cell_of(task.location);
        self.task_cell.insert(task.id, cell_idx);
        self.task_cell_set.insert(cell_idx);
        let cell = &mut self.cells[cell_idx];
        sorted_insert(&mut cell.tasks, task.id);
        cell.task_summary.absorb(&task);
        // Only this cell's membership in the worker cells' reachability lists
        // can change.
        self.dirty_task_cells.insert(cell_idx);
    }

    /// Removes a task (no-op when absent).
    pub fn remove_task(&mut self, id: TaskId) {
        if self.tasks.remove(&id).is_some() {
            self.detach_task(id);
        }
    }

    /// Moves a live task to a new location, updating at most two cells.
    /// No-op when the task is not indexed.
    pub fn relocate_task(&mut self, id: TaskId, to: Point) {
        let Some(task) = self.tasks.get_mut(&id) else {
            return;
        };
        task.location = to;
        let task = *task;
        let old_cell = self.task_cell.get(&id).copied();
        let new_cell = self.geometry.cell_of(to);
        if old_cell == Some(new_cell) {
            return; // summaries do not depend on the position inside the cell
        }
        self.counters.relocations += 1;
        self.detach_task(id);
        self.task_cell.insert(id, new_cell);
        self.task_cell_set.insert(new_cell);
        let cell = &mut self.cells[new_cell];
        sorted_insert(&mut cell.tasks, id);
        cell.task_summary.absorb(&task);
        self.dirty_task_cells.insert(new_cell);
    }

    /// Inserts (or replaces) a worker.
    pub fn insert_worker(&mut self, worker: Worker) {
        if self.workers.insert(worker.id, worker).is_some() {
            self.detach_worker(worker.id);
        }
        let cell_idx = self.geometry.cell_of(worker.location);
        self.worker_cell.insert(worker.id, cell_idx);
        self.worker_cell_set.insert(cell_idx);
        sorted_insert(&mut self.cells[cell_idx].workers, worker.id);
        self.repair_worker_summary(cell_idx);
    }

    /// Removes a worker (no-op when absent).
    pub fn remove_worker(&mut self, id: WorkerId) {
        if self.workers.remove(&id).is_some() {
            self.detach_worker(id);
        }
    }

    /// Moves a live worker to a new location, updating at most two cells.
    /// No-op when the worker is not indexed.
    pub fn relocate_worker(&mut self, id: WorkerId, to: Point) {
        let Some(worker) = self.workers.get_mut(&id) else {
            return;
        };
        worker.location = to;
        let old_cell = self.worker_cell.get(&id).copied();
        let new_cell = self.geometry.cell_of(to);
        if old_cell == Some(new_cell) {
            return; // summaries do not depend on the position inside the cell
        }
        self.counters.relocations += 1;
        self.detach_worker(id);
        self.worker_cell.insert(id, new_cell);
        self.worker_cell_set.insert(new_cell);
        sorted_insert(&mut self.cells[new_cell].workers, id);
        self.repair_worker_summary(new_cell);
    }

    /// Recomputes a cell's worker summary from its (ascending) membership.
    ///
    /// Recomputing — rather than folding the new worker into the cached
    /// value — keeps the summary a pure function of the membership *set*,
    /// independent of arrival order, which the cross-backend determinism
    /// contract needs (the heading-hull union is not order-exact in floats).
    /// The rebuild decision itself happens at refresh time, against the
    /// summary the list was last decided under.
    fn repair_worker_summary(&mut self, cell_idx: usize) {
        let summary = WorkerCellSummary::compute(
            self.cells[cell_idx].workers.iter().map(|w| &self.workers[w]),
        );
        let cell = &mut self.cells[cell_idx];
        cell.worker_summary = summary;
        cell.tcell_dirty = true;
    }

    /// Detaches a task from its cell (O(cell population)) and refreshes the
    /// cell's task summary.
    fn detach_task(&mut self, id: TaskId) {
        let Some(cell_idx) = self.task_cell.remove(&id) else {
            return;
        };
        let cell = &mut self.cells[cell_idx];
        sorted_remove(&mut cell.tasks, id);
        cell.task_summary =
            TaskCellSummary::compute(cell.tasks.iter().map(|t| &self.tasks[t]));
        if cell.tasks.is_empty() {
            self.task_cell_set.remove(&cell_idx);
        }
        self.dirty_task_cells.insert(cell_idx);
    }

    /// Detaches a worker from its cell (O(cell population)) and refreshes the
    /// cell's worker summary.
    fn detach_worker(&mut self, id: WorkerId) {
        let Some(cell_idx) = self.worker_cell.remove(&id) else {
            return;
        };
        sorted_remove(&mut self.cells[cell_idx].workers, id);
        self.repair_worker_summary(cell_idx);
        if self.cells[cell_idx].workers.is_empty() {
            self.worker_cell_set.remove(&cell_idx);
        }
    }

    // ------------------------------------------------------------------
    // Cell-level pruning and tcell_list maintenance (Section 7.1)
    // ------------------------------------------------------------------

    /// Brings every `tcell_list` up to date and returns the number of cells
    /// whose list was (fully or partially) recomputed.
    ///
    /// Worker-side dirty cells rebuild their whole list by scanning the
    /// task-bearing cells; task-side dirty cells only have their own
    /// membership re-decided in each worker cell's list. Lists stay sorted,
    /// so the incremental path converges to exactly the same state as a full
    /// rebuild.
    pub fn refresh_tcell_lists(&mut self) -> usize {
        // A departure time earlier than the one the lists were built under
        // grows reachability, so the cached lists may be missing cells:
        // rebuild every worker-bearing cell. (Later departures only shrink
        // reachability; the cached over-approximation stays sound and the
        // exact per-pair check filters the rest.)
        let force = self.depart_at < self.tcell_depart_at;
        self.tcell_depart_at = self.depart_at;

        // Candidate cells: membership changed since the last refresh (plus
        // every worker cell on a rewind). A rebuild actually happens only
        // when the *summary* the list was last decided under differs — the
        // list is a pure function of the summaries, so an unchanged summary
        // proves the cached list is still exact. Iterate over a snapshot
        // because the loop needs simultaneous borrow of `self`.
        let mut dirty_worker_cells: Vec<usize> = (0..self.cells.len())
            .filter(|&i| self.cells[i].tcell_dirty)
            .collect();
        if force {
            dirty_worker_cells.extend(self.worker_cell_set.iter().copied());
            dirty_worker_cells.sort_unstable();
            dirty_worker_cells.dedup();
        }
        let task_cells: Vec<usize> = self.task_cell_set.iter().copied().collect();
        let mut rebuilt = BTreeSet::new();
        for i in dirty_worker_cells {
            self.cells[i].tcell_dirty = false;
            let changed =
                self.cells[i].worker_summary != self.cells[i].listed_worker_summary;
            if !(changed || force && self.cells[i].has_workers()) {
                continue;
            }
            self.cells[i].listed_worker_summary = self.cells[i].worker_summary;
            if !self.cells[i].has_workers() {
                self.cells[i].tcell_list.clear();
                continue;
            }
            let from_rect = self.geometry.rect_of(i);
            let from = self.cells[i].worker_summary;
            let mut list = std::mem::take(&mut self.cells[i].tcell_list);
            list.clear();
            for &j in &task_cells {
                if cell_pair_reachable(
                    self.depart_at,
                    &from_rect,
                    &from,
                    &self.geometry.rect_of(j),
                    &self.cells[j].task_summary,
                ) {
                    list.push(j); // ascending: task_cells is sorted
                }
            }
            self.cells[i].tcell_list = list;
            rebuilt.insert(i);
        }
        self.counters.tcell_rebuilds += rebuilt.len() as u64;

        // Targeted membership updates for cells whose task summary changed
        // since their membership was last decided. Cells fully rebuilt above
        // already saw the new task summaries and are skipped; `touched` only
        // tracks membership *edits*, so one edit must not suppress edits for
        // later dirty task cells.
        let mut touched = rebuilt.clone();
        let dirty_task_cells: Vec<usize> = std::mem::take(&mut self.dirty_task_cells)
            .into_iter()
            .collect();
        let worker_cells: Vec<usize> = self.worker_cell_set.iter().copied().collect();
        for j in dirty_task_cells {
            if self.cells[j].task_summary == self.cells[j].listed_task_summary {
                continue; // membership decisions are still exact
            }
            self.cells[j].listed_task_summary = self.cells[j].task_summary;
            let to_rect = self.geometry.rect_of(j);
            let to = self.cells[j].task_summary;
            for &i in &worker_cells {
                if rebuilt.contains(&i) {
                    continue; // already fully rebuilt above
                }
                let reachable = cell_pair_reachable(
                    self.depart_at,
                    &self.geometry.rect_of(i),
                    &self.cells[i].worker_summary,
                    &to_rect,
                    &to,
                );
                let list = &mut self.cells[i].tcell_list;
                match (list.binary_search(&j), reachable) {
                    (Ok(_), true) | (Err(_), false) => {}
                    (Ok(pos), false) => {
                        list.remove(pos);
                        touched.insert(i);
                    }
                    (Err(pos), true) => {
                        list.insert(pos, j);
                        touched.insert(i);
                    }
                }
            }
        }

        self.counters.cells_repaired += touched.len() as u64;
        touched.len()
    }

    // ------------------------------------------------------------------
    // Valid-pair retrieval
    // ------------------------------------------------------------------

    fn id_capacity(&self) -> (usize, usize) {
        // lint:allow(D001): max over keys — order-insensitive
        let max_task = self.tasks.keys().map(|t| t.index() + 1).max().unwrap_or(0);
        let max_worker = self
            // lint:allow(D001): max over keys — order-insensitive
            .workers
            .keys()
            .map(|w| w.index() + 1)
            .max()
            .unwrap_or(0);
        (max_task, max_worker)
    }

    /// Retrieves every valid task-and-worker pair using the index
    /// (cell-level pruning via `tcell_list`, then exact per-pair checks).
    pub fn retrieve_valid_pairs(&mut self) -> BipartiteCandidates {
        self.refresh_tcell_lists();
        crate::topology::with_scratch(self, retrieve_pairs_via)
    }

    /// Retrieves every valid pair by brute force (no cell pruning), used to
    /// measure the index's benefit (Figure 17(b)) and to validate it.
    pub fn retrieve_valid_pairs_bruteforce(&self) -> BipartiteCandidates {
        // lint:allow(D001): collected here, sorted on the next line
        let mut tasks: Vec<Task> = self.tasks.values().copied().collect();
        tasks.sort_by_key(|t| t.id);
        // lint:allow(D001): collected here, sorted on the next line
        let mut workers: Vec<Worker> = self.workers.values().copied().collect();
        workers.sort_by_key(|w| w.id);
        bruteforce_pairs(
            tasks.iter().copied(),
            workers.iter().copied(),
            self.depart_at,
            self.allow_wait,
            self.id_capacity(),
        )
    }

    /// Rebuilds a dense [`ProblemInstance`] view of the live tasks and
    /// workers, together with the mapping from the dense ids back to the live
    /// ids. Tasks and workers appear in ascending id order, so the view is
    /// deterministic.
    pub fn to_instance(&self, beta: f64) -> (ProblemInstance, rdbsc_model::instance::SubInstanceMapping) {
        // lint:allow(D001): collected here, sorted on the next line
        let mut tasks: Vec<Task> = self.tasks.values().copied().collect();
        tasks.sort_by_key(|t| t.id);
        // lint:allow(D001): collected here, sorted on the next line
        let mut workers: Vec<Worker> = self.workers.values().copied().collect();
        workers.sort_by_key(|w| w.id);
        let mapping = rdbsc_model::instance::SubInstanceMapping {
            tasks: tasks.iter().map(|t| t.id).collect(),
            workers: workers.iter().map(|w| w.id).collect(),
        };
        let mut instance = ProblemInstance::new(tasks, workers, beta);
        instance.depart_at = self.depart_at;
        instance.allow_wait = self.allow_wait;
        (instance, mapping)
    }

    /// Summary statistics (requires the `tcell_list`s to be fresh; call
    /// [`refresh_tcell_lists`](Self::refresh_tcell_lists) first when in
    /// doubt).
    pub fn stats(&self) -> GridStats {
        let worker_cells: Vec<&Cell> = self.cells.iter().filter(|c| c.has_workers()).collect();
        let task_cells = self.cells.iter().filter(|c| c.has_tasks()).count();
        let total_tcell: usize = worker_cells.iter().map(|c| c.tcell_list.len()).sum();
        let avg = if worker_cells.is_empty() {
            0.0
        } else {
            total_tcell as f64 / worker_cells.len() as f64
        };
        let possible = worker_cells.len() * task_cells;
        let pruned_fraction = if possible == 0 {
            0.0
        } else {
            1.0 - total_tcell as f64 / possible as f64
        };
        GridStats {
            eta: self.geometry.eta(),
            cells_per_axis: self.geometry.cells_per_axis(),
            num_cells: self.cells.len(),
            num_tasks: self.tasks.len(),
            num_workers: self.workers.len(),
            avg_tcell_len: avg,
            pruned_fraction,
        }
    }
}

/// The cost-model `η` for an instance: `L_max` from the maximum distance any
/// worker can cover before the latest deadline, `N` from the task count.
/// Shared by both backends' `from_instance` constructors.
pub(crate) fn instance_eta(instance: &ProblemInstance) -> f64 {
    let latest_deadline = instance
        .tasks
        .iter()
        .map(|t| t.window.end)
        .fold(0.0f64, f64::max);
    let l_max = instance
        .workers
        .iter()
        .map(|w| w.motion().max_travel_distance(instance.depart_at, latest_deadline))
        .fold(0.0f64, f64::max)
        .min(1.0);
    let params = CostModelParams::uniform(l_max.max(1e-3), instance.num_tasks().max(2));
    optimal_eta(&params)
}

impl CellTopology for GridIndex {
    fn depart_at(&self) -> f64 {
        self.depart_at
    }
    fn allow_wait(&self) -> bool {
        self.allow_wait
    }
    fn num_cells(&self) -> usize {
        self.cells.len()
    }
    fn worker_cell_indices(&self) -> Vec<usize> {
        self.worker_cell_set.iter().copied().collect()
    }
    fn tcell_list_of(&self, cell: usize) -> &[usize] {
        &self.cells[cell].tcell_list
    }
    fn task_ids_of(&self, cell: usize) -> &[TaskId] {
        &self.cells[cell].tasks
    }
    fn worker_ids_of(&self, cell: usize) -> &[WorkerId] {
        &self.cells[cell].workers
    }
    fn fill_cell_workers(&self, cell: usize, out: &mut Vec<Worker>) {
        out.extend(self.cells[cell].workers.iter().map(|id| self.workers[id]));
    }
    fn fill_cell_tasks(&self, cell: usize, out: &mut Vec<Task>) {
        out.extend(self.cells[cell].tasks.iter().map(|id| self.tasks[id]));
    }
    fn task_by_id(&self, id: TaskId) -> Task {
        self.tasks[&id]
    }
    fn worker_by_id(&self, id: WorkerId) -> Worker {
        self.workers[&id]
    }
    fn candidate_capacity(&self) -> (usize, usize) {
        self.id_capacity()
    }
    fn take_scratch(&mut self) -> PairScratch {
        std::mem::take(&mut self.scratch)
    }
    fn put_scratch(&mut self, scratch: PairScratch) {
        self.scratch = scratch;
    }
}

impl SpatialIndex for GridIndex {
    fn backend_name(&self) -> &'static str {
        "grid"
    }
    fn depart_at(&self) -> f64 {
        self.depart_at
    }
    fn set_depart_at(&mut self, at: f64) {
        self.depart_at = at;
    }
    fn allow_wait(&self) -> bool {
        self.allow_wait
    }
    fn set_allow_wait(&mut self, allow: bool) {
        self.allow_wait = allow;
    }
    fn num_tasks(&self) -> usize {
        self.num_tasks()
    }
    fn num_workers(&self) -> usize {
        self.num_workers()
    }
    fn task(&self, id: TaskId) -> Option<&Task> {
        self.task(id)
    }
    fn worker(&self, id: WorkerId) -> Option<&Worker> {
        self.worker(id)
    }
    fn expired_tasks(&self, now: f64) -> Vec<TaskId> {
        self.expired_tasks(now)
    }
    fn live_tasks(&self) -> Vec<Task> {
        // lint:allow(D001): collected here, sorted on the next line
        let mut tasks: Vec<Task> = self.tasks.values().copied().collect();
        tasks.sort_by_key(|t| t.id);
        tasks
    }
    fn live_workers(&self) -> Vec<Worker> {
        // lint:allow(D001): collected here, sorted on the next line
        let mut workers: Vec<Worker> = self.workers.values().copied().collect();
        workers.sort_by_key(|w| w.id);
        workers
    }
    fn insert_task(&mut self, task: Task) {
        self.insert_task(task);
    }
    fn remove_task(&mut self, id: TaskId) {
        self.remove_task(id);
    }
    fn relocate_task(&mut self, id: TaskId, to: Point) {
        self.relocate_task(id, to);
    }
    fn insert_worker(&mut self, worker: Worker) {
        self.insert_worker(worker);
    }
    fn remove_worker(&mut self, id: WorkerId) {
        self.remove_worker(id);
    }
    fn relocate_worker(&mut self, id: WorkerId, to: Point) {
        self.relocate_worker(id, to);
    }
    fn refresh(&mut self) -> usize {
        self.refresh_tcell_lists()
    }
    fn retrieve_valid_pairs(&mut self) -> BipartiteCandidates {
        self.retrieve_valid_pairs()
    }
    fn retrieve_valid_pairs_bruteforce(&self) -> BipartiteCandidates {
        self.retrieve_valid_pairs_bruteforce()
    }
    fn extract_shards(&mut self, beta: f64) -> Vec<ProblemShard> {
        self.extract_shards(beta)
    }
    fn maintenance_counters(&self) -> MaintenanceCounters {
        self.counters
    }
}

use crate::shard::ProblemShard;

#[cfg(test)]
mod tests {
    use super::*;
    use rdbsc_geo::AngleRange;
    use rdbsc_model::{Confidence, TimeWindow};
    use std::f64::consts::PI;

    fn task(id: u32, x: f64, y: f64, start: f64, end: f64) -> Task {
        Task::new(
            TaskId(id),
            Point::new(x, y),
            TimeWindow::new(start, end).unwrap(),
        )
    }

    fn worker(id: u32, x: f64, y: f64, speed: f64, heading: AngleRange) -> Worker {
        Worker::new(
            WorkerId(id),
            Point::new(x, y),
            speed,
            heading,
            Confidence::new(0.9).unwrap(),
        )
        .unwrap()
    }

    fn small_instance() -> ProblemInstance {
        let tasks = vec![
            task(0, 0.2, 0.2, 0.0, 5.0),
            task(1, 0.8, 0.8, 0.0, 5.0),
            task(2, 0.8, 0.2, 0.0, 0.5),
        ];
        let workers = vec![
            worker(0, 0.1, 0.1, 0.5, AngleRange::full()),
            worker(1, 0.9, 0.9, 0.5, AngleRange::from_bounds(PI, 1.5 * PI)),
            worker(2, 0.5, 0.5, 0.05, AngleRange::full()),
        ];
        ProblemInstance::new(tasks, workers, 0.5)
    }

    #[test]
    fn grid_geometry_and_cell_lookup() {
        let g = GridIndex::new(Rect::unit(), 0.25);
        assert_eq!(g.num_cells(), 16);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), 0);
        assert_eq!(g.cell_of(Point::new(0.99, 0.99)), 15);
        // Points outside the space are clamped.
        assert_eq!(g.cell_of(Point::new(2.0, 2.0)), 15);
        assert_eq!(g.cell_of(Point::new(-1.0, -1.0)), 0);
    }

    #[test]
    fn eta_is_clamped_to_a_sane_number_of_cells() {
        let g = GridIndex::new(Rect::unit(), 1e-9);
        assert!(g.num_cells() <= 1024 * 1024);
        let g = GridIndex::new(Rect::unit(), 10.0);
        assert_eq!(g.num_cells(), 1);
    }

    #[test]
    fn index_retrieval_matches_bruteforce() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.2);
        let with_index = index.retrieve_valid_pairs();
        let brute = index.retrieve_valid_pairs_bruteforce();
        let mut a: Vec<(TaskId, WorkerId)> =
            with_index.pairs.iter().map(|p| (p.task, p.worker)).collect();
        let mut b: Vec<(TaskId, WorkerId)> =
            brute.pairs.iter().map(|p| (p.task, p.worker)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "index retrieval must agree with brute force");
        // And with the model-level brute force over the instance.
        let model = rdbsc_model::compute_valid_pairs(&instance);
        let mut c: Vec<(TaskId, WorkerId)> =
            model.pairs.iter().map(|p| (p.task, p.worker)).collect();
        c.sort();
        assert_eq!(a, c);
    }

    #[test]
    fn dynamic_insert_and_remove_keep_retrieval_correct() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);

        // Remove a worker: its pairs must disappear.
        index.remove_worker(WorkerId(0));
        let pairs = index.retrieve_valid_pairs();
        assert!(pairs.pairs.iter().all(|p| p.worker != WorkerId(0)));
        assert_eq!(index.num_workers(), 2);

        // Re-insert it: pairs must come back and match brute force.
        index.insert_worker(instance.workers[0]);
        let with_index = index.retrieve_valid_pairs();
        let brute = index.retrieve_valid_pairs_bruteforce();
        assert_eq!(with_index.num_pairs(), brute.num_pairs());

        // Remove a task.
        index.remove_task(TaskId(1));
        let pairs = index.retrieve_valid_pairs();
        assert!(pairs.pairs.iter().all(|p| p.task != TaskId(1)));
        assert_eq!(index.num_tasks(), 2);

        // Insert a brand-new task next to the slow worker.
        index.insert_task(task(3, 0.5, 0.5, 0.0, 10.0));
        let pairs = index.retrieve_valid_pairs();
        assert!(
            pairs.pairs.iter().any(|p| p.task == TaskId(3) && p.worker == WorkerId(2)),
            "the slow worker sits on the new task and must be able to serve it"
        );
        let brute = index.retrieve_valid_pairs_bruteforce();
        assert_eq!(pairs.num_pairs(), brute.num_pairs());
    }

    #[test]
    fn replacing_a_worker_updates_its_cell() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);
        // Move worker 0 to the opposite corner with a new heading.
        let moved = worker(0, 0.95, 0.95, 0.5, AngleRange::from_bounds(PI, 1.5 * PI));
        index.insert_worker(moved);
        assert_eq!(index.num_workers(), 3);
        let with_index = index.retrieve_valid_pairs();
        let brute = index.retrieve_valid_pairs_bruteforce();
        assert_eq!(with_index.num_pairs(), brute.num_pairs());
    }

    #[test]
    fn relocations_keep_retrieval_correct() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);
        // Worker 1 walks to the south-west corner in several small steps
        // (some within the same cell, some crossing cells).
        for step in 0..6 {
            let t = step as f64 / 5.0;
            index.relocate_worker(WorkerId(1), Point::new(0.9 - 0.8 * t, 0.9 - 0.8 * t));
            let pairs = index.retrieve_valid_pairs();
            let brute = index.retrieve_valid_pairs_bruteforce();
            assert_eq!(pairs.num_pairs(), brute.num_pairs(), "worker step {step}");
        }
        // A task drifts across the space too.
        for step in 0..4 {
            let t = step as f64 / 3.0;
            index.relocate_task(TaskId(0), Point::new(0.2 + 0.6 * t, 0.2));
            let pairs = index.retrieve_valid_pairs();
            let brute = index.retrieve_valid_pairs_bruteforce();
            assert_eq!(pairs.num_pairs(), brute.num_pairs(), "task step {step}");
        }
        // Relocating unknown ids is a no-op.
        index.relocate_worker(WorkerId(99), Point::new(0.5, 0.5));
        index.relocate_task(TaskId(99), Point::new(0.5, 0.5));
        assert_eq!(index.num_workers(), 3);
        assert_eq!(index.num_tasks(), 3);
        // Cross-cell moves were counted.
        assert!(index.maintenance_counters().relocations >= 4);
    }

    #[test]
    fn targeted_task_updates_do_not_trigger_full_rebuilds() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);
        index.refresh_tcell_lists();

        // A task insertion far from everything marks one task cell dirty; the
        // refresh touches at most the worker cells (membership re-decision),
        // and a second refresh touches nothing.
        index.insert_task(task(7, 0.05, 0.95, 0.0, 50.0));
        let touched = index.refresh_tcell_lists();
        assert!(touched <= 3, "targeted update touched {touched} cells");
        assert_eq!(index.refresh_tcell_lists(), 0);
    }

    #[test]
    fn pruning_actually_prunes_far_unreachable_cells() {
        // A slow worker in one corner and a short-deadline task in the other:
        // the task's cell must not appear in the worker's tcell_list.
        let tasks = vec![task(0, 0.95, 0.95, 0.0, 0.1)];
        let workers = vec![worker(0, 0.05, 0.05, 0.1, AngleRange::full())];
        let instance = ProblemInstance::new(tasks, workers, 0.5);
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.1);
        index.refresh_tcell_lists();
        let stats = index.stats();
        assert_eq!(stats.avg_tcell_len, 0.0, "unreachable task cell must be pruned");
        assert!(index.retrieve_valid_pairs().pairs.is_empty());
    }

    #[test]
    fn angular_pruning_drops_cells_behind_the_worker() {
        // Worker heading strictly east; a task far to the west is open for a
        // long time (so the time test alone cannot prune it).
        let tasks = vec![task(0, 0.05, 0.5, 0.0, 100.0), task(1, 0.95, 0.5, 0.0, 100.0)];
        let workers = vec![worker(0, 0.5, 0.5, 0.5, AngleRange::from_bounds(-0.3, 0.3))];
        let instance = ProblemInstance::new(tasks, workers, 0.5);
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.1);
        let pairs = index.retrieve_valid_pairs();
        assert_eq!(pairs.num_pairs(), 1);
        assert_eq!(pairs.pairs[0].task, TaskId(1));
        let stats = index.stats();
        assert!(stats.pruned_fraction > 0.0);
    }

    #[test]
    fn from_instance_uses_cost_model_eta() {
        let instance = small_instance();
        let index = GridIndex::from_instance(&instance);
        assert!(index.eta() > 0.0 && index.eta() <= 1.0);
        assert_eq!(index.num_tasks(), 3);
        assert_eq!(index.num_workers(), 3);
    }

    #[test]
    fn stats_report_counts() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);
        index.refresh_tcell_lists();
        let stats = index.stats();
        assert_eq!(stats.num_tasks, 3);
        assert_eq!(stats.num_workers, 3);
        assert_eq!(stats.num_cells, 16);
        assert!(stats.avg_tcell_len >= 1.0);
    }

    #[test]
    fn to_instance_round_trips_live_objects() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);
        index.remove_task(TaskId(1));
        let (view, mapping) = index.to_instance(0.5);
        assert_eq!(view.num_tasks(), 2);
        assert_eq!(view.num_workers(), 3);
        // Dense ids map back to the surviving live ids, in order.
        assert_eq!(mapping.tasks, vec![TaskId(0), TaskId(2)]);
        assert_eq!(view.tasks[1].location, instance.tasks[2].location);
    }

    #[test]
    fn rewinding_depart_at_rebuilds_the_cached_reachability() {
        // Regression test: the lists were built under a late departure that
        // prunes the task; moving the departure back must re-grow them.
        let tasks = vec![task(0, 0.9, 0.5, 0.0, 1.0)];
        let workers = vec![worker(0, 0.1, 0.5, 1.0, AngleRange::full())];
        let instance = ProblemInstance::new(tasks, workers, 0.5);
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);
        index.depart_at = 2.0; // past the deadline: nothing reachable
        assert_eq!(index.retrieve_valid_pairs().num_pairs(), 0);
        index.depart_at = 0.0; // rewind: the pair is reachable again
        assert_eq!(
            index.retrieve_valid_pairs().num_pairs(),
            index.retrieve_valid_pairs_bruteforce().num_pairs(),
        );
        assert_eq!(index.retrieve_valid_pairs().num_pairs(), 1);
    }

    #[test]
    fn expired_tasks_are_reported() {
        let instance = small_instance();
        let index = GridIndex::from_instance_with_eta(&instance, 0.25);
        assert!(index.expired_tasks(0.0).is_empty());
        assert_eq!(index.expired_tasks(1.0), vec![TaskId(2)]);
        assert_eq!(
            index.expired_tasks(10.0),
            vec![TaskId(0), TaskId(1), TaskId(2)]
        );
    }

    #[test]
    fn maintenance_counters_accumulate() {
        let instance = small_instance();
        let mut index = GridIndex::from_instance_with_eta(&instance, 0.25);
        let before = index.maintenance_counters();
        index.refresh_tcell_lists();
        let after = index.maintenance_counters();
        let delta = after.delta_since(&before);
        assert!(delta.tcell_rebuilds > 0, "initial refresh rebuilds lists");
        assert!(delta.cells_repaired >= delta.tcell_rebuilds);
        // A second refresh with no changes repairs nothing.
        let idle = index.maintenance_counters();
        index.refresh_tcell_lists();
        assert_eq!(index.maintenance_counters(), idle);
    }
}
