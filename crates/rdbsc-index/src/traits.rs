//! The pluggable spatial-index abstraction.
//!
//! [`SpatialIndex`] covers the full maintenance + query surface the online
//! engine uses: incremental inserts/removals/relocations of tasks and
//! workers, candidate-pair generation with cell-level pruning,
//! connected-component shard extraction, and maintenance-cost counters. Any
//! backend implementing it can be dropped into
//! `rdbsc_platform::AssignmentEngine`, the serving stack and the benches
//! without touching them.
//!
//! Two backends ship today:
//!
//! * [`crate::GridIndex`] — the paper's RDB-SC-Grid (Section 7): `BTreeSet`
//!   occupancy sets, eager per-event summary repair, dirty-cell `tcell_list`
//!   maintenance.
//! * [`crate::FlatGridIndex`] — a flat dense-grid backend in the spirit of
//!   `flat_spatial`: slot-arena object storage behind generational handles,
//!   O(1) cross-cell relocation, *lazy* cell-summary repair batched into
//!   [`SpatialIndex::refresh`], and reachability-list rebuilds skipped when a
//!   repaired summary turns out unchanged.
//!
//! **Determinism contract.** For the same `(space, η)` and the same live
//! object set, every backend must produce the *identical* candidate-pair
//! sequence from [`SpatialIndex::retrieve_valid_pairs`] and the identical
//! shard decomposition from [`SpatialIndex::extract_shards`] — element order
//! included. The engine's byte-for-byte reproducibility across backends
//! rests on this; the cross-backend property tests enforce it.

use crate::shard::ProblemShard;
use rdbsc_geo::Point;
use rdbsc_model::valid_pairs::BipartiteCandidates;
use rdbsc_model::{ProblemInstance, Task, TaskId, Worker, WorkerId};

/// Cumulative maintenance-cost counters of a spatial index.
///
/// All counters are monotone over the index's lifetime; use
/// [`MaintenanceCounters::delta_since`] to get per-tick figures (the engine
/// does this and reports the delta in its `TickReport`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceCounters {
    /// Cross-cell relocations applied (same-cell moves are free and not
    /// counted).
    pub relocations: u64,
    /// Cells whose cached reachability state was repaired during a refresh
    /// (full `tcell_list` rebuilds plus targeted membership edits).
    pub cells_repaired: u64,
    /// Full `tcell_list` rebuilds performed (each costs one reachability
    /// test per task-bearing cell).
    pub tcell_rebuilds: u64,
}

impl MaintenanceCounters {
    /// The work done since `earlier` (saturating, so a stale snapshot never
    /// underflows).
    pub fn delta_since(&self, earlier: &MaintenanceCounters) -> MaintenanceCounters {
        MaintenanceCounters {
            relocations: self.relocations.saturating_sub(earlier.relocations),
            cells_repaired: self.cells_repaired.saturating_sub(earlier.cells_repaired),
            tcell_rebuilds: self.tcell_rebuilds.saturating_sub(earlier.tcell_rebuilds),
        }
    }
}

/// A dynamically maintained spatial index over moving workers and
/// time-constrained tasks.
///
/// See the [module docs](self) for the backend line-up and the determinism
/// contract. The trait is object-safe; [`DynSpatialIndex`] is the boxed form
/// the server uses to pick a backend at runtime.
///
/// # Examples
///
/// Drive either backend through the common surface:
///
/// ```
/// use rdbsc_geo::{AngleRange, Point, Rect};
/// use rdbsc_index::{FlatGridIndex, GridIndex, SpatialIndex};
/// use rdbsc_model::{Confidence, Task, TaskId, TimeWindow, Worker, WorkerId};
///
/// fn serve<I: SpatialIndex>(index: &mut I) -> usize {
///     index.insert_task(Task::new(
///         TaskId(0),
///         Point::new(0.6, 0.6),
///         TimeWindow::new(0.0, 10.0).unwrap(),
///     ));
///     index.insert_worker(
///         Worker::new(
///             WorkerId(0),
///             Point::new(0.5, 0.5),
///             0.5,
///             AngleRange::full(),
///             Confidence::new(0.9).unwrap(),
///         )
///         .unwrap(),
///     );
///     // An O(1) cross-cell relocation, then pruned candidate retrieval.
///     index.relocate_worker(WorkerId(0), Point::new(0.3, 0.3));
///     index.retrieve_valid_pairs().num_pairs()
/// }
///
/// let mut grid = GridIndex::new(Rect::unit(), 0.25);
/// let mut flat = FlatGridIndex::new(Rect::unit(), 0.25);
/// assert_eq!(serve(&mut grid), 1);
/// assert_eq!(serve(&mut flat), 1);
/// assert_eq!(grid.maintenance_counters().relocations, 1);
/// ```
pub trait SpatialIndex: Send {
    /// A short, stable backend identifier (`"grid"`, `"flat-grid"`), exposed
    /// on the server's `/metrics` and snapshot endpoints.
    fn backend_name(&self) -> &'static str;

    /// Time at which assignments depart (workers leave no earlier).
    fn depart_at(&self) -> f64;

    /// Sets the departure time. Moving it *backwards* grows reachability, so
    /// backends must detect the rewind and rebuild their cached pruning
    /// state on the next [`SpatialIndex::refresh`].
    fn set_depart_at(&mut self, at: f64);

    /// Whether early-arriving workers may wait for a task's window to open.
    fn allow_wait(&self) -> bool;

    /// Sets the waiting policy.
    fn set_allow_wait(&mut self, allow: bool);

    /// Number of live (indexed) tasks.
    fn num_tasks(&self) -> usize;

    /// Number of live (indexed) workers.
    fn num_workers(&self) -> usize;

    /// The live task with the given id, if indexed.
    fn task(&self, id: TaskId) -> Option<&Task>;

    /// The live worker with the given id, if indexed.
    fn worker(&self, id: WorkerId) -> Option<&Worker>;

    /// Ids of the live tasks whose valid period has ended at time `now`,
    /// in ascending id order.
    fn expired_tasks(&self, now: f64) -> Vec<TaskId>;

    /// Every live task, in ascending id order. Checkpointing uses this to
    /// capture the full indexed state; rebuilding an index by re-inserting
    /// the returned set reproduces identical query results (the determinism
    /// contract is content-based, not history-based).
    fn live_tasks(&self) -> Vec<Task>;

    /// Every live worker, in ascending id order (see
    /// [`SpatialIndex::live_tasks`]).
    fn live_workers(&self) -> Vec<Worker>;

    /// Inserts (or replaces) a task.
    fn insert_task(&mut self, task: Task);

    /// Removes a task (no-op when absent).
    fn remove_task(&mut self, id: TaskId);

    /// Moves a live task to a new location (no-op when absent).
    fn relocate_task(&mut self, id: TaskId, to: Point);

    /// Inserts (or replaces) a worker.
    fn insert_worker(&mut self, worker: Worker);

    /// Removes a worker (no-op when absent).
    fn remove_worker(&mut self, id: WorkerId);

    /// Moves a live worker to a new location (no-op when absent).
    fn relocate_worker(&mut self, id: WorkerId, to: Point);

    /// Brings every cached summary and reachability list up to date and
    /// returns the number of cells whose reachability state was repaired.
    /// Called implicitly by the retrieval entry points.
    fn refresh(&mut self) -> usize;

    /// Retrieves every valid task-and-worker pair using the index's
    /// cell-level pruning, in the backend-independent deterministic order.
    fn retrieve_valid_pairs(&mut self) -> BipartiteCandidates;

    /// Retrieves every valid pair by brute force (no pruning); used to
    /// validate the index and to measure its benefit.
    fn retrieve_valid_pairs_bruteforce(&self) -> BipartiteCandidates;

    /// Partitions the live instance into independent spatial shards — the
    /// connected components of the cell-reachability relation — each
    /// packaged as a dense sub-instance with its valid pairs.
    fn extract_shards(&mut self, beta: f64) -> Vec<ProblemShard>;

    /// The cumulative maintenance-cost counters.
    fn maintenance_counters(&self) -> MaintenanceCounters;
}

/// A boxed, dynamically chosen spatial index (the server's engine type).
pub type DynSpatialIndex = Box<dyn SpatialIndex>;

impl<I: SpatialIndex + ?Sized> SpatialIndex for Box<I> {
    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }
    fn depart_at(&self) -> f64 {
        (**self).depart_at()
    }
    fn set_depart_at(&mut self, at: f64) {
        (**self).set_depart_at(at);
    }
    fn allow_wait(&self) -> bool {
        (**self).allow_wait()
    }
    fn set_allow_wait(&mut self, allow: bool) {
        (**self).set_allow_wait(allow);
    }
    fn num_tasks(&self) -> usize {
        (**self).num_tasks()
    }
    fn num_workers(&self) -> usize {
        (**self).num_workers()
    }
    fn task(&self, id: TaskId) -> Option<&Task> {
        (**self).task(id)
    }
    fn worker(&self, id: WorkerId) -> Option<&Worker> {
        (**self).worker(id)
    }
    fn expired_tasks(&self, now: f64) -> Vec<TaskId> {
        (**self).expired_tasks(now)
    }
    fn live_tasks(&self) -> Vec<Task> {
        (**self).live_tasks()
    }
    fn live_workers(&self) -> Vec<Worker> {
        (**self).live_workers()
    }
    fn insert_task(&mut self, task: Task) {
        (**self).insert_task(task);
    }
    fn remove_task(&mut self, id: TaskId) {
        (**self).remove_task(id);
    }
    fn relocate_task(&mut self, id: TaskId, to: Point) {
        (**self).relocate_task(id, to);
    }
    fn insert_worker(&mut self, worker: Worker) {
        (**self).insert_worker(worker);
    }
    fn remove_worker(&mut self, id: WorkerId) {
        (**self).remove_worker(id);
    }
    fn relocate_worker(&mut self, id: WorkerId, to: Point) {
        (**self).relocate_worker(id, to);
    }
    fn refresh(&mut self) -> usize {
        (**self).refresh()
    }
    fn retrieve_valid_pairs(&mut self) -> BipartiteCandidates {
        (**self).retrieve_valid_pairs()
    }
    fn retrieve_valid_pairs_bruteforce(&self) -> BipartiteCandidates {
        (**self).retrieve_valid_pairs_bruteforce()
    }
    fn extract_shards(&mut self, beta: f64) -> Vec<ProblemShard> {
        (**self).extract_shards(beta)
    }
    fn maintenance_counters(&self) -> MaintenanceCounters {
        (**self).maintenance_counters()
    }
}

/// Loads a problem instance into an (empty) index: copies the departure time
/// and waiting policy, then inserts every task and worker.
pub fn populate_from_instance<I: SpatialIndex + ?Sized>(
    index: &mut I,
    instance: &ProblemInstance,
) {
    index.set_depart_at(instance.depart_at);
    index.set_allow_wait(instance.allow_wait);
    for task in &instance.tasks {
        index.insert_task(*task);
    }
    for worker in &instance.workers {
        index.insert_worker(*worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_deltas_saturate() {
        let earlier = MaintenanceCounters {
            relocations: 5,
            cells_repaired: 2,
            tcell_rebuilds: 1,
        };
        let later = MaintenanceCounters {
            relocations: 9,
            cells_repaired: 2,
            tcell_rebuilds: 4,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.relocations, 4);
        assert_eq!(delta.cells_repaired, 0);
        assert_eq!(delta.tcell_rebuilds, 3);
        // A stale (newer) snapshot saturates instead of wrapping.
        assert_eq!(earlier.delta_since(&later).relocations, 0);
    }
}
