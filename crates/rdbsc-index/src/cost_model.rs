//! The cost model guiding the choice of the grid cell side `η`
//! (Appendix I of the paper).
//!
//! The update cost of the RDB-SC-Grid index has two parts (Eq. 22):
//!
//! 1. the number of cells in the reachable area of a worker,
//!    `π·(L_max + η)² / η²`, and
//! 2. the expected number of tasks in that area, estimated through the
//!    correlation fractal dimension `D₂` of the task distribution
//!    (Belussi–Faloutsos power law): `(N − 1)·(π·(L_max + η)²)^{D₂/2}`.
//!
//! The optimal `η` minimises the sum. Because the second term does not
//! depend on `η` once `η ≪ L_max`, the minimiser satisfies Eq. 23; this
//! module solves it numerically (and also offers a simple grid-search
//! minimiser of the full cost, used as a cross-check in tests).

use crate::traits::DynSpatialIndex;
use rdbsc_geo::{Point, Rect};

/// The spatial-index backends the system can run on (see
/// [`crate::SpatialIndex`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexBackend {
    /// The paper's RDB-SC-Grid ([`crate::GridIndex`]): `BTreeSet` occupancy
    /// sets and eager per-event summary repair.
    Grid,
    /// The flat dense grid ([`crate::FlatGridIndex`]): slot-arena storage,
    /// O(1) relocation, lazy batched summary repair.
    FlatGrid,
}

impl IndexBackend {
    /// The backend's stable name, matching
    /// [`crate::SpatialIndex::backend_name`].
    pub fn name(&self) -> &'static str {
        match self {
            IndexBackend::Grid => "grid",
            IndexBackend::FlatGrid => "flat-grid",
        }
    }

    /// Parses a backend name (`"grid"` / `"flat-grid"`, with `"flat"`
    /// accepted as an alias).
    pub fn parse(name: &str) -> Option<IndexBackend> {
        match name {
            "grid" => Some(IndexBackend::Grid),
            "flat-grid" | "flat" => Some(IndexBackend::FlatGrid),
            _ => None,
        }
    }

    /// Builds an empty boxed index of this backend over `space` with cell
    /// side `eta`.
    pub fn build(&self, space: Rect, eta: f64) -> DynSpatialIndex {
        match self {
            IndexBackend::Grid => Box::new(crate::GridIndex::new(space, eta)),
            IndexBackend::FlatGrid => Box::new(crate::FlatGridIndex::new(space, eta)),
        }
    }
}

/// The workload shape the backend-selection heuristic reads: how crowded the
/// cells are and how hard the objects churn.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// Expected live objects (tasks + workers) per *occupied* cell.
    pub objects_per_cell: f64,
    /// Expected cross-cell relocations per object per engine tick (1.0 =
    /// every object changes cell every tick; 0.0 = static).
    pub churn_per_object: f64,
}

/// Picks the index backend for a workload: **object density × churn rate**.
///
/// The grid backend pays `O(cell population)` eager summary repair plus
/// occupancy-set churn on *every* cross-cell move, so its per-tick
/// maintenance cost scales with `density × churn`. The flat backend batches
/// repair per touched cell and relocates in O(1), but carries slightly more
/// fixed machinery (occupancy compaction, dirty lists) that near-static
/// sparse workloads never amortise. The crossover is well below one repaired
/// object per cell per tick, so anything that *moves* should run flat; the
/// classic grid remains the choice for mostly-static snapshot analysis.
pub fn choose_backend(profile: &WorkloadProfile) -> IndexBackend {
    let score = profile.objects_per_cell.max(0.0) * profile.churn_per_object.max(0.0);
    if score >= 0.05 {
        IndexBackend::FlatGrid
    } else {
        IndexBackend::Grid
    }
}

/// Parameters of the grid cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModelParams {
    /// Maximum moving distance of workers (`L_max`), from movement history.
    pub l_max: f64,
    /// Number of tasks `N` in the data space.
    pub num_tasks: usize,
    /// Correlation fractal dimension `D₂` of the task distribution
    /// (2.0 for uniformly distributed tasks).
    pub d2: f64,
}

impl CostModelParams {
    /// Parameters for a uniform task distribution (`D₂ = 2`).
    pub fn uniform(l_max: f64, num_tasks: usize) -> Self {
        Self {
            l_max,
            num_tasks,
            d2: 2.0,
        }
    }
}

/// The index update cost for a given cell side `η` (Eq. 22).
pub fn update_cost(eta: f64, params: &CostModelParams) -> f64 {
    let reach_area = std::f64::consts::PI * (params.l_max + eta).powi(2);
    let cells = reach_area / (eta * eta);
    let tasks = (params.num_tasks.saturating_sub(1)) as f64 * reach_area.powf(params.d2 / 2.0);
    cells + tasks
}

/// Solves Eq. 23 for the optimal cell side `η` by bisection on the residual
/// `(L_max + η)^{D₂−2}·η³ − 2π^{1−D₂/2}·L_max / (D₂·(N−1))`, which is
/// monotonically increasing in `η`.
///
/// Falls back to the uniform-data closed form `η = (L_max / (N−1))^{1/3}`
/// when the instance is degenerate (fewer than 2 tasks or a non-positive
/// `L_max`).
pub fn optimal_eta(params: &CostModelParams) -> f64 {
    let n = params.num_tasks;
    if n < 2 || params.l_max <= 0.0 {
        return fallback_eta(params);
    }
    let d2 = params.d2.clamp(0.5, 2.0);
    let rhs = 2.0 * std::f64::consts::PI.powf(1.0 - d2 / 2.0) * params.l_max
        / (d2 * (n as f64 - 1.0));
    let residual = |eta: f64| (params.l_max + eta).powf(d2 - 2.0) * eta.powi(3) - rhs;

    // Bracket the root: the residual is negative at 0⁺ and grows without
    // bound, so expand the upper bound until it is positive.
    let mut lo = 1e-9;
    let mut hi = params.l_max.max(1e-3);
    let mut guard = 0;
    while residual(hi) < 0.0 && guard < 64 {
        hi *= 2.0;
        guard += 1;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if residual(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let eta = 0.5 * (lo + hi);
    if eta.is_finite() && eta > 0.0 {
        eta
    } else {
        fallback_eta(params)
    }
}

/// The closed-form `η = (L_max / (N−1))^{1/3}` used when no movement history
/// is available (uniform assumption, `D₂ = 2`).
pub fn fallback_eta(params: &CostModelParams) -> f64 {
    let n = params.num_tasks.max(2) as f64;
    let l = if params.l_max > 0.0 { params.l_max } else { 0.1 };
    (l / (n - 1.0)).cbrt()
}

/// Grid-search minimiser of [`update_cost`], used to sanity-check
/// [`optimal_eta`] in tests and available to callers who prefer the direct
/// minimisation.
pub fn optimal_eta_grid_search(params: &CostModelParams, candidates: usize) -> f64 {
    let lo: f64 = 1e-4;
    let hi: f64 = 1.0;
    let mut best_eta = fallback_eta(params);
    let mut best_cost = update_cost(best_eta, params);
    for i in 0..candidates.max(2) {
        // log-spaced candidates
        let t = i as f64 / (candidates.max(2) - 1) as f64;
        let eta = lo * (hi / lo).powf(t);
        let cost = update_cost(eta, params);
        if cost < best_cost {
            best_cost = cost;
            best_eta = eta;
        }
    }
    best_eta
}

/// Estimates the correlation fractal dimension `D₂` of a point set by box
/// counting: for a sequence of grid sides `r`, compute `S(r) = Σ c_i²` over
/// the occupancy counts `c_i` of the boxes and fit the slope of
/// `log S(r)` against `log r` (Belussi–Faloutsos).
///
/// Returns 2.0 (uniform) when fewer than two distinct scales are available or
/// the fit degenerates.
pub fn estimate_fractal_dimension(points: &[Point], space: Rect) -> f64 {
    if points.len() < 8 {
        return 2.0;
    }
    let scales: [usize; 5] = [4, 8, 16, 32, 64];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &cells_per_axis in &scales {
        let r = space.width().max(space.height()) / cells_per_axis as f64;
        if r <= 0.0 {
            continue;
        }
        let mut counts = vec![0u32; cells_per_axis * cells_per_axis];
        for p in points {
            let cx = (((p.x - space.min_x) / space.width().max(1e-12)) * cells_per_axis as f64)
                .clamp(0.0, cells_per_axis as f64 - 1.0) as usize;
            let cy = (((p.y - space.min_y) / space.height().max(1e-12)) * cells_per_axis as f64)
                .clamp(0.0, cells_per_axis as f64 - 1.0) as usize;
            counts[cy * cells_per_axis + cx] += 1;
        }
        let s: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
        if s > 0.0 {
            xs.push(r.ln());
            ys.push(s.ln());
        }
    }
    if xs.len() < 2 {
        return 2.0;
    }
    // Least-squares slope of log S vs log r.
    let n = xs.len() as f64;
    let mean_x: f64 = xs.iter().sum::<f64>() / n;
    let mean_y: f64 = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        num += (x - mean_x) * (y - mean_y);
        den += (x - mean_x) * (x - mean_x);
    }
    if den <= 0.0 {
        return 2.0;
    }
    let slope = num / den;
    // For the correlation sum, S(r) ∝ r^{D₂}; clamp to the meaningful range.
    slope.clamp(0.1, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_choice_follows_density_times_churn() {
        // Static snapshot analysis: the classic grid.
        let static_profile = WorkloadProfile {
            objects_per_cell: 20.0,
            churn_per_object: 0.0,
        };
        assert_eq!(choose_backend(&static_profile), IndexBackend::Grid);
        // Sparse near-static serving: still grid.
        let sparse = WorkloadProfile {
            objects_per_cell: 0.5,
            churn_per_object: 0.05,
        };
        assert_eq!(choose_backend(&sparse), IndexBackend::Grid);
        // Worker-movement-heavy serving: flat.
        let heavy = WorkloadProfile {
            objects_per_cell: 4.0,
            churn_per_object: 0.5,
        };
        assert_eq!(choose_backend(&heavy), IndexBackend::FlatGrid);
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in [IndexBackend::Grid, IndexBackend::FlatGrid] {
            assert_eq!(IndexBackend::parse(backend.name()), Some(backend));
        }
        assert_eq!(IndexBackend::parse("flat"), Some(IndexBackend::FlatGrid));
        assert_eq!(IndexBackend::parse("r-tree"), None);
    }

    #[test]
    fn built_backends_report_their_names() {
        use crate::SpatialIndex;
        for backend in [IndexBackend::Grid, IndexBackend::FlatGrid] {
            let index = backend.build(Rect::unit(), 0.25);
            assert_eq!(index.backend_name(), backend.name());
        }
    }

    #[test]
    fn update_cost_decreases_then_increases_in_eta() {
        let params = CostModelParams::uniform(0.1, 10_000);
        let tiny = update_cost(1e-4, &params);
        let opt = update_cost(optimal_eta(&params), &params);
        let huge = update_cost(1.0, &params);
        assert!(opt <= tiny);
        assert!(opt <= huge);
    }

    #[test]
    fn optimal_eta_matches_closed_form_for_uniform_data() {
        // With D₂ = 2, Eq. 23 reduces to η³ = L_max / (N − 1).
        let params = CostModelParams::uniform(0.2, 5_000);
        let eta = optimal_eta(&params);
        let closed = (0.2f64 / 4_999.0).cbrt();
        assert!(
            (eta - closed).abs() / closed < 1e-3,
            "eta {eta} vs closed form {closed}"
        );
    }

    #[test]
    fn optimal_eta_is_near_the_grid_search_minimum() {
        let params = CostModelParams {
            l_max: 0.15,
            num_tasks: 2_000,
            d2: 1.6,
        };
        let eta = optimal_eta(&params);
        let grid = optimal_eta_grid_search(&params, 400);
        let c_eta = update_cost(eta, &params);
        let c_grid = update_cost(grid, &params);
        // the analytic optimum should not be worse than the grid search by
        // more than a small relative margin
        assert!(c_eta <= c_grid * 1.05, "cost {c_eta} vs grid {c_grid}");
    }

    #[test]
    fn degenerate_inputs_fall_back() {
        let params = CostModelParams::uniform(0.0, 0);
        let eta = optimal_eta(&params);
        assert!(eta > 0.0 && eta.is_finite());
        let params = CostModelParams::uniform(-1.0, 100);
        assert!(optimal_eta(&params) > 0.0);
    }

    #[test]
    fn fractal_dimension_of_uniform_grid_is_near_two() {
        let mut pts = Vec::new();
        for i in 0..64 {
            for j in 0..64 {
                pts.push(Point::new(
                    (i as f64 + 0.5) / 64.0,
                    (j as f64 + 0.5) / 64.0,
                ));
            }
        }
        let d2 = estimate_fractal_dimension(&pts, Rect::unit());
        assert!(d2 > 1.6, "uniform grid should have D2 near 2, got {d2}");
    }

    #[test]
    fn fractal_dimension_of_a_line_is_near_one() {
        let pts: Vec<Point> = (0..4096)
            .map(|i| Point::new(i as f64 / 4096.0, 0.5))
            .collect();
        let d2 = estimate_fractal_dimension(&pts, Rect::unit());
        assert!(d2 < 1.5, "points on a line should have D2 near 1, got {d2}");
    }

    #[test]
    fn fractal_dimension_handles_tiny_inputs() {
        assert_eq!(estimate_fractal_dimension(&[], Rect::unit()), 2.0);
        let few = vec![Point::new(0.5, 0.5); 3];
        assert_eq!(estimate_fractal_dimension(&few, Rect::unit()), 2.0);
    }
}
