//! # rdbsc-index
//!
//! The cost-model-based grid index (**RDB-SC-Grid**, Section 7 of the paper)
//! with incremental maintenance and spatial sharding.
//!
//! The index partitions the data space into square cells of side `η`, stores
//! per-cell task and worker lists together with summary bounds (maximum
//! worker speed, angular hull of worker headings, latest task deadline), and
//! maintains for every cell a `tcell_list` — the cells that are *reachable*
//! for at least one of its workers. Cell-level pruning (minimum inter-cell
//! distance over maximum speed vs. the latest deadline, plus an angular-hull
//! test) keeps the lists small, which makes retrieving the valid
//! task-and-worker pairs much cheaper than the brute-force `O(m·n)` scan.
//!
//! Three capabilities build on that structure:
//!
//! * **Incremental maintenance** ([`grid`]): inserts, removals and
//!   relocations touch one or two cells via reverse maps, and `tcell_list`s
//!   are repaired through dirty-cell tracking instead of full rebuilds — a
//!   burst of task churn costs `O(worker_cells · changed_cells)`.
//! * **Cost-model `η` selection** ([`cost_model`]): the cell side is chosen
//!   by minimising the expected update cost of Appendix I, estimated through
//!   the correlation fractal dimension (power law) of the task distribution.
//! * **Spatial sharding** ([`shard`]): the connected components of the
//!   cell-reachability relation partition the live instance into independent
//!   sub-problems that the online engine solves in parallel.
//!
//! ## Example
//!
//! Maintain an index under churn and retrieve exactly the valid pairs:
//!
//! ```
//! use rdbsc_geo::{AngleRange, Point, Rect};
//! use rdbsc_index::GridIndex;
//! use rdbsc_model::{Confidence, Task, TaskId, TimeWindow, Worker, WorkerId};
//!
//! let mut index = GridIndex::new(Rect::unit(), 0.25);
//! index.insert_task(Task::new(
//!     TaskId(0),
//!     Point::new(0.3, 0.3),
//!     TimeWindow::new(0.0, 4.0).unwrap(),
//! ));
//! index.insert_worker(
//!     Worker::new(
//!         WorkerId(0),
//!         Point::new(0.25, 0.25),
//!         0.4,
//!         AngleRange::full(),
//!         Confidence::new(0.95).unwrap(),
//!     )
//!     .unwrap(),
//! );
//!
//! // Retrieval agrees with brute force, here and after any maintenance.
//! assert_eq!(
//!     index.retrieve_valid_pairs().num_pairs(),
//!     index.retrieve_valid_pairs_bruteforce().num_pairs(),
//! );
//!
//! // Incremental churn: the worker walks, the task expires.
//! index.relocate_worker(WorkerId(0), Point::new(0.5, 0.5));
//! index.remove_task(TaskId(0));
//! assert_eq!(index.retrieve_valid_pairs().num_pairs(), 0);
//!
//! // Independent sub-problems for the parallel engine.
//! let shards = index.extract_shards(0.5);
//! assert!(shards.is_empty(), "no tasks left, nothing to shard");
//! ```

pub mod cost_model;
pub mod grid;
pub mod shard;

pub use cost_model::{estimate_fractal_dimension, optimal_eta, update_cost, CostModelParams};
pub use grid::{GridIndex, GridStats};
pub use shard::ProblemShard;
