//! # rdbsc-index
//!
//! The cost-model-based grid index (**RDB-SC-Grid**, Section 7 of the paper).
//!
//! The index partitions the data space into square cells of side `η`, stores
//! per-cell task and worker lists together with summary bounds (maximum
//! worker speed, angular hull of worker headings, latest task deadline), and
//! maintains for every cell a `tcell_list` — the cells that are *reachable*
//! for at least one of its workers. Cell-level pruning (minimum inter-cell
//! distance over maximum speed vs. the latest deadline, plus an angular-hull
//! test) keeps the lists small, which makes retrieving the valid
//! task-and-worker pairs much cheaper than the brute-force `O(m·n)` scan.
//!
//! The cell side `η` is chosen by the cost model of Appendix I: the expected
//! update cost combines the number of cells in the reachable area with the
//! expected number of tasks in it, estimated through the correlation fractal
//! dimension (power law) of the task distribution.

pub mod cost_model;
pub mod grid;

pub use cost_model::{estimate_fractal_dimension, optimal_eta, update_cost, CostModelParams};
pub use grid::{GridIndex, GridStats};
