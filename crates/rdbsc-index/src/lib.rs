//! # rdbsc-index
//!
//! The pluggable spatial-index layer: a [`SpatialIndex`] trait covering the
//! full maintenance + query surface the online engine uses, with two
//! backends — the paper's cost-model-based grid (**RDB-SC-Grid**, Section 7)
//! and a flat dense grid optimised for worker-movement-heavy workloads —
//! plus incremental maintenance and spatial sharding shared across them.
//!
//! Every backend partitions the data space into square cells of side `η`,
//! stores per-cell task and worker lists together with summary bounds
//! (maximum worker speed, angular hull of worker headings, latest task
//! deadline), and maintains for every cell a `tcell_list` — the cells that
//! are *reachable* for at least one of its workers. Cell-level pruning
//! (minimum inter-cell distance over maximum speed vs. the latest deadline,
//! plus an angular-hull test) keeps the lists small, which makes retrieving
//! the valid task-and-worker pairs much cheaper than the brute-force
//! `O(m·n)` scan.
//!
//! The capabilities on top of that structure:
//!
//! * **The [`SpatialIndex`] abstraction** ([`traits`]): insert/remove/
//!   relocate tasks and workers, pruned candidate retrieval, shard
//!   extraction and maintenance counters — backend-generic, with a
//!   cross-backend determinism contract (identical candidate sequences and
//!   shard decompositions for the same live state).
//! * **Two backends**: [`GridIndex`] ([`grid`]) with `BTreeSet` occupancy
//!   sets and eager per-event summary repair, and [`FlatGridIndex`]
//!   ([`flat`]) with slot-arena storage behind generational handles, O(1)
//!   relocation and lazy batched summary repair.
//! * **Cost-model `η` and backend selection** ([`cost_model`]): the cell
//!   side is chosen by minimising the expected update cost of Appendix I
//!   (via the correlation fractal dimension of the task distribution), and
//!   [`choose_backend`] picks a backend from object density × churn rate.
//! * **Spatial sharding** ([`shard`]): the connected components of the
//!   cell-reachability relation partition the live instance into independent
//!   sub-problems that the online engine solves in parallel.
//!
//! ## Example
//!
//! Maintain an index under churn and retrieve exactly the valid pairs:
//!
//! ```
//! use rdbsc_geo::{AngleRange, Point, Rect};
//! use rdbsc_index::GridIndex;
//! use rdbsc_model::{Confidence, Task, TaskId, TimeWindow, Worker, WorkerId};
//!
//! let mut index = GridIndex::new(Rect::unit(), 0.25);
//! index.insert_task(Task::new(
//!     TaskId(0),
//!     Point::new(0.3, 0.3),
//!     TimeWindow::new(0.0, 4.0).unwrap(),
//! ));
//! index.insert_worker(
//!     Worker::new(
//!         WorkerId(0),
//!         Point::new(0.25, 0.25),
//!         0.4,
//!         AngleRange::full(),
//!         Confidence::new(0.95).unwrap(),
//!     )
//!     .unwrap(),
//! );
//!
//! // Retrieval agrees with brute force, here and after any maintenance.
//! assert_eq!(
//!     index.retrieve_valid_pairs().num_pairs(),
//!     index.retrieve_valid_pairs_bruteforce().num_pairs(),
//! );
//!
//! // Incremental churn: the worker walks, the task expires.
//! index.relocate_worker(WorkerId(0), Point::new(0.5, 0.5));
//! index.remove_task(TaskId(0));
//! assert_eq!(index.retrieve_valid_pairs().num_pairs(), 0);
//!
//! // Independent sub-problems for the parallel engine.
//! let shards = index.extract_shards(0.5);
//! assert!(shards.is_empty(), "no tasks left, nothing to shard");
//! ```
//!
//! Swap [`FlatGridIndex`] in for the same behaviour with a different cost
//! profile — see the [`SpatialIndex`] docs for the shared surface.

#![deny(missing_docs)]

pub mod cost_model;
pub mod flat;
pub mod geometry;
pub mod grid;
pub mod shard;
mod topology;
pub mod traits;

pub use cost_model::{
    choose_backend, estimate_fractal_dimension, optimal_eta, update_cost, CostModelParams,
    IndexBackend, WorkloadProfile,
};
pub use flat::FlatGridIndex;
pub use grid::{GridIndex, GridStats};
pub use shard::ProblemShard;
pub use traits::{
    populate_from_instance, DynSpatialIndex, MaintenanceCounters, SpatialIndex,
};
