//! The backend-shared cell-level machinery: summaries, the conservative
//! cell-pair reachability test, and allocation-free candidate generation.
//!
//! Both grid backends expose their cells through [`CellTopology`]; the
//! reachability predicate, the candidate-pair enumeration and the shard
//! extraction are written once against it, so the retrieval paths of the two
//! backends cannot drift. The hot candidate loop reuses one [`PairScratch`]
//! (owned by the index, threaded through by `&mut`) instead of allocating
//! per-cell worker/task vectors on every tick.

use rdbsc_geo::{AngleRange, Rect};
use rdbsc_model::valid_pairs::{check_pair, BipartiteCandidates, ValidPair};
use rdbsc_model::{Contribution, Task, TaskId, Worker, WorkerId};

/// The cached worker-side summary of one cell: everything the reachability
/// test reads about the *source* cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct WorkerCellSummary {
    /// Maximum speed over the workers in the cell (`v_max(cellᵢ)`).
    pub v_max: f64,
    /// Earliest check-in time over the workers in the cell.
    pub min_available_from: f64,
    /// Angular hull of the workers' heading cones (`None` when no workers).
    pub heading_hull: Option<AngleRange>,
}

impl WorkerCellSummary {
    pub(crate) const EMPTY: WorkerCellSummary = WorkerCellSummary {
        v_max: 0.0,
        min_available_from: f64::INFINITY,
        heading_hull: None,
    };

    /// Recomputes the summary from scratch over a worker set.
    pub(crate) fn compute<'a>(workers: impl Iterator<Item = &'a Worker>) -> Self {
        let mut summary = Self::EMPTY;
        for worker in workers {
            summary.absorb(worker);
        }
        summary
    }

    /// Folds one worker into the summary.
    pub(crate) fn absorb(&mut self, worker: &Worker) {
        self.v_max = self.v_max.max(worker.speed);
        self.min_available_from = self.min_available_from.min(worker.available_from);
        self.heading_hull = Some(match self.heading_hull {
            Some(hull) => hull.union_hull(&worker.heading),
            None => worker.heading,
        });
    }

}

/// The cached task-side summary of one cell: everything the reachability
/// test reads about the *target* cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TaskCellSummary {
    /// Latest deadline over the tasks in the cell (`e_max`), `-∞` when empty.
    pub e_max: f64,
    /// Earliest start over the tasks in the cell (`s_min`), `+∞` when empty.
    pub s_min: f64,
}

impl TaskCellSummary {
    pub(crate) const EMPTY: TaskCellSummary = TaskCellSummary {
        e_max: f64::NEG_INFINITY,
        s_min: f64::INFINITY,
    };

    /// Recomputes the summary from scratch over a task set.
    pub(crate) fn compute<'a>(tasks: impl Iterator<Item = &'a Task>) -> Self {
        let mut summary = Self::EMPTY;
        for task in tasks {
            summary.absorb(task);
        }
        summary
    }

    /// Folds one task into the summary.
    pub(crate) fn absorb(&mut self, task: &Task) {
        self.e_max = self.e_max.max(task.window.end);
        self.s_min = self.s_min.min(task.window.start);
    }

    /// Whether the cell holds at least one task. Task windows are finite, so
    /// emptiness is encoded by the `-∞` sentinel.
    pub(crate) fn has_tasks(&self) -> bool {
        self.e_max > f64::NEG_INFINITY
    }
}

/// Can any worker of the `from` cell possibly serve any task of the `to`
/// cell?
///
/// Conservative: never prunes a reachable pair. Combines the paper's
/// minimum-travel-time test (`d_min / v_max` vs. latest deadline) with an
/// angular-hull test on the workers' heading cones. Shared verbatim by both
/// backends so their `tcell_list`s stay byte-identical.
pub(crate) fn cell_pair_reachable(
    depart_at: f64,
    from_rect: &Rect,
    from: &WorkerCellSummary,
    to_rect: &Rect,
    to: &TaskCellSummary,
) -> bool {
    if !to.has_tasks() {
        return false;
    }
    let Some(hull) = from.heading_hull else {
        return false; // no workers
    };
    // Minimum possible arrival time at the target cell.
    let depart = depart_at.max(from.min_available_from);
    let d_min = from_rect.min_distance(to_rect);
    if d_min > 0.0 {
        if from.v_max <= 0.0 {
            return false;
        }
        let t_min = depart + d_min / from.v_max;
        if t_min > to.e_max {
            return false;
        }
        // Angular pruning: the directions towards the target cell must
        // overlap the workers' heading hull.
        let directions = from_rect.direction_range_to(to_rect);
        if !hull.intersects(&directions) {
            return false;
        }
    } else {
        // Overlapping or identical cells: a worker may be arbitrarily close
        // to (or on top of) a task, so never prune; still require the
        // deadline to be in the future.
        if depart > to.e_max {
            return false;
        }
    }
    true
}

/// Reusable buffers for the candidate-generation hot path. Owned by each
/// index and threaded through by `&mut`, so steady-state retrieval does no
/// per-cell allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct PairScratch {
    workers: Vec<Worker>,
    tasks: Vec<Task>,
}

/// The cell-level view a backend exposes to the shared retrieval and shard
/// extraction. All orderings are ascending (cell indices and object ids), so
/// the shared code is deterministic and backend-independent.
pub(crate) trait CellTopology {
    /// Departure time the retrieval runs under.
    fn depart_at(&self) -> f64;
    /// Whether early arrivals may wait for a window to open.
    fn allow_wait(&self) -> bool;
    /// Total number of cells.
    fn num_cells(&self) -> usize;
    /// Cells currently holding at least one worker, ascending.
    fn worker_cell_indices(&self) -> Vec<usize>;
    /// The cell's reachable task-bearing cells, ascending. Only valid after
    /// a refresh.
    fn tcell_list_of(&self, cell: usize) -> &[usize];
    /// Ids of the tasks in a cell, ascending.
    fn task_ids_of(&self, cell: usize) -> &[TaskId];
    /// Ids of the workers in a cell, ascending.
    fn worker_ids_of(&self, cell: usize) -> &[WorkerId];
    /// Appends the cell's workers to `out` in ascending id order.
    fn fill_cell_workers(&self, cell: usize, out: &mut Vec<Worker>);
    /// Appends the cell's tasks to `out` in ascending id order.
    fn fill_cell_tasks(&self, cell: usize, out: &mut Vec<Task>);
    /// A live task by id (panics on an internal inconsistency).
    fn task_by_id(&self, id: TaskId) -> Task;
    /// A live worker by id (panics on an internal inconsistency).
    fn worker_by_id(&self, id: WorkerId) -> Worker;
    /// `(max task id + 1, max worker id + 1)` over the live objects, used to
    /// size the candidate graph.
    fn candidate_capacity(&self) -> (usize, usize);
    /// Takes the index's reusable candidate-generation buffers (see
    /// [`with_scratch`]).
    fn take_scratch(&mut self) -> PairScratch;
    /// Returns the buffers after use so the next retrieval reuses them.
    fn put_scratch(&mut self, scratch: PairScratch);
}

/// Runs `f` with the index's scratch buffers temporarily taken out, so the
/// closure can hold `&C` and `&mut PairScratch` simultaneously.
pub(crate) fn with_scratch<C: CellTopology + ?Sized, R>(
    index: &mut C,
    f: impl FnOnce(&C, &mut PairScratch) -> R,
) -> R {
    let mut scratch = index.take_scratch();
    let result = f(index, &mut scratch);
    index.put_scratch(scratch);
    result
}

/// Runs the exact per-pair check over the cell-pruned candidates of the
/// given worker cells (their `tcell_list`s must be fresh), feeding each
/// valid pair to `sink`. Shared by [`retrieve_pairs_via`] and the shard
/// extraction so the two retrieval paths cannot drift, and shared by both
/// backends so their candidate *order* is identical.
pub(crate) fn for_each_cell_pruned_pair<C: CellTopology + ?Sized, F>(
    index: &C,
    worker_cells: &[usize],
    scratch: &mut PairScratch,
    mut sink: F,
) where
    F: FnMut(&Task, &Worker, Contribution),
{
    let depart_at = index.depart_at();
    let allow_wait = index.allow_wait();
    for &i in worker_cells {
        // Materialise the cell's workers and the reachable cells' tasks
        // once into the scratch buffers, so the inner loop does no hash
        // lookups and steady state does no allocation.
        scratch.workers.clear();
        index.fill_cell_workers(i, &mut scratch.workers);
        for &j in index.tcell_list_of(i) {
            scratch.tasks.clear();
            index.fill_cell_tasks(j, &mut scratch.tasks);
            for worker in &scratch.workers {
                for task in &scratch.tasks {
                    if let Some(contribution) = check_pair(task, worker, depart_at, allow_wait) {
                        sink(task, worker, contribution);
                    }
                }
            }
        }
    }
}

/// Retrieves every valid pair through the cell-pruned path (the shared body
/// of `SpatialIndex::retrieve_valid_pairs`). The caller must have refreshed
/// the index.
pub(crate) fn retrieve_pairs_via<C: CellTopology + ?Sized>(
    index: &C,
    scratch: &mut PairScratch,
) -> BipartiteCandidates {
    let (task_cap, worker_cap) = index.candidate_capacity();
    let mut graph = BipartiteCandidates::with_capacity(task_cap, worker_cap);
    let worker_cells = index.worker_cell_indices();
    for_each_cell_pruned_pair(index, &worker_cells, scratch, |task, worker, contribution| {
        graph.push(ValidPair {
            task: task.id,
            worker: worker.id,
            contribution,
        });
    });
    graph
}

/// Brute-force retrieval over explicit object lists (the shared body of
/// `SpatialIndex::retrieve_valid_pairs_bruteforce`).
pub(crate) fn bruteforce_pairs(
    tasks: impl Iterator<Item = Task> + Clone,
    workers: impl Iterator<Item = Worker>,
    depart_at: f64,
    allow_wait: bool,
    capacity: (usize, usize),
) -> BipartiteCandidates {
    let mut graph = BipartiteCandidates::with_capacity(capacity.0, capacity.1);
    for worker in workers {
        for task in tasks.clone() {
            if let Some(contribution) = check_pair(&task, &worker, depart_at, allow_wait) {
                graph.push(ValidPair {
                    task: task.id,
                    worker: worker.id,
                    contribution,
                });
            }
        }
    }
    graph
}
