//! A flat dense-grid backend optimised for worker-movement-heavy workloads.
//!
//! [`FlatGridIndex`] keeps the RDB-SC-Grid cell layout (shared
//! [`crate::geometry`]) but swaps the bookkeeping around it, following the
//! design of high-throughput flat spatial grids (dense cell storage,
//! generational handles, O(1) relocation):
//!
//! * **Slot-arena object storage.** Tasks and workers live in dense `Vec`
//!   slot arenas behind *generational handles*; a handle resolves to its
//!   object (and its current cell) in O(1) with no hashing, cells store
//!   `(id, slot)` pairs so the candidate-generation hot path reads objects
//!   straight out of the arena, and freed slots are recycled without
//!   invalidating later handles.
//! * **O(1) relocation without BTree churn.** A cross-cell move updates the
//!   slot's cell pointer and the two membership vectors — no `BTreeSet`
//!   occupancy updates (occupancy lists are compacted lazily) and no eager
//!   summary recomputation.
//! * **Lazy cell-summary repair.** Maintenance events only *mark* cells
//!   dirty; [`SpatialIndex::refresh`] recomputes each dirty cell's summary
//!   once, however many events touched it — a burst of moves through one
//!   cell costs one repair instead of one per event. Reachability-list
//!   rebuilds are further skipped when the repaired summary turns out
//!   unchanged (the list is a pure function of the summaries, so an
//!   unchanged summary proves the list is still exact).
//!
//! The backend honours the cross-backend determinism contract (see
//! [`crate::traits`]): for the same `(space, η)` and live state it yields
//! candidate sequences and shard decompositions identical to
//! [`crate::GridIndex`]'s.

use crate::geometry::GridGeometry;
use crate::shard::{extract_shards_via, ProblemShard};
use crate::topology::{
    bruteforce_pairs, cell_pair_reachable, retrieve_pairs_via, with_scratch, CellTopology,
    PairScratch, TaskCellSummary, WorkerCellSummary,
};
use crate::traits::{MaintenanceCounters, SpatialIndex};
use rdbsc_geo::{Point, Rect};
use rdbsc_model::valid_pairs::BipartiteCandidates;
use rdbsc_model::{ProblemInstance, Task, TaskId, Worker, WorkerId};
use std::collections::HashMap;

/// A generational handle into a [`SlotArena`]: the slot position plus the
/// generation it was allocated under, so a recycled slot cannot be touched
/// through a stale handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotHandle {
    index: u32,
    generation: u32,
}

#[derive(Debug, Clone)]
struct Slot<T> {
    value: Option<T>,
    /// The cell currently holding the object (meaningless when free).
    cell: u32,
    generation: u32,
}

/// Dense object storage with O(1) insert/lookup/remove and slot recycling.
#[derive(Debug, Clone)]
struct SlotArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
}

impl<T> Default for SlotArena<T> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T: Copy> SlotArena<T> {
    fn insert(&mut self, value: T, cell: u32) -> SlotHandle {
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.value = Some(value);
            slot.cell = cell;
            SlotHandle {
                index,
                generation: slot.generation,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                value: Some(value),
                cell,
                generation: 0,
            });
            SlotHandle {
                index,
                generation: 0,
            }
        }
    }

    fn remove(&mut self, handle: SlotHandle) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        Some(value)
    }

    fn get(&self, handle: SlotHandle) -> Option<&T> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_ref()
    }

    fn get_mut(&mut self, handle: SlotHandle) -> Option<&mut Slot<T>> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation || slot.value.is_none() {
            return None;
        }
        Some(slot)
    }

    /// The live value at a raw slot position (cells only store live slots).
    fn value_at(&self, index: u32) -> &T {
        self.slots[index as usize]
            .value
            .as_ref()
            .expect("cell membership points at a live slot")
    }

    /// Iterates over the live values in slot order (deterministic).
    fn live_values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.value.as_ref())
    }
}

/// Ascending cell-occupancy list with deferred (lazy) removal: emptied cells
/// are only dropped at the next [`OccupancyList::compact`].
#[derive(Debug, Clone, Default)]
struct OccupancyList {
    cells: Vec<usize>,
    stale: bool,
}

impl OccupancyList {
    fn insert(&mut self, cell: usize) {
        if let Err(pos) = self.cells.binary_search(&cell) {
            self.cells.insert(pos, cell);
        }
    }

    fn mark_stale(&mut self) {
        self.stale = true;
    }

    fn compact(&mut self, keep: impl Fn(usize) -> bool) {
        if self.stale {
            self.cells.retain(|&c| keep(c));
            self.stale = false;
        }
    }

    /// Ascending occupied cells; only exact after [`OccupancyList::compact`].
    fn as_slice(&self) -> &[usize] {
        &self.cells
    }
}

/// A set of dirty cells with O(1) dedup marking and sorted draining.
#[derive(Debug, Clone, Default)]
struct DirtyList {
    cells: Vec<usize>,
    flagged: Vec<bool>,
}

impl DirtyList {
    fn with_cells(n: usize) -> Self {
        Self {
            cells: Vec::new(),
            flagged: vec![false; n],
        }
    }

    fn mark(&mut self, cell: usize) {
        if !self.flagged[cell] {
            self.flagged[cell] = true;
            self.cells.push(cell);
        }
    }

    fn drain_sorted(&mut self) -> Vec<usize> {
        for &c in &self.cells {
            self.flagged[c] = false;
        }
        let mut cells = std::mem::take(&mut self.cells);
        cells.sort_unstable();
        cells
    }
}

/// One dense cell: `(id, slot)` membership in ascending id order, the cached
/// pruning summaries, and the reachability list.
#[derive(Debug, Clone)]
struct FlatCell {
    task_ids: Vec<TaskId>,
    task_slots: Vec<u32>,
    worker_ids: Vec<WorkerId>,
    worker_slots: Vec<u32>,
    worker_summary: WorkerCellSummary,
    task_summary: TaskCellSummary,
    tcell_list: Vec<usize>,
}

impl Default for FlatCell {
    fn default() -> Self {
        Self {
            task_ids: Vec::new(),
            task_slots: Vec::new(),
            worker_ids: Vec::new(),
            worker_slots: Vec::new(),
            worker_summary: WorkerCellSummary::EMPTY,
            task_summary: TaskCellSummary::EMPTY,
            tcell_list: Vec::new(),
        }
    }
}

fn attach<Id: Ord + Copy>(ids: &mut Vec<Id>, slots: &mut Vec<u32>, id: Id, slot: u32) {
    match ids.binary_search(&id) {
        Ok(pos) => slots[pos] = slot, // replaced object, same id
        Err(pos) => {
            ids.insert(pos, id);
            slots.insert(pos, slot);
        }
    }
}

fn detach<Id: Ord + Copy>(ids: &mut Vec<Id>, slots: &mut Vec<u32>, id: Id) {
    if let Ok(pos) = ids.binary_search(&id) {
        ids.remove(pos);
        slots.remove(pos);
    }
}

/// The flat dense-grid spatial index (see the [module docs](self)).
///
/// Construct it like [`crate::GridIndex`] and drive it through
/// [`SpatialIndex`]:
///
/// ```
/// use rdbsc_geo::{Point, Rect};
/// use rdbsc_index::{FlatGridIndex, SpatialIndex};
/// use rdbsc_model::{Task, TaskId, TimeWindow};
///
/// let mut index = FlatGridIndex::new(Rect::unit(), 0.25);
/// index.insert_task(Task::new(
///     TaskId(0),
///     Point::new(0.4, 0.4),
///     TimeWindow::new(0.0, 5.0).unwrap(),
/// ));
/// assert_eq!(index.num_tasks(), 1);
/// assert_eq!(index.backend_name(), "flat-grid");
/// ```
#[derive(Debug, Clone)]
pub struct FlatGridIndex {
    geometry: GridGeometry,
    cells: Vec<FlatCell>,
    tasks: SlotArena<Task>,
    workers: SlotArena<Worker>,
    task_handles: HashMap<TaskId, SlotHandle>,
    worker_handles: HashMap<WorkerId, SlotHandle>,
    occupied_task_cells: OccupancyList,
    occupied_worker_cells: OccupancyList,
    /// Cells whose worker summary may be stale (repaired lazily).
    dirty_worker_cells: DirtyList,
    /// Cells whose task summary may be stale (repaired lazily).
    dirty_task_cells: DirtyList,
    /// The `depart_at` the reachability lists were last refreshed under
    /// (rewinds grow reachability and force a full rebuild).
    tcell_depart_at: f64,
    depart_at: f64,
    allow_wait: bool,
    counters: MaintenanceCounters,
    scratch: PairScratch,
}

impl FlatGridIndex {
    /// Creates an empty index over `space` with cell side `eta` (clamped
    /// exactly like [`crate::GridIndex::new`], so the two backends always
    /// agree on the cell layout).
    pub fn new(space: Rect, eta: f64) -> Self {
        let geometry = GridGeometry::new(space, eta);
        let num_cells = geometry.num_cells();
        Self {
            geometry,
            cells: vec![FlatCell::default(); num_cells],
            tasks: SlotArena::default(),
            workers: SlotArena::default(),
            task_handles: HashMap::new(),
            worker_handles: HashMap::new(),
            occupied_task_cells: OccupancyList::default(),
            occupied_worker_cells: OccupancyList::default(),
            dirty_worker_cells: DirtyList::with_cells(num_cells),
            dirty_task_cells: DirtyList::with_cells(num_cells),
            tcell_depart_at: 0.0,
            depart_at: 0.0,
            allow_wait: true,
            counters: MaintenanceCounters::default(),
            scratch: PairScratch::default(),
        }
    }

    /// Builds an index for a problem instance with the cost-model `η` (the
    /// same choice [`crate::GridIndex::from_instance`] makes).
    pub fn from_instance(instance: &ProblemInstance) -> Self {
        let mut index = FlatGridIndex::new(Rect::unit(), crate::grid::instance_eta(instance));
        crate::traits::populate_from_instance(&mut index, instance);
        index
    }

    /// Builds an index for an instance with an explicit cell side.
    pub fn from_instance_with_eta(instance: &ProblemInstance, eta: f64) -> Self {
        let mut index = FlatGridIndex::new(Rect::unit(), eta);
        crate::traits::populate_from_instance(&mut index, instance);
        index
    }

    /// The cell side `η` actually in use.
    pub fn eta(&self) -> f64 {
        self.geometry.eta()
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn id_capacity(&self) -> (usize, usize) {
        let max_task = self
            // lint:allow(D001): max over keys — order-insensitive
            .task_handles
            .keys()
            .map(|t| t.index() + 1)
            .max()
            .unwrap_or(0);
        let max_worker = self
            // lint:allow(D001): max over keys — order-insensitive
            .worker_handles
            .keys()
            .map(|w| w.index() + 1)
            .max()
            .unwrap_or(0);
        (max_task, max_worker)
    }
}

impl SpatialIndex for FlatGridIndex {
    fn backend_name(&self) -> &'static str {
        "flat-grid"
    }

    fn depart_at(&self) -> f64 {
        self.depart_at
    }

    fn set_depart_at(&mut self, at: f64) {
        self.depart_at = at;
    }

    fn allow_wait(&self) -> bool {
        self.allow_wait
    }

    fn set_allow_wait(&mut self, allow: bool) {
        self.allow_wait = allow;
    }

    fn num_tasks(&self) -> usize {
        self.task_handles.len()
    }

    fn num_workers(&self) -> usize {
        self.worker_handles.len()
    }

    fn task(&self, id: TaskId) -> Option<&Task> {
        self.task_handles.get(&id).and_then(|h| self.tasks.get(*h))
    }

    fn worker(&self, id: WorkerId) -> Option<&Worker> {
        self.worker_handles
            .get(&id)
            .and_then(|h| self.workers.get(*h))
    }

    fn expired_tasks(&self, now: f64) -> Vec<TaskId> {
        let mut expired: Vec<TaskId> = self
            .tasks
            .live_values()
            .filter(|t| t.window.end < now)
            .map(|t| t.id)
            .collect();
        expired.sort();
        expired
    }

    fn live_tasks(&self) -> Vec<Task> {
        let mut tasks: Vec<Task> = self.tasks.live_values().copied().collect();
        tasks.sort_by_key(|t| t.id);
        tasks
    }

    fn live_workers(&self) -> Vec<Worker> {
        let mut workers: Vec<Worker> = self.workers.live_values().copied().collect();
        workers.sort_by_key(|w| w.id);
        workers
    }

    fn insert_task(&mut self, task: Task) {
        self.remove_task(task.id);
        let cell_idx = self.geometry.cell_of(task.location);
        let handle = self.tasks.insert(task, cell_idx as u32);
        self.task_handles.insert(task.id, handle);
        let cell = &mut self.cells[cell_idx];
        attach(&mut cell.task_ids, &mut cell.task_slots, task.id, handle.index);
        if cell.task_ids.len() == 1 {
            self.occupied_task_cells.insert(cell_idx);
        }
        self.dirty_task_cells.mark(cell_idx);
    }

    fn remove_task(&mut self, id: TaskId) {
        let Some(handle) = self.task_handles.remove(&id) else {
            return;
        };
        let cell_idx = self.tasks.slots[handle.index as usize].cell as usize;
        self.tasks.remove(handle);
        let cell = &mut self.cells[cell_idx];
        detach(&mut cell.task_ids, &mut cell.task_slots, id);
        if cell.task_ids.is_empty() {
            self.occupied_task_cells.mark_stale();
        }
        self.dirty_task_cells.mark(cell_idx);
    }

    fn relocate_task(&mut self, id: TaskId, to: Point) {
        let Some(&handle) = self.task_handles.get(&id) else {
            return;
        };
        let Some(slot) = self.tasks.get_mut(handle) else {
            return;
        };
        slot.value.as_mut().expect("live slot").location = to;
        let old_cell = slot.cell as usize;
        let new_cell = self.geometry.cell_of(to);
        if old_cell == new_cell {
            return; // summaries do not depend on the position inside the cell
        }
        self.counters.relocations += 1;
        slot.cell = new_cell as u32;
        let cell = &mut self.cells[old_cell];
        detach(&mut cell.task_ids, &mut cell.task_slots, id);
        if cell.task_ids.is_empty() {
            self.occupied_task_cells.mark_stale();
        }
        self.dirty_task_cells.mark(old_cell);
        let cell = &mut self.cells[new_cell];
        attach(&mut cell.task_ids, &mut cell.task_slots, id, handle.index);
        if cell.task_ids.len() == 1 {
            self.occupied_task_cells.insert(new_cell);
        }
        self.dirty_task_cells.mark(new_cell);
    }

    fn insert_worker(&mut self, worker: Worker) {
        self.remove_worker(worker.id);
        let cell_idx = self.geometry.cell_of(worker.location);
        let handle = self.workers.insert(worker, cell_idx as u32);
        self.worker_handles.insert(worker.id, handle);
        let cell = &mut self.cells[cell_idx];
        attach(
            &mut cell.worker_ids,
            &mut cell.worker_slots,
            worker.id,
            handle.index,
        );
        if cell.worker_ids.len() == 1 {
            self.occupied_worker_cells.insert(cell_idx);
        }
        self.dirty_worker_cells.mark(cell_idx);
    }

    fn remove_worker(&mut self, id: WorkerId) {
        let Some(handle) = self.worker_handles.remove(&id) else {
            return;
        };
        let cell_idx = self.workers.slots[handle.index as usize].cell as usize;
        self.workers.remove(handle);
        let cell = &mut self.cells[cell_idx];
        detach(&mut cell.worker_ids, &mut cell.worker_slots, id);
        if cell.worker_ids.is_empty() {
            self.occupied_worker_cells.mark_stale();
        }
        self.dirty_worker_cells.mark(cell_idx);
    }

    fn relocate_worker(&mut self, id: WorkerId, to: Point) {
        let Some(&handle) = self.worker_handles.get(&id) else {
            return;
        };
        let Some(slot) = self.workers.get_mut(handle) else {
            return;
        };
        slot.value.as_mut().expect("live slot").location = to;
        let old_cell = slot.cell as usize;
        let new_cell = self.geometry.cell_of(to);
        if old_cell == new_cell {
            return; // summaries do not depend on the position inside the cell
        }
        self.counters.relocations += 1;
        slot.cell = new_cell as u32;
        let cell = &mut self.cells[old_cell];
        detach(&mut cell.worker_ids, &mut cell.worker_slots, id);
        if cell.worker_ids.is_empty() {
            self.occupied_worker_cells.mark_stale();
        }
        self.dirty_worker_cells.mark(old_cell);
        let cell = &mut self.cells[new_cell];
        attach(&mut cell.worker_ids, &mut cell.worker_slots, id, handle.index);
        if cell.worker_ids.len() == 1 {
            self.occupied_worker_cells.insert(new_cell);
        }
        self.dirty_worker_cells.mark(new_cell);
    }

    fn refresh(&mut self) -> usize {
        // 1. Compact the lazily maintained occupancy lists.
        {
            let cells = &self.cells;
            self.occupied_task_cells
                .compact(|c| !cells[c].task_ids.is_empty());
            self.occupied_worker_cells
                .compact(|c| !cells[c].worker_ids.is_empty());
        }

        // 2. Lazy summary repair: each dirty cell is recomputed once, no
        // matter how many events touched it since the last refresh. A cell
        // whose repaired summary is *unchanged* provably needs no further
        // work — its reachability state is a pure function of the summaries.
        let mut rebuild: Vec<usize> = Vec::new();
        for c in self.dirty_worker_cells.drain_sorted() {
            let summary = WorkerCellSummary::compute(
                self.cells[c]
                    .worker_slots
                    .iter()
                    .map(|&s| self.workers.value_at(s)),
            );
            let cell = &mut self.cells[c];
            if cell.worker_summary != summary {
                cell.worker_summary = summary;
                rebuild.push(c);
            }
        }
        let mut changed_task_cells: Vec<usize> = Vec::new();
        for c in self.dirty_task_cells.drain_sorted() {
            let summary = TaskCellSummary::compute(
                self.cells[c]
                    .task_slots
                    .iter()
                    .map(|&s| self.tasks.value_at(s)),
            );
            let cell = &mut self.cells[c];
            if cell.task_summary != summary {
                cell.task_summary = summary;
                changed_task_cells.push(c);
            }
        }

        // 3. A departure rewind grows reachability: every worker cell's
        // cached list may be missing cells, so rebuild them all.
        if self.depart_at < self.tcell_depart_at {
            rebuild.extend(self.occupied_worker_cells.as_slice().iter().copied());
            rebuild.sort_unstable();
            rebuild.dedup();
        }
        self.tcell_depart_at = self.depart_at;

        // 4. Full list rebuilds for cells whose worker summary changed.
        let occupied_tasks: Vec<usize> = self.occupied_task_cells.as_slice().to_vec();
        let mut rebuilt = 0usize;
        for &c in &rebuild {
            if self.cells[c].worker_ids.is_empty() {
                self.cells[c].tcell_list.clear();
                continue;
            }
            let from_rect = self.geometry.rect_of(c);
            let from = self.cells[c].worker_summary;
            let mut list = std::mem::take(&mut self.cells[c].tcell_list);
            list.clear();
            for &j in &occupied_tasks {
                if cell_pair_reachable(
                    self.depart_at,
                    &from_rect,
                    &from,
                    &self.geometry.rect_of(j),
                    &self.cells[j].task_summary,
                ) {
                    list.push(j); // ascending: occupied_tasks is sorted
                }
            }
            self.cells[c].tcell_list = list;
            rebuilt += 1;
        }
        self.counters.tcell_rebuilds += rebuilt as u64;

        // 5. Targeted membership edits for cells whose task summary changed
        // (cells rebuilt above already saw the new task summaries).
        let occupied_workers: Vec<usize> = self.occupied_worker_cells.as_slice().to_vec();
        let mut edited: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for &j in &changed_task_cells {
            let to_rect = self.geometry.rect_of(j);
            let to = self.cells[j].task_summary;
            for &i in &occupied_workers {
                if rebuild.binary_search(&i).is_ok() {
                    continue; // already fully rebuilt above
                }
                let from_rect = self.geometry.rect_of(i);
                let reachable = cell_pair_reachable(
                    self.depart_at,
                    &from_rect,
                    &self.cells[i].worker_summary,
                    &to_rect,
                    &to,
                );
                let list = &mut self.cells[i].tcell_list;
                match (list.binary_search(&j), reachable) {
                    (Ok(_), true) | (Err(_), false) => {}
                    (Ok(pos), false) => {
                        list.remove(pos);
                        edited.insert(i);
                    }
                    (Err(pos), true) => {
                        list.insert(pos, j);
                        edited.insert(i);
                    }
                }
            }
        }

        let repaired = rebuilt + edited.len();
        self.counters.cells_repaired += repaired as u64;
        repaired
    }

    fn retrieve_valid_pairs(&mut self) -> BipartiteCandidates {
        self.refresh();
        with_scratch(self, retrieve_pairs_via)
    }

    fn retrieve_valid_pairs_bruteforce(&self) -> BipartiteCandidates {
        let mut tasks: Vec<Task> = self.tasks.live_values().copied().collect();
        tasks.sort_by_key(|t| t.id);
        let mut workers: Vec<Worker> = self.workers.live_values().copied().collect();
        workers.sort_by_key(|w| w.id);
        bruteforce_pairs(
            tasks.iter().copied(),
            workers.iter().copied(),
            self.depart_at,
            self.allow_wait,
            self.id_capacity(),
        )
    }

    fn extract_shards(&mut self, beta: f64) -> Vec<ProblemShard> {
        self.refresh();
        with_scratch(self, |index, scratch| {
            extract_shards_via(index, beta, scratch)
        })
    }

    fn maintenance_counters(&self) -> MaintenanceCounters {
        self.counters
    }
}

impl CellTopology for FlatGridIndex {
    fn depart_at(&self) -> f64 {
        self.depart_at
    }
    fn allow_wait(&self) -> bool {
        self.allow_wait
    }
    fn num_cells(&self) -> usize {
        self.cells.len()
    }
    fn worker_cell_indices(&self) -> Vec<usize> {
        self.occupied_worker_cells.as_slice().to_vec()
    }
    fn tcell_list_of(&self, cell: usize) -> &[usize] {
        &self.cells[cell].tcell_list
    }
    fn task_ids_of(&self, cell: usize) -> &[TaskId] {
        &self.cells[cell].task_ids
    }
    fn worker_ids_of(&self, cell: usize) -> &[WorkerId] {
        &self.cells[cell].worker_ids
    }
    fn fill_cell_workers(&self, cell: usize, out: &mut Vec<Worker>) {
        out.extend(
            self.cells[cell]
                .worker_slots
                .iter()
                .map(|&s| *self.workers.value_at(s)),
        );
    }
    fn fill_cell_tasks(&self, cell: usize, out: &mut Vec<Task>) {
        out.extend(
            self.cells[cell]
                .task_slots
                .iter()
                .map(|&s| *self.tasks.value_at(s)),
        );
    }
    fn task_by_id(&self, id: TaskId) -> Task {
        *self.tasks.get(self.task_handles[&id]).expect("live task")
    }
    fn worker_by_id(&self, id: WorkerId) -> Worker {
        *self.workers.get(self.worker_handles[&id]).expect("live worker")
    }
    fn candidate_capacity(&self) -> (usize, usize) {
        self.id_capacity()
    }
    fn take_scratch(&mut self) -> PairScratch {
        std::mem::take(&mut self.scratch)
    }
    fn put_scratch(&mut self, scratch: PairScratch) {
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbsc_geo::AngleRange;
    use rdbsc_model::{Confidence, TimeWindow};

    fn task(id: u32, x: f64, y: f64, start: f64, end: f64) -> Task {
        Task::new(
            TaskId(id),
            Point::new(x, y),
            TimeWindow::new(start, end).unwrap(),
        )
    }

    fn worker(id: u32, x: f64, y: f64, speed: f64) -> Worker {
        Worker::new(
            WorkerId(id),
            Point::new(x, y),
            speed,
            AngleRange::full(),
            Confidence::new(0.9).unwrap(),
        )
        .unwrap()
    }

    fn pair_set(graph: &BipartiteCandidates) -> Vec<(TaskId, WorkerId)> {
        let mut v: Vec<(TaskId, WorkerId)> =
            graph.pairs.iter().map(|p| (p.task, p.worker)).collect();
        v.sort();
        v
    }

    #[test]
    fn retrieval_matches_bruteforce_under_churn() {
        let mut index = FlatGridIndex::new(Rect::unit(), 0.2);
        for i in 0..12u32 {
            index.insert_task(task(i, (i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0, 0.0, 4.0));
        }
        for j in 0..12u32 {
            index.insert_worker(worker(j, (j as f64 * 0.53) % 1.0, (j as f64 * 0.29) % 1.0, 0.3));
        }
        assert_eq!(
            pair_set(&index.retrieve_valid_pairs()),
            pair_set(&index.retrieve_valid_pairs_bruteforce()),
        );
        // Churn: moves, removals, replacements — retrieval stays exact.
        for j in 0..12u32 {
            index.relocate_worker(WorkerId(j), Point::new((j as f64 * 0.71) % 1.0, 0.4));
        }
        index.remove_task(TaskId(3));
        index.remove_worker(WorkerId(5));
        index.insert_task(task(3, 0.9, 0.1, 0.0, 9.0));
        assert_eq!(
            pair_set(&index.retrieve_valid_pairs()),
            pair_set(&index.retrieve_valid_pairs_bruteforce()),
        );
    }

    #[test]
    fn generational_handles_survive_slot_recycling() {
        let mut index = FlatGridIndex::new(Rect::unit(), 0.25);
        index.insert_worker(worker(0, 0.2, 0.2, 0.5));
        index.remove_worker(WorkerId(0));
        // The freed slot is recycled for a different worker; the old id must
        // be gone and the new one intact.
        index.insert_worker(worker(7, 0.8, 0.8, 0.5));
        assert!(index.worker(WorkerId(0)).is_none());
        assert_eq!(index.worker(WorkerId(7)).unwrap().id, WorkerId(7));
        assert_eq!(index.num_workers(), 1);
        // Stale operations on the removed id are no-ops.
        index.relocate_worker(WorkerId(0), Point::new(0.5, 0.5));
        assert_eq!(index.num_workers(), 1);
    }

    #[test]
    fn lazy_repair_batches_a_burst_of_moves() {
        let mut index = FlatGridIndex::new(Rect::unit(), 0.25);
        index.insert_task(task(0, 0.9, 0.9, 0.0, 50.0));
        for j in 0..8u32 {
            index.insert_worker(worker(j, 0.1, 0.1, 0.5));
        }
        index.refresh();
        let before = index.maintenance_counters();
        // The whole crowd wanders inside one cell, then crosses into the
        // next: many events, but at most two cells' summaries to repair.
        for j in 0..8u32 {
            index.relocate_worker(WorkerId(j), Point::new(0.15, 0.12));
            index.relocate_worker(WorkerId(j), Point::new(0.3, 0.12));
        }
        let repaired = index.refresh();
        let delta = index.maintenance_counters().delta_since(&before);
        assert_eq!(delta.relocations, 8, "same-cell moves are free");
        assert!(repaired <= 2, "burst repaired {repaired} cells");
        // Identical retrieval afterwards.
        assert_eq!(
            pair_set(&index.retrieve_valid_pairs()),
            pair_set(&index.retrieve_valid_pairs_bruteforce()),
        );
    }

    #[test]
    fn unchanged_summaries_skip_tcell_rebuilds() {
        let mut index = FlatGridIndex::new(Rect::unit(), 0.25);
        index.insert_task(task(0, 0.9, 0.9, 0.0, 50.0));
        index.insert_worker(worker(0, 0.1, 0.1, 0.9));
        index.insert_worker(worker(1, 0.12, 0.1, 0.2)); // slower sibling
        index.refresh();
        let before = index.maintenance_counters();
        // The slow worker leaves the cell: v_max, hull and availability are
        // unchanged, so the cell's reachability list needs no rebuild (the
        // destination cell does: it just gained its first worker).
        index.relocate_worker(WorkerId(1), Point::new(0.4, 0.1));
        index.refresh();
        let delta = index.maintenance_counters().delta_since(&before);
        assert_eq!(delta.tcell_rebuilds, 1, "only the destination cell rebuilds");
    }

    #[test]
    fn rewinding_depart_at_rebuilds_the_cached_reachability() {
        let mut index = FlatGridIndex::new(Rect::unit(), 0.25);
        index.insert_task(task(0, 0.9, 0.5, 0.0, 1.0));
        index.insert_worker(worker(0, 0.1, 0.5, 1.0));
        index.set_depart_at(2.0); // past the deadline: nothing reachable
        assert_eq!(index.retrieve_valid_pairs().num_pairs(), 0);
        index.set_depart_at(0.0); // rewind: the pair is reachable again
        assert_eq!(index.retrieve_valid_pairs().num_pairs(), 1);
    }

    #[test]
    fn expired_tasks_are_reported_sorted() {
        let mut index = FlatGridIndex::new(Rect::unit(), 0.25);
        index.insert_task(task(2, 0.1, 0.1, 0.0, 0.5));
        index.insert_task(task(0, 0.2, 0.2, 0.0, 5.0));
        index.insert_task(task(1, 0.3, 0.3, 0.0, 0.5));
        assert!(index.expired_tasks(0.0).is_empty());
        assert_eq!(index.expired_tasks(1.0), vec![TaskId(1), TaskId(2)]);
    }
}
