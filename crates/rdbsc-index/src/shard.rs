//! Spatial sharding: decomposing the live index into independent
//! sub-problems.
//!
//! Two cells interact only when some worker of one can reach some task of
//! the other, i.e. when the target cell appears in the source cell's
//! `tcell_list`. The connected components of that reachability relation
//! therefore partition the instance into sub-problems that share **no valid
//! pair**: an assignment computed inside one shard can never conflict with,
//! or influence the objective of, another shard. The online engine solves
//! shards in parallel and merges the per-shard assignments back.
//!
//! Components containing only tasks (no worker can reach them) or only
//! workers (nothing for them to serve) are dropped: they contribute no valid
//! pair, so dropping them is lossless and shrinks the solve further.
//!
//! The extraction is written once against the backend-shared cell-topology
//! view (`crate::topology`), so every [`crate::SpatialIndex`] backend
//! produces the *identical* shard decomposition for the same live state —
//! the determinism guarantee the parallel engine's reproducibility rests on.

use crate::grid::GridIndex;
use crate::topology::{for_each_cell_pruned_pair, CellTopology, PairScratch};
use rdbsc_model::instance::SubInstanceMapping;
use rdbsc_model::valid_pairs::{BipartiteCandidates, ValidPair};
use rdbsc_model::{ProblemInstance, Task, TaskId, Worker, WorkerId};
use std::collections::HashMap;

/// One independent sub-problem extracted from the live index.
#[derive(Debug, Clone)]
pub struct ProblemShard {
    /// The shard as a dense, self-contained instance (ids re-numbered).
    pub instance: ProblemInstance,
    /// Mapping from the shard's dense ids back to the live ids.
    pub mapping: SubInstanceMapping,
    /// The shard's valid pairs (in shard-local dense ids), retrieved with
    /// cell-level pruning while the shard was extracted.
    pub candidates: BipartiteCandidates,
}

impl ProblemShard {
    /// Number of tasks in the shard.
    pub fn num_tasks(&self) -> usize {
        self.instance.num_tasks()
    }

    /// Number of workers in the shard.
    pub fn num_workers(&self) -> usize {
        self.instance.num_workers()
    }

    /// Number of valid pairs in the shard.
    pub fn num_pairs(&self) -> usize {
        self.candidates.num_pairs()
    }
}

/// Union-find over cell indices with path halving.
struct DisjointSets {
    parent: Vec<usize>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller cell index wins the root.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// The backend-shared extraction body. The caller must have refreshed the
/// index (fresh `tcell_list`s).
pub(crate) fn extract_shards_via<C: CellTopology + ?Sized>(
    index: &C,
    beta: f64,
    scratch: &mut PairScratch,
) -> Vec<ProblemShard> {
    let mut sets = DisjointSets::new(index.num_cells());
    let worker_cells: Vec<usize> = index.worker_cell_indices();
    for &i in &worker_cells {
        for &j in index.tcell_list_of(i) {
            sets.union(i, j);
        }
    }

    // Group worker cells by component root; only components with both kinds
    // of cells can produce valid pairs.
    let mut comp_worker_cells: HashMap<usize, Vec<usize>> = HashMap::new();
    for &i in &worker_cells {
        if !index.tcell_list_of(i).is_empty() {
            comp_worker_cells.entry(sets.find(i)).or_default().push(i);
        }
    }

    // lint:allow(D001): collected here, sorted on the next line
    let mut roots: Vec<usize> = comp_worker_cells.keys().copied().collect();
    roots.sort_unstable();

    let mut shards = Vec::with_capacity(roots.len());
    for root in roots {
        let cells = &comp_worker_cells[&root];

        let mut worker_ids: Vec<WorkerId> = cells
            .iter()
            .flat_map(|&i| index.worker_ids_of(i).iter().copied())
            .collect();
        worker_ids.sort_unstable();

        // The component's task cells are exactly the union of its worker
        // cells' tcell_lists (a task cell outside every tcell_list is
        // unreachable and belongs to no shard).
        let mut task_cells: Vec<usize> = cells
            .iter()
            .flat_map(|&i| index.tcell_list_of(i).iter().copied())
            .collect();
        task_cells.sort_unstable();
        task_cells.dedup();

        let mut task_ids: Vec<TaskId> = task_cells
            .iter()
            .flat_map(|&j| index.task_ids_of(j).iter().copied())
            .collect();
        task_ids.sort_unstable();

        let tasks: Vec<Task> = task_ids.iter().map(|id| index.task_by_id(*id)).collect();
        let workers: Vec<Worker> = worker_ids
            .iter()
            .map(|id| index.worker_by_id(*id))
            .collect();

        let local_task: HashMap<TaskId, TaskId> = task_ids
            .iter()
            .enumerate()
            .map(|(local, live)| (*live, TaskId::from(local)))
            .collect();
        let local_worker: HashMap<WorkerId, WorkerId> = worker_ids
            .iter()
            .enumerate()
            .map(|(local, live)| (*live, WorkerId::from(local)))
            .collect();

        let mapping = SubInstanceMapping {
            tasks: task_ids.clone(),
            workers: worker_ids.clone(),
        };
        let mut instance = ProblemInstance::new(tasks, workers, beta);
        instance.depart_at = index.depart_at();
        instance.allow_wait = index.allow_wait();

        // Cell-pruned pair retrieval, re-expressed in shard-local ids.
        let mut candidates =
            BipartiteCandidates::with_capacity(instance.num_tasks(), instance.num_workers());
        for_each_cell_pruned_pair(index, cells, scratch, |task, worker, contribution| {
            candidates.push(ValidPair {
                task: local_task[&task.id],
                worker: local_worker[&worker.id],
                contribution,
            });
        });

        shards.push(ProblemShard {
            instance,
            mapping,
            candidates,
        });
    }
    shards
}

impl GridIndex {
    /// Partitions the live instance into independent spatial shards: the
    /// connected components of the cell-reachability relation, each packaged
    /// as a dense sub-instance with its valid pairs.
    ///
    /// Shards are returned in deterministic order (ascending minimal cell
    /// index) with tasks and workers in ascending live-id order, so repeated
    /// extraction over the same state — with *any* backend — yields identical
    /// output.
    pub fn extract_shards(&mut self, beta: f64) -> Vec<ProblemShard> {
        self.refresh_tcell_lists();
        crate::topology::with_scratch(self, |index, scratch| {
            extract_shards_via(index, beta, scratch)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbsc_geo::{AngleRange, Point, Rect};
    use rdbsc_model::{Confidence, TimeWindow};

    fn task(id: u32, x: f64, y: f64) -> Task {
        Task::new(
            TaskId(id),
            Point::new(x, y),
            TimeWindow::new(0.0, 1.0).unwrap(),
        )
    }

    fn worker(id: u32, x: f64, y: f64, speed: f64) -> Worker {
        Worker::new(
            WorkerId(id),
            Point::new(x, y),
            speed,
            AngleRange::full(),
            Confidence::new(0.9).unwrap(),
        )
        .unwrap()
    }

    /// Two well-separated clusters of slow workers and near tasks: the
    /// extraction must produce two shards that partition the valid pairs.
    #[test]
    fn separated_clusters_become_separate_shards() {
        let mut index = GridIndex::new(Rect::unit(), 0.1);
        // Cluster A near (0.1, 0.1); cluster B near (0.9, 0.9). Speeds are
        // low enough that neither cluster can reach the other within the
        // 1-minute task windows.
        index.insert_task(task(0, 0.10, 0.12));
        index.insert_task(task(1, 0.14, 0.10));
        index.insert_worker(worker(0, 0.08, 0.08, 0.1));
        index.insert_worker(worker(1, 0.12, 0.14, 0.1));
        index.insert_task(task(2, 0.90, 0.88));
        index.insert_worker(worker(2, 0.92, 0.92, 0.1));
        // An unreachable task floating alone — must not appear in any shard.
        index.insert_task(task(3, 0.5, 0.02));

        let shards = index.extract_shards(0.5);
        assert_eq!(shards.len(), 2);
        let sizes: Vec<(usize, usize)> = shards
            .iter()
            .map(|s| (s.num_tasks(), s.num_workers()))
            .collect();
        assert_eq!(sizes, vec![(2, 2), (1, 1)]);

        // Per-shard candidates together equal the global retrieval.
        let global = index.retrieve_valid_pairs();
        let mut global_pairs: Vec<(TaskId, WorkerId)> =
            global.pairs.iter().map(|p| (p.task, p.worker)).collect();
        global_pairs.sort();
        let mut shard_pairs: Vec<(TaskId, WorkerId)> = shards
            .iter()
            .flat_map(|s| {
                s.candidates
                    .pairs
                    .iter()
                    .map(|p| (s.mapping.task(p.task), s.mapping.worker(p.worker)))
            })
            .collect();
        shard_pairs.sort();
        assert_eq!(shard_pairs, global_pairs);
    }

    #[test]
    fn one_fast_worker_merges_everything_into_one_shard() {
        let mut index = GridIndex::new(Rect::unit(), 0.1);
        index.insert_task(task(0, 0.1, 0.1));
        index.insert_task(task(1, 0.9, 0.9));
        index.insert_worker(worker(0, 0.5, 0.5, 5.0));
        let shards = index.extract_shards(0.5);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].num_tasks(), 2);
        assert_eq!(shards[0].num_workers(), 1);
        assert_eq!(shards[0].num_pairs(), 2);
    }

    #[test]
    fn extraction_is_deterministic() {
        let build = || {
            let mut index = GridIndex::new(Rect::unit(), 0.2);
            for i in 0..20 {
                index.insert_task(task(i, (i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0));
            }
            for j in 0..20 {
                index.insert_worker(worker(
                    j,
                    (j as f64 * 0.53) % 1.0,
                    (j as f64 * 0.29) % 1.0,
                    0.2,
                ));
            }
            index.extract_shards(0.5)
        };
        let a = build();
        let b = build();
        assert_eq!(a.len(), b.len());
        for (sa, sb) in a.iter().zip(b.iter()) {
            assert_eq!(sa.mapping.tasks, sb.mapping.tasks);
            assert_eq!(sa.mapping.workers, sb.mapping.workers);
            assert_eq!(sa.num_pairs(), sb.num_pairs());
        }
    }

    #[test]
    fn empty_index_yields_no_shards() {
        let mut index = GridIndex::new(Rect::unit(), 0.25);
        assert!(index.extract_shards(0.5).is_empty());
        index.insert_worker(worker(0, 0.5, 0.5, 0.5));
        assert!(index.extract_shards(0.5).is_empty(), "worker-only component is dropped");
    }
}
