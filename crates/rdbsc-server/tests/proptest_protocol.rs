//! Property tests for the partition protocol's wire DTOs: every command and
//! reply round-trips through encode → parse → decode for arbitrary field
//! values, routing tables survive serialization with region geometry intact,
//! and hostile input is rejected without panicking — mirroring the
//! `proptest_backends.rs` / `proptest_json.rs` style.

use proptest::prelude::*;
use rdbsc_cluster::RegionPartitioner;
use rdbsc_geo::{AngleRange, Point, Rect};
use rdbsc_index::geometry::GridGeometry;
use rdbsc_model::{Confidence, Task, TaskId, TimeWindow, Worker, WorkerId};
use rdbsc_platform::{EngineConfig, EngineEvent, PartitionTick, TickReport};
use rdbsc_server::json::parse;
use rdbsc_server::protocol::{
    submit_from_json, submit_to_json, EngineConfigDto, EventDto, HelloDto, RoutingTableDto,
    TickReplyDto,
};
use rdbsc_server::AssignmentDto;

/// A strategy for one valid engine event with arbitrary (finite) payloads.
fn event() -> impl Strategy<Value = EngineEvent> {
    (
        0u32..5,
        0u32..=u32::MAX,
        -1.0f64..2.0,
        -1.0f64..2.0,
        0.01f64..0.9,
        0.0f64..0.99,
        0.0f64..10.0,
        0.1f64..10.0,
    )
        .prop_map(|(kind, id, x, y, speed, confidence, start, length)| match kind {
            0 => EngineEvent::TaskArrived(Task::new(
                TaskId(id),
                Point::new(x, y),
                TimeWindow::new(start, start + length).unwrap(),
            )),
            1 => EngineEvent::TaskExpired(TaskId(id)),
            2 => EngineEvent::WorkerCheckIn(
                Worker::new(
                    WorkerId(id),
                    Point::new(x, y),
                    speed,
                    AngleRange::full(),
                    Confidence::new(confidence).unwrap(),
                )
                .unwrap(),
            ),
            3 => EngineEvent::WorkerMoved(WorkerId(id), Point::new(x, y)),
            _ => EngineEvent::WorkerLeft(WorkerId(id)),
        })
}

fn assignment() -> impl Strategy<Value = AssignmentDto> {
    (0u32..=u32::MAX, 0u32..=u32::MAX, 0.0f64..=1.0, -10.0f64..10.0, 0.0f64..100.0).prop_map(
        |(task, worker, confidence, angle, arrival)| AssignmentDto {
            task,
            worker,
            confidence,
            angle,
            arrival,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Submit bodies: events → JSON → events is the identity (checked by
    /// re-encoding, since `EngineEvent` has no `PartialEq`).
    #[test]
    fn submit_round_trips(
        request_id in 0u64..(1 << 53),
        events in proptest::collection::vec(event(), 0..12),
        trace in (0u64..=u64::MAX).prop_map(|t| if t % 4 == 0 { 0 } else { t }),
    ) {
        let wire = submit_to_json(request_id, &events, trace).to_string_compact();
        let (rid, decoded, echoed_trace) = submit_from_json(&parse(&wire).unwrap()).unwrap();
        prop_assert_eq!(rid, request_id);
        prop_assert_eq!(echoed_trace, trace);
        prop_assert_eq!(decoded.len(), events.len());
        let rewire = submit_to_json(request_id, &decoded, echoed_trace).to_string_compact();
        prop_assert_eq!(rewire, wire, "decode must invert encode exactly");
    }

    /// Tick replies carry the full report (float bit patterns included) and
    /// the committed set across the wire unchanged.
    #[test]
    fn tick_replies_round_trip(
        request_id in 0u64..(1 << 53),
        now in 0.0f64..1e6,
        counts in proptest::collection::vec(0u64..(1 << 40), 6),
        pairs in proptest::collection::vec(assignment(), 0..8),
        shard_seconds in proptest::collection::vec(0.0f64..10.0, 0..6),
        committed in proptest::collection::vec(0u32..=u32::MAX, 0..8),
        strategy_picks in proptest::collection::vec(0usize..4, 0..6),
        stage_us in proptest::collection::vec(0u64..(1 << 40), 6),
        trace in (0u64..=u64::MAX).prop_map(|t| if t % 4 == 0 { 0 } else { t }),
    ) {
        let strategies: Vec<&'static str> = strategy_picks
            .iter()
            .map(|i| ["GREEDY", "SAMPLING", "D&C", "G-TRUTH"][*i])
            .collect();
        let tick = PartitionTick {
            report: TickReport {
                now,
                events_applied: counts[0] as usize,
                tasks_expired: counts[1] as usize,
                num_shards: counts[2] as usize,
                largest_shard_pairs: counts[3] as usize,
                strategies: strategies.clone(),
                new_assignments: pairs
                    .iter()
                    .cloned()
                    .map(|p| p.into_pair().unwrap())
                    .collect(),
                solve_seconds: counts[4] as f64 * 1e-6,
                shard_solve_seconds: shard_seconds.clone(),
                index_maintenance: rdbsc_index::MaintenanceCounters {
                    relocations: counts[5],
                    cells_repaired: counts[0],
                    tcell_rebuilds: counts[1],
                },
                stages: rdbsc_obs::StageTimings::from_values([
                    stage_us[0], stage_us[1], stage_us[2], stage_us[3], stage_us[4], stage_us[5],
                ]),
            },
            committed: committed.iter().copied().map(WorkerId).collect(),
            trace,
        };
        let dto = TickReplyDto::from_tick(request_id, &tick);
        let wire = dto.to_json().to_string_compact();
        let decoded = TickReplyDto::from_json(&parse(&wire).unwrap()).unwrap();
        prop_assert_eq!(&decoded, &dto);
        let rebuilt = decoded.into_tick().unwrap();
        prop_assert_eq!(rebuilt.report.new_assignments, tick.report.new_assignments);
        prop_assert_eq!(rebuilt.report.strategies, strategies);
        prop_assert_eq!(rebuilt.report.shard_solve_seconds, shard_seconds);
        prop_assert_eq!(rebuilt.committed, tick.committed);
        prop_assert_eq!(rebuilt.report.events_applied, tick.report.events_applied);
        prop_assert_eq!(rebuilt.report.stages, tick.report.stages);
        prop_assert_eq!(rebuilt.trace, trace);
    }

    /// Routing tables round-trip with the region geometry — and therefore
    /// the router/daemon agreement — intact, for both partition strategies.
    #[test]
    fn routing_tables_round_trip(
        eta_cells in 4usize..32,
        regions in 1usize..9,
        kmeans_pick in 0u32..2,
        seed in 0u64..1000,
        samples in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..40),
    ) {
        let kmeans = kmeans_pick == 1;
        let geometry = GridGeometry::new(Rect::unit(), 1.0 / eta_cells as f64);
        let sample: Vec<Point> = samples.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let partitioner = if kmeans {
            RegionPartitioner::kmeans(seed)
        } else {
            RegionPartitioner::uniform()
        };
        let partition = partitioner.split(geometry, regions, &sample);
        let dto = RoutingTableDto::from_partition(&partition);
        let wire = dto.to_json().to_string_compact();
        let decoded = RoutingTableDto::from_json(&parse(&wire).unwrap()).unwrap();
        prop_assert_eq!(&decoded, &dto);
        let rebuilt = decoded.into_partition().unwrap();
        prop_assert_eq!(&rebuilt, &partition);
        // Routing agreement: every sample point maps to the same region on
        // both sides of the wire.
        for p in &sample {
            prop_assert_eq!(rebuilt.partition_of(*p), partition.partition_of(*p));
        }
    }

    /// Engine configs round-trip, seeds at full u64 precision.
    #[test]
    fn engine_configs_round_trip(
        beta in 0.0f64..=1.0,
        parallelism in 0u64..64,
        seed in 0u64..=u64::MAX,
        auto_expire_pick in 0u32..2,
    ) {
        let config = EngineConfig {
            beta,
            parallelism: parallelism as usize,
            seed,
            auto_expire: auto_expire_pick == 1,
        };
        let dto = EngineConfigDto::from_config(&config);
        let wire = dto.to_json().to_string_compact();
        let decoded = EngineConfigDto::from_json(&parse(&wire).unwrap()).unwrap();
        let rebuilt = decoded.into_config().unwrap();
        prop_assert_eq!(rebuilt.seed, config.seed);
        prop_assert_eq!(rebuilt.beta, config.beta);
        prop_assert_eq!(rebuilt.parallelism, config.parallelism);
        prop_assert_eq!(rebuilt.auto_expire, config.auto_expire);
    }

    /// Hostile input: arbitrary JSON documents thrown at every protocol
    /// decoder produce clean errors (or valid decodes), never panics.
    #[test]
    fn hostile_documents_never_panic(
        numbers in proptest::collection::vec(-1.0e12f64..1.0e12, 0..6),
        kinds in proptest::collection::vec(0u32..6, 0..6),
        request_id in -1.0e12f64..1.0e12,
    ) {
        use rdbsc_server::json::Json;
        // Assemble a structurally plausible but semantically wrong body.
        let events: Vec<Json> = kinds
            .iter()
            .zip(numbers.iter().cycle())
            .map(|(kind, n)| match kind {
                0 => Json::obj([("type", Json::Str("task_arrived".into()))]),
                1 => Json::obj([("type", Json::Str("worker_left".into())), ("id", Json::Num(*n))]),
                2 => Json::obj([("type", Json::Num(*n))]),
                3 => Json::Num(*n),
                4 => Json::Null,
                _ => Json::obj([("type", Json::Str("worker_moved".into())), ("move", Json::Num(*n))]),
            })
            .collect();
        let body = Json::obj([
            ("request_id", Json::Num(request_id)),
            ("events", Json::Arr(events)),
        ]);
        let _ = submit_from_json(&body); // must not panic
        let _ = TickReplyDto::from_json(&body);
        let _ = RoutingTableDto::from_json(&body);
        let _ = EngineConfigDto::from_json(&body);
        let _ = HelloDto::from_json(&body);
        let _ = EventDto::from_json(&body);
    }

    /// Raw hostile *strings* through the parser and then the decoders.
    #[test]
    fn hostile_strings_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(doc) = parse(&text) {
            let _ = submit_from_json(&doc);
            let _ = TickReplyDto::from_json(&doc);
            let _ = RoutingTableDto::from_json(&doc);
            let _ = EngineConfigDto::from_json(&doc);
        }
    }
}
