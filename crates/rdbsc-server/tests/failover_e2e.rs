//! Replication failover end-to-end tests against the real
//! `rdbsc-partitiond` binary: a standby daemon follows a primary's record
//! stream (`--follow`), the router arms it as the region's promoter
//! (`standby_partitions`), the primary is SIGKILLed mid-run, and the
//! promoted standby must serve the region with a state digest byte-equal
//! to the pre-kill acknowledged digest. Plus the standby's refusal
//! surface and the replication commands on the binary frame transport.

use rdbsc_cluster::RegionPartition;
use rdbsc_geo::Rect;
use rdbsc_index::geometry::GridGeometry;
use rdbsc_index::{FlatGridIndex, IndexBackend};
use rdbsc_platform::wal::decode_record;
use rdbsc_platform::{EngineConfig, EnginePartition, PartitionClient, WalRecord};
use rdbsc_server::frame::{read_raw, ReplyFrame, RequestFrame};
use rdbsc_server::{HttpClient, HttpPartitionClient, Json, Server, ServerConfig};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rdbsc-failover-e2e-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spawned daemon process plus the stdout reader that must stay alive
/// (closing the pipe would make the daemon's final println fail).
struct DaemonProcess {
    child: Child,
    addr: SocketAddr,
    _stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl DaemonProcess {
    fn spawn(extra_args: &[&str]) -> DaemonProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rdbsc-partitiond"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rdbsc-partitiond");
        let mut stdout = std::io::BufReader::new(child.stdout.take().expect("daemon stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("daemon startup line");
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable startup line: {line:?}"))
            .parse()
            .expect("daemon addr");
        DaemonProcess {
            child,
            addr,
            _stdout: stdout,
        }
    }

    /// `kill -9`: no drain, no flush, no goodbye.
    fn sigkill(&mut self) {
        self.child.kill().expect("SIGKILL daemon");
        self.child.wait().expect("reap daemon");
    }
}

/// A test that panics must not leak its daemons: a leaked standby keeps
/// knocking on its primary's (now freed) port forever, and a later run's
/// primary can re-bind that port — the stale follower then bootstraps
/// against it, rebasing the stream out from under the run's own standby.
impl Drop for DaemonProcess {
    fn drop(&mut self) {
        if matches!(self.child.try_wait(), Ok(None)) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Fetches a daemon's state digest off the snapshot route (a hex string —
/// u64 digests don't survive JSON's f64 numbers). `None` while the daemon
/// is unconfigured (a standby that has not bootstrapped yet answers 409).
fn try_remote_digest(addr: SocketAddr) -> Option<u64> {
    let mut http = HttpClient::new(addr).with_timeout(Duration::from_secs(5));
    let response = http.get("/partition/snapshot").ok()?;
    if !response.is_success() {
        return None;
    }
    let json = response.json().ok()?;
    match json.get("state_digest") {
        Some(Json::Str(hex)) => u64::from_str_radix(hex, 16).ok(),
        _ => None,
    }
}

fn remote_digest(addr: SocketAddr) -> u64 {
    try_remote_digest(addr).expect("daemon must serve a snapshot digest")
}

/// The daemon's `/metrics` `repl` object.
fn repl_metrics(addr: SocketAddr) -> Json {
    let mut http = HttpClient::new(addr).with_timeout(Duration::from_secs(5));
    let response = http.get("/metrics").expect("metrics request");
    assert!(response.is_success());
    let json = response.json().expect("metrics json");
    json.get("repl").cloned().unwrap_or_else(|| {
        panic!("daemon metrics missing repl: {}", json.to_string_compact())
    })
}

/// Polls until the standby holds exactly the primary's state: its applied
/// cursor reaches the **primary's** published stream head and the state
/// digests agree. Both checks are needed — the standby's own `lag` gauge
/// uses the head it last observed (which trails between fetches), and the
/// stream head alone cannot distinguish "bootstrapped, nothing published
/// since" from "has not bootstrapped at all" (both read zero: the primary
/// only starts publishing at the first bootstrap).
fn await_caught_up(primary: SocketAddr, standby: SocketAddr, deadline: Duration) -> Json {
    let started = Instant::now();
    loop {
        let head = repl_metrics(primary)
            .get("next_lsn")
            .and_then(Json::as_num)
            .unwrap_or(f64::MAX);
        let repl = repl_metrics(standby);
        let role = repl.get("role").and_then(Json::as_str).unwrap_or_default();
        let applied = repl.get("applied").and_then(Json::as_num).unwrap_or(-1.0);
        if role == "standby"
            && applied == head
            && try_remote_digest(standby).is_some_and(|d| Some(d) == try_remote_digest(primary))
        {
            return repl;
        }
        assert!(
            started.elapsed() < deadline,
            "standby never caught up (head {head}): {}",
            repl.to_string_compact()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn post_task(http: &mut HttpClient, id: u32, x: f64, y: f64, now: f64) {
    let task = rdbsc_server::dto::TaskDto {
        id,
        x,
        y,
        start: now,
        end: now + 6.0,
        beta: None,
    };
    assert!(http.post("/tasks", &task.to_json()).unwrap().is_success());
}

fn post_worker(http: &mut HttpClient, id: u32, x: f64, y: f64) {
    let worker = rdbsc_server::dto::WorkerDto {
        id,
        x,
        y,
        speed: 0.4,
        heading: None,
        confidence: 0.9,
        available_from: 0.0,
    };
    assert!(http.post("/workers", &worker.to_json()).unwrap().is_success());
}

fn tick(http: &mut HttpClient, now: f64) {
    let body = Json::obj([("now", Json::Num(now))]);
    assert!(http.post("/tick", &body).expect("tick request").is_success());
}

/// The tentpole e2e: primary + standby + router, acknowledged traffic,
/// quiesce, capture the primary's digest, SIGKILL it, and require the
/// router's inline promotion to attach a standby whose digest is
/// byte-identical — then keep serving through the successor.
#[test]
fn sigkilled_primary_fails_over_to_a_digest_identical_standby() {
    let primary_dir = tempdir("primary");
    let standby_dir = tempdir("standby");
    let mut primary = DaemonProcess::spawn(&["--data-dir", primary_dir.to_str().unwrap()]);
    let primary_addr = primary.addr.to_string();
    let mut standby = DaemonProcess::spawn(&[
        "--data-dir",
        standby_dir.to_str().unwrap(),
        "--follow",
        &primary_addr,
    ]);

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        flush_interval: Duration::ZERO, // manual tick
        partitions: 1,
        remote_partitions: vec![primary_addr.clone()],
        standby_partitions: vec![standby.addr.to_string()],
        ..ServerConfig::default()
    })
    .expect("server start");
    let mut http = HttpClient::new(server.addr()).with_timeout(Duration::from_secs(5));

    // Acknowledged traffic: every command completes before the kill.
    for round in 0..5u32 {
        let now = round as f64 * 0.5;
        for i in 0..3u32 {
            let id = round * 10 + i;
            let x = 0.15 + 0.1 * ((id % 7) as f64);
            post_task(&mut http, id, x, 0.5, now);
            post_worker(&mut http, id, x, 0.45);
        }
        tick(&mut http, now);
    }

    // First catch-up may be served mostly by the bootstrap checkpoint
    // (the primary only publishes records once a standby exists). Drive a
    // second wave afterwards so continuous shipping is exercised for sure.
    await_caught_up(primary.addr, standby.addr, Duration::from_secs(20));
    for round in 5..8u32 {
        let now = round as f64 * 0.5;
        post_task(&mut http, round * 10, 0.35, 0.5, now);
        post_worker(&mut http, round * 10, 0.35, 0.45);
        tick(&mut http, now);
    }

    // Quiesce: the standby must drain the stream completely.
    let drained = await_caught_up(primary.addr, standby.addr, Duration::from_secs(20));
    assert!(
        drained.get("applied").and_then(Json::as_num).unwrap_or(0.0) > 0.0,
        "the second traffic wave must arrive as shipped records: {}",
        drained.to_string_compact()
    );
    let acknowledged = remote_digest(primary.addr);
    assert_eq!(
        remote_digest(standby.addr),
        acknowledged,
        "a caught-up standby must already hold the primary's digest"
    );

    let armed = http.get("/metrics").unwrap().json().unwrap();
    assert_eq!(armed.get("standbys_armed").and_then(Json::as_num), Some(1.0));
    assert_eq!(
        armed.get("partitions_promoted").and_then(Json::as_num),
        Some(0.0)
    );

    // Kill the primary — no drain, no goodbye.
    primary.sigkill();

    // The next tick observes the dead transport and promotes inline.
    tick(&mut http, 2.5);

    let promoted = http.get("/metrics").unwrap().json().unwrap();
    assert_eq!(
        promoted.get("partitions_promoted").and_then(Json::as_num),
        Some(1.0),
        "promotion must be recorded: {}",
        promoted.to_string_compact()
    );
    assert_eq!(
        promoted.get("partitions_unhealthy").and_then(Json::as_num),
        Some(0.0),
        "a promoted slot must not be unhealthy"
    );
    let promotions = promoted
        .get("promotions")
        .and_then(Json::as_arr)
        .expect("promotions array");
    assert_eq!(promotions.len(), 1);
    let record = &promotions[0];
    assert_eq!(record.get("partition").and_then(Json::as_num), Some(0.0));
    assert!(record
        .get("old_endpoint")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains(&primary_addr)));
    assert!(record
        .get("new_endpoint")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains(&standby.addr.to_string())));

    // Zero acknowledged-state loss: the promoted standby's digest equals
    // the digest captured before the kill.
    assert_eq!(
        remote_digest(standby.addr),
        acknowledged,
        "promoted standby diverged from the pre-kill acknowledged state"
    );
    let sealed = repl_metrics(standby.addr);
    assert_eq!(sealed.get("role").and_then(Json::as_str), Some("primary"));
    assert_eq!(sealed.get("sealed"), Some(&Json::Bool(true)));
    assert_eq!(sealed.get("lag").and_then(Json::as_num), Some(0.0));

    // The region keeps serving through the successor.
    post_task(&mut http, 900, 0.4, 0.5, 3.0);
    post_worker(&mut http, 900, 0.4, 0.45);
    tick(&mut http, 3.0);
    assert!(http.get("/snapshot").unwrap().is_success());

    // A promoted daemon can serve a fresh follower of its own: once a
    // bootstrap re-enables the stream, its *live* counters (not the sealed
    // short-circuit) reach /metrics — `sealed` itself stays latched.
    let mut standby_http = HttpClient::new(standby.addr).with_timeout(Duration::from_secs(5));
    assert!(standby_http
        .post(
            "/partition/repl/bootstrap",
            &Json::obj([("request_id", Json::Num(50.0))])
        )
        .unwrap()
        .is_success());
    post_task(&mut http, 901, 0.45, 0.5, 3.5);
    post_worker(&mut http, 901, 0.45, 0.45);
    tick(&mut http, 3.5);
    let reseeding = repl_metrics(standby.addr);
    assert_eq!(reseeding.get("role").and_then(Json::as_str), Some("primary"));
    assert_eq!(
        reseeding.get("sealed"),
        Some(&Json::Bool(true)),
        "sealed stays latched while re-seeding"
    );
    assert!(
        reseeding.get("retained").and_then(Json::as_num).unwrap_or(0.0) > 0.0,
        "a promoted daemon serving a follower reports live stream counters: {}",
        reseeding.to_string_compact()
    );

    // Clean admin shutdown propagates to the promoted daemon.
    assert!(http.post("/admin/shutdown", &Json::obj([])).unwrap().is_success());
    server.join();
    standby.child.wait().expect("promoted standby exits with the router");

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}

/// An unpromoted standby is read-only: mutating commands 409, reads serve,
/// the hello advertises the standby flag, and the router-side client
/// refuses to mount it as an ordinary partition.
#[test]
fn standby_refuses_mutating_commands_until_promoted() {
    let mut primary = DaemonProcess::spawn(&[]);
    let primary_addr = primary.addr.to_string();
    let mut standby = DaemonProcess::spawn(&["--follow", &primary_addr]);

    // Configure the primary directly (no router involved) and feed it.
    let partition = RegionPartition::single(GridGeometry::new(Rect::unit(), 0.1));
    let config = EngineConfig::default();
    let mut remote = HttpPartitionClient::connect(&primary_addr).unwrap();
    remote
        .configure(&partition, 0, IndexBackend::FlatGrid, 0.1, &config, None)
        .unwrap();
    remote.begin_tick(0.5).unwrap();
    remote.finish_tick().unwrap();
    await_caught_up(primary.addr, standby.addr, Duration::from_secs(20));

    let mut http = HttpClient::new(standby.addr).with_timeout(Duration::from_secs(5));
    let hello = http.get("/partition/hello").unwrap().json().unwrap();
    assert_eq!(hello.get("standby"), Some(&Json::Bool(true)));

    // Mutating commands are refused with a structured conflict...
    let body = Json::obj([("request_id", Json::Num(1.0)), ("now", Json::Num(1.0))]);
    let refused = http.post("/partition/tick", &body).unwrap();
    assert_eq!(refused.status, 409, "standby tick must 409: {}", refused.body);
    let refused = http
        .post(
            "/partition/submit",
            &Json::obj([("request_id", Json::Num(2.0)), ("events", Json::Arr(vec![]))]),
        )
        .unwrap();
    assert_eq!(refused.status, 409);
    // ... while reads stay up.
    assert!(http.get("/partition/snapshot").unwrap().is_success());
    assert!(http.get("/metrics").unwrap().is_success());

    // The router-side client refuses to mount an unpromoted standby.
    assert!(
        HttpPartitionClient::connect(&standby.addr.to_string()).is_err(),
        "mounting a standby as an ordinary partition must fail"
    );

    standby.child.kill().ok();
    standby.child.wait().ok();
    let mut primary_http = HttpClient::new(primary.addr).with_timeout(Duration::from_secs(5));
    assert!(primary_http
        .post("/partition/shutdown", &Json::obj([]))
        .unwrap()
        .is_success());
    primary.child.wait().ok();
}

/// The stream serves exactly one follower: while a live follower is
/// fetching, a competing bootstrap answers `409` (it would rebase the
/// stream out from under the live follower's cursor); a fetch that falls
/// off the retained window frees the slot immediately, because *that*
/// follower is about to re-bootstrap itself and must not be locked out.
#[test]
fn second_follower_bootstrap_is_refused_while_the_first_is_live() {
    let mut primary = DaemonProcess::spawn(&[]);
    let partition = RegionPartition::single(GridGeometry::new(Rect::unit(), 0.1));
    let config = EngineConfig::default();
    let mut remote = HttpPartitionClient::connect(&primary.addr.to_string()).unwrap();
    remote
        .configure(&partition, 0, IndexBackend::FlatGrid, 0.1, &config, None)
        .unwrap();

    let mut http = HttpClient::new(primary.addr).with_timeout(Duration::from_secs(5));
    let bootstrap = |http: &mut HttpClient, rid: f64| {
        http.post(
            "/partition/repl/bootstrap",
            &Json::obj([("request_id", Json::Num(rid))]),
        )
        .unwrap()
    };
    let fetch = |http: &mut HttpClient, rid: f64, from: f64, ack: f64| {
        http.post(
            "/partition/repl/fetch",
            &Json::obj([
                ("request_id", Json::Num(rid)),
                ("from", Json::Num(from)),
                ("ack", Json::Num(ack)),
                ("max", Json::Num(64.0)),
            ]),
        )
        .unwrap()
    };

    // Follower #1 bootstraps and starts fetching.
    assert!(bootstrap(&mut http, 1.0).is_success());
    assert!(fetch(&mut http, 2.0, 0.0, 0.0).is_success());

    // A second follower knocking mid-stream is refused.
    let refused = bootstrap(&mut http, 3.0);
    assert_eq!(
        refused.status, 409,
        "second bootstrap must 409: {}",
        refused.body
    );

    // Publish two records; follower #1 fetches and acks them, advancing
    // the retained base past lsn 0.
    remote.begin_tick(0.5).unwrap();
    remote.finish_tick().unwrap();
    remote.begin_tick(1.0).unwrap();
    remote.finish_tick().unwrap();
    assert!(fetch(&mut http, 4.0, 0.0, 0.0).is_success());
    assert!(fetch(&mut http, 5.0, 2.0, 2.0).is_success());

    // A fetch below the base is a gap — it 409s AND frees the follower
    // slot, so the re-bootstrap that must follow succeeds immediately
    // instead of being refused as a second follower.
    let gap = fetch(&mut http, 6.0, 0.0, 2.0);
    assert_eq!(gap.status, 409, "a fetch below the base must gap: {}", gap.body);
    assert!(
        bootstrap(&mut http, 7.0).is_success(),
        "the gapped follower's own re-bootstrap must not be locked out"
    );

    remote.shutdown().unwrap();
    primary.child.wait().ok();
}

/// The replication commands speak the binary frame transport too: a raw
/// frame connection bootstraps, fetches and status-checks against a live
/// primary, and a local replica built from those frames lands on the
/// primary's exact digest.
#[test]
fn repl_commands_round_trip_over_the_binary_transport() {
    let mut primary = DaemonProcess::spawn(&[]);
    let partition = RegionPartition::single(GridGeometry::new(Rect::unit(), 0.1));
    let config = EngineConfig::default();
    let mut remote = HttpPartitionClient::connect(&primary.addr.to_string()).unwrap();
    remote
        .configure(&partition, 0, IndexBackend::FlatGrid, 0.1, &config, None)
        .unwrap();

    let stream = std::net::TcpStream::connect(primary.addr).expect("frame connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok();
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = std::io::BufReader::new(stream);
    let mut exchange = |request: RequestFrame| -> ReplyFrame {
        request.write_to(&mut writer).expect("write frame");
        let raw = read_raw(&mut reader, 1 << 24)
            .expect("read frame")
            .expect("reply frame");
        ReplyFrame::decode(&raw).expect("decode reply")
    };

    // Bootstrap over frames: the snapshot is a canonical Checkpoint record.
    let ReplyFrame::ReplBootstrapOk {
        request_id,
        start_lsn,
        state,
        configure,
    } = exchange(RequestFrame::ReplBootstrap { request_id: 7 })
    else {
        panic!("expected ReplBootstrapOk");
    };
    assert_eq!(request_id, 7);
    let WalRecord::Checkpoint(boot_state) = decode_record(&state).expect("snapshot decodes")
    else {
        panic!("bootstrap state must be a Checkpoint record");
    };
    assert!(
        rdbsc_server::ConfigureDto::from_json(
            &rdbsc_server::json::parse(&configure).expect("configure parses")
        )
        .is_ok(),
        "the shipped configure fingerprint must parse standalone"
    );
    let mut replica = EnginePartition::from_state(&boot_state, config.clone(), || {
        FlatGridIndex::new(Rect::unit(), 0.1)
    });

    // Publish some records, then fetch them over frames.
    remote.begin_tick(0.5).unwrap();
    remote.finish_tick().unwrap();
    remote.begin_tick(1.0).unwrap();
    remote.finish_tick().unwrap();

    let ReplyFrame::ReplFetchOk {
        next_lsn, records, ..
    } = exchange(RequestFrame::ReplFetch {
        request_id: 8,
        from: start_lsn,
        ack: start_lsn,
        max: 64,
    })
    else {
        panic!("expected ReplFetchOk");
    };
    assert_eq!(next_lsn, start_lsn + 2, "two ticks published two records");
    assert_eq!(records.len(), 2);
    for (i, (lsn, bytes)) in records.iter().enumerate() {
        assert_eq!(*lsn, start_lsn + i as u64, "lsns must be dense");
        match decode_record(bytes).expect("shipped record decodes") {
            WalRecord::Events(events) => replica.submit(events),
            WalRecord::Tick { now } => {
                replica.tick(now);
            }
            WalRecord::Answer { worker, contribution } => {
                replica.record_answer(worker, contribution);
            }
            WalRecord::Release { worker } => replica.release_worker(worker),
            other => panic!("unshippable record arrived: {other:?}"),
        }
    }
    assert_eq!(
        replica.state_digest(),
        remote_digest(primary.addr),
        "a replica built from binary-transport frames must match the primary"
    );

    // Status over frames: the ack watermark advanced with the fetch.
    let ReplyFrame::ReplStatusOk { status, .. } =
        exchange(RequestFrame::ReplStatus { request_id: 9 })
    else {
        panic!("expected ReplStatusOk");
    };
    assert_eq!(status.role, "primary");
    assert_eq!(status.next_lsn, start_lsn + 2);

    // Promoting a daemon that is not a standby is a structured conflict.
    let ReplyFrame::Error { status, detail, .. } =
        exchange(RequestFrame::ReplPromote { request_id: 10 })
    else {
        panic!("expected an error reply");
    };
    assert_eq!(status, 409, "promote on a primary must conflict: {detail}");

    remote.shutdown().unwrap();
    primary.child.wait().ok();
}
